"""R-F1: the chip's timing profile -- arrival-time histogram.

Reconstructs the "where does the time go" figure: the distribution of
worst-case arrival times across every node of the datapath's critical
phase.  Expected shape: a large early mass (local logic settles quickly)
and a thin late tail -- the carry chain and shifter -- that defines the
cycle.  This is the figure that told designers which 2% of the chip to
rework.
"""

from repro import TimingAnalyzer
from repro.bench import save_result
from repro.circuits import mips_like_datapath
from repro.core import format_table, slack_histogram


def run_f1():
    netlist, _ports = mips_like_datapath(16, 8)
    result = TimingAnalyzer(netlist).analyze()
    verification = result.clock_verification
    worst = max(verification.phases.values(), key=lambda p: p.width)
    bins = slack_histogram(worst.arrivals, bins=12)
    total = sum(count for _lo, _hi, count in bins)
    rows = [
        [
            f"{lo * 1e9:7.2f}",
            f"{hi * 1e9:7.2f}",
            f"{count:5d}",
            "#" * max(1, int(50 * count / total)) if count else "",
        ]
        for lo, hi, count in bins
    ]
    table = format_table(
        ["from (ns)", "to (ns)", "nodes", ""],
        rows,
        title=(
            f"R-F1: arrival-time histogram, {worst.phase} of datapath 16x8 "
            f"({total} switching nodes)"
        ),
    )
    return table, bins, total


def test_f1_slack_histogram(benchmark):
    table, bins, total = benchmark.pedantic(run_f1, rounds=1, iterations=1)
    save_result("f1_slack_histogram", table)
    counts = [c for _lo, _hi, c in bins]
    assert sum(counts) == total and total > 100
    # Shape: early mass, thin late tail.
    early = sum(counts[: len(counts) // 2])
    late_tail = counts[-1]
    assert early > 0.5 * total
    assert late_tail < 0.2 * total
