"""R-F2: estimate-vs-simulation scatter over a randomized stage population.

Reconstructs the accuracy scatter plot: many randomized stages (chain
lengths, fan-ins, loads, pass depths drawn from a seeded generator), each
measured by both engines.  Expected shape: points hug the diagonal with a
pessimistic bias; the rank correlation is near 1 -- the property that makes
a static analyzer's *ordering* of paths trustworthy even where absolute
numbers drift.
"""

import random

from repro.bench import compare_delay, save_result
from repro.circuits import inverter_chain, nand, nor, pass_chain
from repro.core import format_table
from repro.sim import TransientOptions

FAST = TransientOptions(dt=0.15e-9, settle=30e-9)
FF = 1e-15


def _population(seed: int = 11, count: int = 18):
    rng = random.Random(seed)
    cases = []
    for i in range(count):
        kind = rng.choice(["chain", "nand", "nor", "pass"])
        load = rng.choice([0.0, 20 * FF, 60 * FF])
        if kind == "chain":
            n = rng.randint(1, 6)
            net = inverter_chain(n, load=load)
            cases.append((f"chain{n}/{load/FF:.0f}fF", net, "a", f"n{n-1}", "rise", {}))
        elif kind == "nand":
            k = rng.randint(2, 4)
            net = nand(k)
            net.add_cap("out", load)
            state = {f"a{j}": 1 for j in range(k - 1)}
            cases.append((f"nand{k}/{load/FF:.0f}fF", net, f"a{k-1}", "out", "rise", state))
        elif kind == "nor":
            k = rng.randint(2, 4)
            net = nor(k)
            net.add_cap("out", load)
            state = {f"a{j}": 0 for j in range(1, k)}
            cases.append((f"nor{k}/{load/FF:.0f}fF", net, "a0", "out", "rise", state))
        else:
            n = rng.randint(2, 8)
            net = pass_chain(n)
            cases.append((f"pass{n}", net, "d", f"p{n-1}", "rise", {"sel": 1}))
    return cases


def _rank_correlation(xs, ys):
    """Spearman rank correlation."""
    def ranks(values):
        order = sorted(range(len(values)), key=lambda i: values[i])
        r = [0.0] * len(values)
        for rank, idx in enumerate(order):
            r[idx] = float(rank)
        return r

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    d2 = sum((a - b) ** 2 for a, b in zip(rx, ry))
    return 1.0 - 6.0 * d2 / (n * (n * n - 1))


def run_f2():
    rows = []
    tv_values, sim_values = [], []
    for label, net, trigger, output, direction, state in _population():
        row = compare_delay(
            net, trigger, output,
            direction=direction, input_state=state, label=label,
            sim_options=FAST,
        )
        tv_values.append(row.tv_delay)
        sim_values.append(row.sim_delay)
        rows.append(
            [label, f"{row.sim_delay * 1e9:7.3f}", f"{row.tv_delay * 1e9:7.3f}",
             f"{row.error_pct:+6.1f}%"]
        )
    rho = _rank_correlation(tv_values, sim_values)
    table = format_table(
        ["stage", "sim (ns)", "TV (ns)", "error"],
        rows,
        title="R-F2: accuracy scatter (x = simulation, y = static estimate)",
    )
    table += f"\nSpearman rank correlation: {rho:.3f} over {len(rows)} stages"
    return table, rho, tv_values, sim_values


def test_f2_accuracy_scatter(benchmark):
    table, rho, tv_values, sim_values = benchmark.pedantic(
        run_f2, rounds=1, iterations=1
    )
    save_result("f2_accuracy_scatter", table)
    assert rho > 0.9, "static ordering must track simulated ordering"
    # Bias check: mean signed error leans pessimistic, never wildly so.
    signed = [
        (tv - sim) / sim for tv, sim in zip(tv_values, sim_values)
    ]
    mean_signed = sum(signed) / len(signed)
    assert -0.15 < mean_signed < 0.8
