"""R-F3: runtime-vs-size series for both engines.

Reconstructs the log-log runtime figure: the analyzer's wall time grows
near-linearly with device count while transistor-level simulation grows
super-cubically (dense solves per timestep), crossing over at trivially
small circuits.  Together with R-T3 this is the paper's economics figure.
"""

import time

from repro.bench import Series, save_result, timed_analysis
from repro.circuits import random_logic
from repro.sim import SpiceLite, TransientOptions, constant

TV_SIZES = (100, 300, 1000, 3000, 10000)
SIM_SIZES = (40, 80, 160, 320, 640)


def run_f3():
    tv_series = Series("TV static analysis", "devices", "seconds")
    for size in TV_SIZES:
        net = random_logic(size, seed=13)
        seconds, _ = timed_analysis(net)
        tv_series.add(len(net.devices), round(seconds, 4))

    sim_series = Series("SPICE-lite (10 ns vector)", "devices", "seconds")
    for size in SIM_SIZES:
        net = random_logic(size, seed=13)
        sim = SpiceLite(net, options=TransientOptions(dt=0.5e-9, settle=5e-9))
        stimuli = {name: constant(0.0) for name in net.inputs}
        started = time.perf_counter()
        sim.transient(stimuli, 10e-9, record=[])
        sim_series.add(len(net.devices), round(time.perf_counter() - started, 4))

    text = tv_series.format() + "\n\n" + sim_series.format()
    return text, tv_series, sim_series


def test_f3_runtime_series(benchmark):
    text, tv_series, sim_series = benchmark.pedantic(
        run_f3, rounds=1, iterations=1
    )
    save_result("f3_runtime_series", text)
    # TV near-linear: time ratio grows at most ~quadratically slower than
    # the device ratio across the sweep (generous CI-safe bound).
    (d0, t0), (d1, t1) = tv_series.points[0], tv_series.points[-1]
    assert t1 / max(t0, 1e-4) < (d1 / d0) ** 2
    # Simulation clearly superlinear over its sweep (the dense solves'
    # cubic term dominates once the circuit passes a few hundred nodes).
    (sd0, st0), (sd1, st1) = sim_series.points[0], sim_series.points[-1]
    assert st1 / st0 > (sd1 / sd0) ** 1.15
