"""R-F4: pass-chain delay vs length -- the quadratic, and the buffer fix.

Reconstructs the figure motivating buffer insertion: an unbuffered pass
chain's delay grows quadratically with length (Elmore of a uniform RC
line), while a chain broken by superbuffers every few stages grows
linearly.  Expected crossover around 4-6 devices -- the design rule every
nMOS methodology text quoted.
"""

from repro import TimingAnalyzer
from repro.bench import Series, save_result
from repro.circuits import pass_chain
from repro.core import format_table

LENGTHS = (1, 2, 3, 4, 6, 8, 10, 12, 14, 16, 20, 24)
BUFFER_EVERY = 4


def run_f4():
    unbuffered = Series("unbuffered chain", "length", "delay_ns")
    buffered = Series(f"superbuffer every {BUFFER_EVERY}", "length", "delay_ns")
    rows = []
    for n in LENGTHS:
        plain = TimingAnalyzer(pass_chain(n)).analyze().max_delay
        fixed = TimingAnalyzer(
            pass_chain(n, buffer_every=BUFFER_EVERY)
        ).analyze().max_delay
        unbuffered.add(n, round(plain * 1e9, 3))
        buffered.add(n, round(fixed * 1e9, 3))
        rows.append(
            [f"{n}", f"{plain * 1e9:7.3f}", f"{fixed * 1e9:7.3f}",
             "buffered wins" if fixed < plain else ""]
        )
    table = format_table(
        ["length", "unbuffered (ns)", "buffered (ns)", ""],
        rows,
        title="R-F4: pass-transistor chain delay vs length",
    )
    return table, unbuffered, buffered


def test_f4_pass_chain(benchmark):
    table, unbuffered, buffered = benchmark.pedantic(
        run_f4, rounds=1, iterations=1
    )
    save_result("f4_pass_chain", table)
    plain = dict(unbuffered.points)
    fixed = dict(buffered.points)
    # Quadratic growth: doubling 8 -> 16 more than triples the delay.
    assert plain[16] / plain[8] > 2.5
    # Buffered growth stays near-linear over 8 -> 24 (3x length < 4.5x time,
    # vs the unbuffered chain's ~9x).
    assert fixed[24] / fixed[8] < 4.5
    assert plain[24] / plain[8] > 6.0
    # Crossover: short chains don't pay for buffers; long chains must.
    assert fixed[4] >= plain[4]
    assert fixed[16] < plain[16]
    assert fixed[24] < plain[24]
