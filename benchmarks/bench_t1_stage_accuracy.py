"""R-T1: stage-delay accuracy -- static estimates vs SPICE-lite.

Reconstructs the paper's per-structure accuracy table: for every nMOS stage
archetype, the 50% delay predicted by the static analyzer against the
transient simulation, with the signed error.  Claim validated: estimates
land within ~10-20% of simulation, erring toward pessimism.
"""

from repro.bench import compare_delay, save_result
from repro.circuits import (
    inverter_chain,
    manchester_adder,
    nand,
    nor,
    pass_chain,
    superbuffer,
    xor2,
)
from repro.core import format_table
from repro.sim import TransientOptions

FAST = TransientOptions(dt=0.1e-9, settle=30e-9)
FF = 1e-15


def _loaded(net, node, cap=50 * FF):
    net.add_cap(node, cap)
    return net


def _cases():
    return [
        ("inverter fall", _loaded(inverter_chain(1), "n0"), "a", "n0", "rise", {}),
        ("inverter rise", _loaded(inverter_chain(1), "n0"), "a", "n0", "fall", {}),
        ("chain x4", inverter_chain(4), "a", "n3", "rise", {}),
        ("chain x8", inverter_chain(8), "a", "n7", "rise", {}),
        ("nand2 fall", _loaded(nand(2), "out"), "a1", "out", "rise", {"a0": 1}),
        ("nand3 fall", _loaded(nand(3), "out"), "a2", "out", "rise", {"a0": 1, "a1": 1}),
        ("nand4 fall", _loaded(nand(4), "out"), "a3", "out", "rise",
         {"a0": 1, "a1": 1, "a2": 1}),
        ("nor2 fall", _loaded(nor(2), "out"), "a0", "out", "rise", {"a1": 0}),
        ("nor4 fall", _loaded(nor(4), "out"), "a0", "out", "rise",
         {"a1": 0, "a2": 0, "a3": 0}),
        ("xor", xor2(), "a", "out", "rise", {"b": 0}),
        ("pass chain x2", pass_chain(2), "d", "p1", "rise", {"sel": 1}),
        ("pass chain x4", pass_chain(4), "d", "p3", "rise", {"sel": 1}),
        ("pass chain x8", pass_chain(8), "d", "p7", "rise", {"sel": 1}),
        ("superbuffer", _loaded(superbuffer(), "out", 150 * FF), "a", "out", "rise", {}),
    ]


def run_t1():
    rows = []
    errors = []
    for label, net, trigger, output, direction, state in _cases():
        row = compare_delay(
            net, trigger, output,
            direction=direction, input_state=state, label=label,
            sim_options=FAST,
        )
        rows.append(row.cells())
        errors.append(abs(row.error_pct))
    table = format_table(
        ["stage", "edge", "TV (ns)", "SPICE-lite (ns)", "error"],
        rows,
        title="R-T1: stage-delay accuracy (static vs transient)",
    )
    table += (
        f"\nmean |error| {sum(errors) / len(errors):.1f}%   "
        f"max |error| {max(errors):.1f}%"
    )
    return table, errors


def test_t1_stage_accuracy(benchmark):
    table, errors = benchmark.pedantic(run_t1, rounds=1, iterations=1)
    save_result("t1_stage_accuracy", table)
    # Shape assertions: the paper's accuracy band.
    assert sum(errors) / len(errors) < 25.0
    assert max(errors) < 60.0
