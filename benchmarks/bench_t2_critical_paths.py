"""R-T2: full-block critical paths -- TV vs simulation of the found path.

For each benchmark block the analyzer reports its worst path; we then drive
that scenario in SPICE-lite and time the real transition.  Claim validated:
the analyzer finds the true slow path and its delay estimate tracks the
simulated delay (pessimistic, same order).

Blocks whose full transient simulation is impractical at SPICE-lite's dense
linear algebra (the register file and datapath) get static numbers plus an
explicit "n/a" -- exactly the situation the 1983 designers were in, which
is the paper's point.
"""

from repro import TimingAnalyzer
from repro.bench import percent_error, save_result
from repro.circuits import (
    barrel_shifter,
    bus,
    manchester_adder,
    mips_like_datapath,
    pla,
    ProductTerm,
    register_file,
    ripple_adder,
)
from repro.core import format_table
from repro import TwoPhaseClock
from repro.sim import (
    SpiceLite,
    TransientOptions,
    constant,
    step,
    two_phase_waveforms,
)

FAST = TransientOptions(dt=0.15e-9, settle=40e-9)


def _ripple_case():
    """Carry ripple a0 -> sum7 with b = 0xFF: the canonical worst path."""
    width = 8
    net = ripple_adder(width)
    result = TimingAnalyzer(net).analyze()
    tv = result.max_delay

    sim = SpiceLite(net, options=FAST)
    stim = {f"b{i}": constant(5.0) for i in range(width)}
    stim["cin"] = constant(0.0)
    for i in range(1, width):
        stim[f"a{i}"] = constant(0.0)
    stim["a0"] = step(5e-9, 0.0, 5.0)
    wave = sim.transient(stim, 120e-9, record=["a0", "sum7"])
    t_in = wave.crossing_after("a0", 2.2, "rise", 2e-9)
    t_out_r = wave.crossing_after("sum7", 2.2, "rise", t_in)
    t_out_f = wave.crossing_after("sum7", 2.2, "fall", t_in)
    candidates = [t for t in (t_out_r, t_out_f) if t is not None]
    measured = max(candidates) - t_in
    return ("ripple adder x8", result.critical_path.endpoint, tv, measured)


def _manchester_case():
    """Evaluate-phase carry chain, driven with real two-phase clocks.

    Compared quantity: the analyzer's clock-to-cout arrival during phi2.
    The operands are stable long before evaluation (they settle during the
    precharge phase), so the static side is told the inputs arrived early;
    what remains at ``cout`` is the phi2-launched carry-chain discharge --
    exactly what the simulation's cursor measures.
    """
    width = 6
    net = manchester_adder(width)
    early = {name: -100e-9 for name in net.inputs}
    result = TimingAnalyzer(net).analyze(input_arrivals=early)
    arrivals = result.clock_verification.phases["phi2"].arrivals
    tv = arrivals.worst("cout").time

    clock = TwoPhaseClock(nonoverlap=4e-9)
    waves = two_phase_waveforms(clock, 40e-9, 120e-9, 5.0, cycles=1, ramp=1e-9)
    stim = dict(waves)
    for i in range(width):
        stim[f"a{i}"] = constant(5.0)
        stim[f"b{i}"] = constant(0.0)
    stim["b0"] = constant(5.0)  # a=111111, b=000001: full-length ripple
    stim["cin"] = constant(0.0)
    sim = SpiceLite(net, options=FAST)
    wave = sim.transient(stim, 170e-9, record=["phi2", "cout"])
    t_eval = wave.crossing_after("phi2", 2.2, "rise", 0.0)
    t_out = wave.crossing_after("cout", 2.2, "rise", t_eval)
    measured = t_out - t_eval
    return ("manchester x6 (phi2)", "cout", tv, measured)


def _barrel_case():
    width = 8
    net = barrel_shifter(width)
    result = TimingAnalyzer(net).analyze()
    tv = result.max_delay
    endpoint = result.critical_path.endpoint

    sim = SpiceLite(net, options=FAST)
    stim = {f"s{i}": constant(0.0) for i in range(width)}
    stim["s1"] = constant(5.0)  # rotate by 1
    for i in range(width):
        stim[f"d{i}"] = constant(0.0)
    # endpoint is q{i}; its source under rotate-1 is d{(i+1) % width}.
    out_bit = int(endpoint[1:])
    src = f"d{(out_bit + 1) % width}"
    stim[src] = step(5e-9, 0.0, 5.0)
    wave = sim.transient(stim, 60e-9, record=[src, endpoint])
    t_in = wave.crossing_after(src, 2.2, "rise", 2e-9)
    t_r = wave.crossing_after(endpoint, 2.2, "rise", t_in)
    t_f = wave.crossing_after(endpoint, 2.2, "fall", t_in)
    measured = min(t for t in (t_r, t_f) if t is not None) - t_in
    return ("barrel shifter x8", endpoint, tv, measured)


def _pla_case():
    terms = [
        ProductTerm({0: 1, 1: 1, 2: 0}, (0,)),
        ProductTerm({1: 0, 3: 1}, (0, 1)),
        ProductTerm({0: 0, 2: 1, 3: 0}, (1,)),
        ProductTerm({2: 1}, (2,)),
    ]
    net = pla(4, 3, terms)
    result = TimingAnalyzer(net).analyze()
    tv = result.max_delay
    endpoint = result.critical_path.endpoint
    startpoint = result.critical_path.startpoint

    sim = SpiceLite(net, options=FAST)
    stim = {f"in{i}": constant(0.0) for i in range(4)}
    stim[startpoint] = step(5e-9, 0.0, 5.0)
    wave = sim.transient(stim, 80e-9, record=[startpoint, endpoint])
    t_in = wave.crossing_after(startpoint, 2.2, "rise", 2e-9)
    crossings = [
        wave.crossing_after(endpoint, 2.2, d, t_in) for d in ("rise", "fall")
    ]
    candidates = [t for t in crossings if t is not None]
    measured = (max(candidates) - t_in) if candidates else float("nan")
    return ("pla 4x3 (4 terms)", endpoint, tv, measured)


def _static_only_cases():
    rows = []
    rf, _ = register_file(8, 8)
    result = TimingAnalyzer(rf).analyze()
    rows.append(("regfile 8x8", "min cycle", result.min_cycle, None))
    dp, _ = mips_like_datapath(16, 8)
    result = TimingAnalyzer(dp).analyze()
    rows.append(("datapath 16x8", "min cycle", result.min_cycle, None))
    return rows


def run_t2():
    cases = [
        (_ripple_case(), "static"),
        (_manchester_case(), "dynamic"),
        (_barrel_case(), "static"),
        (_pla_case(), "static"),
    ]
    rows = []
    errors = []
    for (label, endpoint, tv, measured), kind in cases:
        err = percent_error(tv, measured)
        errors.append((err, kind))
        rows.append(
            [label, endpoint, f"{tv * 1e9:8.2f}", f"{measured * 1e9:8.2f}",
             f"{err:+6.1f}%"]
        )
    for label, endpoint, tv, _none in _static_only_cases():
        rows.append([label, endpoint, f"{tv * 1e9:8.2f}", "n/a (too big to simulate)", ""])
    table = format_table(
        ["block", "endpoint", "TV (ns)", "SPICE-lite (ns)", "error"],
        rows,
        title="R-T2: block critical paths (static vs simulated worst path)",
    )
    table += (
        "\nnote: dynamic (precharged) chains carry known extra static"
        "\npessimism -- worst-path series resistance plus slope correction"
        "\non a reduced precharge swing; TV-class tools shared this and"
        "\ndesigners treated dynamic-node reports as upper bounds."
    )
    return table, errors


def test_t2_critical_paths(benchmark):
    table, errors = benchmark.pedantic(run_t2, rounds=1, iterations=1)
    save_result("t2_critical_paths", table)
    # Shape: static tracks simulation, never fatally optimistic
    # (value-independent analysis can exceed the single vector measured
    # here -- that is the pessimism the paper accepts).  Precharged
    # chains carry documented extra pessimism (see table note).
    for err, kind in errors:
        high = 400.0 if kind == "dynamic" else 150.0
        assert -35.0 < err < high, (err, kind)
