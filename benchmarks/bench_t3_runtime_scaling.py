"""R-T3: analysis runtime vs circuit size; speedup over simulation.

Claim validated: static analysis is near-linear in device count and three
or more orders of magnitude faster than transistor-level simulation -- the
economics that made whole-chip timing verification possible in 1983.

The analyzer is swept from 200 to 20k devices.  SPICE-lite is timed on the
sizes it can stomach (its dense solves are O(n^3) per step -- an honest
SPICE2 stand-in) and its per-device cost extrapolates from there.
"""

import time

from repro.bench import save_result, timed_analysis
from repro.circuits import random_logic
from repro.core import format_table
from repro.sim import SpiceLite, TransientOptions, constant

TV_SIZES = (200, 1000, 5000, 20000)
SIM_SIZES = (60, 160, 480)
SIM_SPAN = 20e-9  # simulated time per run


def _sim_seconds(n_devices: int) -> tuple[int, float]:
    net = random_logic(n_devices, seed=7)
    sim = SpiceLite(
        net, options=TransientOptions(dt=0.5e-9, settle=5e-9)
    )
    stimuli = {name: constant(0.0) for name in net.inputs}
    started = time.perf_counter()
    sim.transient(stimuli, SIM_SPAN, record=[])
    return len(net.devices), time.perf_counter() - started


def run_t3():
    rows = []
    tv_times = {}
    for size in TV_SIZES:
        net = random_logic(size, seed=7)
        seconds, _result = timed_analysis(net)
        tv_times[size] = seconds
        rate = len(net.devices) / seconds
        rows.append(
            ["TV", f"{len(net.devices)}", f"{seconds:8.3f}", f"{rate:10.0f}"]
        )
    sim_times = {}
    for size in SIM_SIZES:
        devices, seconds = _sim_seconds(size)
        sim_times[devices] = seconds
        rate = devices / seconds
        rows.append(
            [f"SPICE-lite ({SIM_SPAN * 1e9:.0f}ns run)", f"{devices}",
             f"{seconds:8.3f}", f"{rate:10.0f}"]
        )

    # Measured speedup at the largest size both engines touched.
    sim_dev, sim_t = max(sim_times.items())
    tv_small = random_logic(sim_dev, seed=7)
    tv_small_t, _ = timed_analysis(tv_small)
    speedup_equal = sim_t / tv_small_t

    # Whole-chip economics, the paper's actual claim.  Verifying a
    # 20k-device chip by simulation means (a) one full ~250 ns cycle per
    # vector, (b) simulator cost growing superlinearly with size (the
    # measured power-law exponent of the top two points -- the dense-solve
    # cubic term), and (c) at least one vector per potential critical
    # endpoint, since simulation only times the paths a vector happens to
    # exercise.  The static analyzer's 20k time is *measured*.
    import math

    cycle = 250e-9
    sizes = sorted(sim_times)
    n1, n2 = sizes[-2], sizes[-1]
    exponent = max(
        1.0, math.log(sim_times[n2] / sim_times[n1]) / math.log(n2 / n1)
    )
    per_vector = (
        sim_times[n2] * (20000 / n2) ** exponent * (cycle / SIM_SPAN)
    )
    n_vectors = max(32, len(random_logic(20000, seed=7).outputs))
    sim_fullchip = per_vector * n_vectors
    speedup_fullchip = sim_fullchip / tv_times[20000]

    table = format_table(
        ["engine", "devices", "seconds", "devices/s"],
        rows,
        title="R-T3: runtime scaling",
    )
    table += (
        f"\nmeasured speedup at {sim_dev} devices, one {SIM_SPAN * 1e9:.0f} ns"
        f" vector: {speedup_equal:.0f}x"
        f"\nmeasured simulator growth exponent: n^{exponent:.2f}"
        f"\nfull chip (20k devices, {cycle * 1e9:.0f} ns cycle,"
        f" {n_vectors} vectors): simulation ~{sim_fullchip:,.0f} s vs"
        f" analysis {tv_times[20000]:.2f} s (measured)"
        f" -> ~{speedup_fullchip:,.0f}x"
    )
    return table, tv_times, speedup_equal, speedup_fullchip


def test_t3_runtime_scaling(benchmark):
    table, tv_times, speedup_equal, speedup_fullchip = benchmark.pedantic(
        run_t3, rounds=1, iterations=1
    )
    save_result("t3_runtime_scaling", table)
    # Near-linear: 100x the devices costs < 400x the time.
    ratio = tv_times[20000] / tv_times[200]
    assert ratio < 400.0
    # Measured, like-for-like: analysis clearly wins already.
    assert speedup_equal > 5.0
    # The paper's whole-chip shape: >= 3 orders of magnitude.
    assert speedup_fullchip > 1000.0


def test_t3_analyzer_throughput(benchmark):
    """Steady-state analyzer throughput on a 5k-device circuit."""
    net = random_logic(5000, seed=7)

    def analyze():
        return timed_analysis(net)[1]

    result = benchmark(analyze)
    assert result.max_delay > 0
