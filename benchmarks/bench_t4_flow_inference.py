"""R-T4: signal-flow direction inference coverage.

Claim validated: the structural rules orient the overwhelming majority of
pass transistors automatically, leaving only genuinely ambiguous structures
(bidirectional buses) for designer hints -- the paper's accounting of how
much of the MIPS chip the rules covered.
"""

from repro import FlowDirection, Netlist
from repro.bench import save_result
from repro.circuits import (
    barrel_shifter,
    manchester_adder,
    mips_like_datapath,
    mux2,
    pass_chain,
    register_file,
    shift_register,
)
from repro.core import format_table
from repro.flow import HintSet, infer_flow


def _bidir_bus() -> Netlist:
    """A two-driver shared bus: the canonical hint-needing structure."""
    net = Netlist("bidir-bus")
    net.set_input("en_a", "en_b", "da", "db")
    net.add_pullup("qa")
    net.add_enh("da", "qa", "gnd")
    net.add_pullup("qb")
    net.add_enh("db", "qb", "gnd")
    net.add_enh("en_a", "qa", "bus", name="bus.swa")
    net.add_enh("en_b", "qb", "bus", name="bus.swb")
    net.add_pullup("sense")
    net.add_enh("bus", "sense", "gnd")
    net.set_output("sense")
    return net


def run_t4():
    designs = [
        ("pass chain x16", pass_chain(16), None),
        ("mux2", mux2(), None),
        ("barrel shifter x16", barrel_shifter(16), None),
        ("shift register x8", shift_register(8), None),
        ("manchester x16", manchester_adder(16), None),
        ("regfile 8x8", register_file(8, 8)[0], None),
        ("datapath 16x8", mips_like_datapath(16, 8)[0], None),
        (
            "bidirectional bus",
            _bidir_bus(),
            HintSet().add("bus.sw*", FlowDirection.S_TO_D),
        ),
    ]
    rows = []
    for label, net, hints in designs:
        if hints is not None:
            hints.apply(net)
        report = infer_flow(net)
        rows.append(
            [
                label,
                f"{report.total_devices}",
                f"{report.pass_candidates}",
                f"{report.auto_resolved}",
                f"{100.0 * report.coverage:5.1f}%",
                f"{len(report.hinted)}",
                f"{len(report.unresolved)}",
            ]
        )
    table = format_table(
        ["design", "devices", "pass", "auto", "coverage", "hints", "unresolved"],
        rows,
        title="R-T4: signal-flow inference coverage",
    )
    return table, rows


def test_t4_flow_inference(benchmark):
    table, rows = benchmark.pedantic(run_t4, rounds=1, iterations=1)
    save_result("t4_flow_inference", table)
    # Every generated design resolves fully; only the deliberate
    # bidirectional bus needs its two hints.
    for row in rows[:-1]:
        assert row[6] == "0", f"{row[0]} left devices unresolved"
    assert rows[-1][5] == "2"
