"""R-T5: two-phase clock verification -- phase widths, cycle time, races.

Claim validated: the analyzer answers the three clocking questions the
MIPS designers needed -- minimum width of each phase, minimum cycle time,
and the presence of race-through paths -- including catching an injected
same-phase latch chain that simulation would only expose with the right
(unlucky) vectors.
"""

from repro import Netlist, TimingAnalyzer, TwoPhaseClock
from repro.bench import save_result
from repro.circuits import (
    add_half_latch,
    manchester_adder,
    mips_like_datapath,
    register_file,
    shift_register,
)
from repro.core import format_table


def _racy_pipeline() -> Netlist:
    net = Netlist("injected-race")
    net.set_input("d")
    net.set_clock("phi1", "phi1")
    net.set_clock("phi2", "phi2")
    add_half_latch(net, "d", "q1", "phi1", tag="l1")
    add_half_latch(net, "q1", "q2", "phi1", tag="l2")  # deliberate bug
    add_half_latch(net, "q2", "q3", "phi2", tag="l3")
    net.set_output("q3")
    return net


def run_t5():
    designs = [
        ("shift register x4", shift_register(4)),
        ("manchester x8", manchester_adder(8)),
        ("manchester x16", manchester_adder(16)),
        ("regfile 8x8", register_file(8, 8)[0]),
        ("datapath 8x4", mips_like_datapath(8, 4)[0]),
        ("datapath 16x8", mips_like_datapath(16, 8)[0]),
        ("injected race", _racy_pipeline()),
    ]
    rows = []
    race_counts = {}
    cycles = {}
    for label, net in designs:
        result = TimingAnalyzer(net).analyze()
        v = result.clock_verification
        races = len(v.races)
        race_counts[label] = races
        cycles[label] = v.min_cycle
        rows.append(
            [
                label,
                f"{len(net.devices)}",
                f"{v.phases['phi1'].width * 1e9:8.2f}",
                f"{v.phases['phi2'].width * 1e9:8.2f}",
                f"{v.min_cycle * 1e9:8.2f}",
                f"{races}",
            ]
        )
    table = format_table(
        ["design", "devices", "phi1 (ns)", "phi2 (ns)", "cycle (ns)", "races"],
        rows,
        title="R-T5: two-phase verification (gap 2 ns x2 included in cycle)",
    )
    return table, race_counts, cycles


def test_t5_two_phase(benchmark):
    table, race_counts, cycles = benchmark.pedantic(
        run_t5, rounds=1, iterations=1
    )
    save_result("t5_two_phase", table)
    # Clean designs verify clean; the injected bug is caught.
    for label, races in race_counts.items():
        if label == "injected race":
            assert races >= 1
        else:
            assert races == 0, f"false race in {label}"
    # The Manchester chain dominates its cycle: doubling width raises the
    # evaluate phase markedly (quadratic chain term).
    assert cycles["manchester x16"] > 1.5 * cycles["manchester x8"]
    # Era-plausible MIPS-class cycle: single-digit MHz.
    assert 50e-9 < cycles["datapath 16x8"] < 1000e-9
