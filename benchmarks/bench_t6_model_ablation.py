"""R-T6 (ablation): which delay model earns its keep.

DESIGN.md calls out the delay model as the load-bearing design choice; this
ablation quantifies it.  Every RC metric (lumped, Elmore, Penfield-
Rubinstein bounds) and the slope correction are run over the accuracy
suite; the table reports mean/max error per configuration.  Expected shape:
Elmore+slope is the sweet spot; lumped is grossly pessimistic on chains;
pr-min is optimistic (it is a lower bound); disabling slope hurts
everything driven by slow edges.
"""

from repro.bench import compare_delay, save_result
from repro.circuits import inverter_chain, nand, pass_chain, xor2
from repro.core import format_table
from repro.delay import DELAY_MODELS, NO_SLOPE, SlopeModel
from repro.sim import TransientOptions

FAST = TransientOptions(dt=0.1e-9, settle=30e-9)
FF = 1e-15


def _loaded(net, node, cap=50 * FF):
    net.add_cap(node, cap)
    return net


def _cases():
    return [
        ("inv", _loaded(inverter_chain(1), "n0"), "a", "n0", "rise", {}),
        ("chain x6", inverter_chain(6), "a", "n5", "rise", {}),
        ("nand3", _loaded(nand(3), "out"), "a2", "out", "rise",
         {"a0": 1, "a1": 1}),
        ("xor", xor2(), "a", "out", "rise", {"b": 0}),
        ("pass x4", pass_chain(4), "d", "p3", "rise", {"sel": 1}),
        ("pass x8", pass_chain(8), "d", "p7", "rise", {"sel": 1}),
    ]


def run_t6():
    configurations = [(m, True) for m in DELAY_MODELS] + [("elmore", False)]
    rows = []
    stats = {}
    for model, with_slope in configurations:
        slope = SlopeModel() if with_slope else NO_SLOPE
        errors = []
        for label, net, trigger, output, direction, state in _cases():
            row = compare_delay(
                net, trigger, output,
                direction=direction, input_state=state,
                model=model, slope=slope, sim_options=FAST,
            )
            errors.append(row.error_pct)
        name = f"{model}{'' if with_slope else ' (no slope)'}"
        mean_abs = sum(abs(e) for e in errors) / len(errors)
        stats[name] = (mean_abs, min(errors), max(errors))
        rows.append(
            [
                name,
                f"{mean_abs:6.1f}%",
                f"{min(errors):+7.1f}%",
                f"{max(errors):+7.1f}%",
            ]
        )
    table = format_table(
        ["model", "mean |err|", "worst optimism", "worst pessimism"],
        rows,
        title="R-T6: delay-model ablation over the accuracy suite",
    )
    return table, stats


def test_t6_model_ablation(benchmark):
    table, stats = benchmark.pedantic(run_t6, rounds=1, iterations=1)
    save_result("t6_model_ablation", table)
    elmore = stats["elmore"][0]
    # Elmore beats the lumped strawman and the PR upper bound on average.
    assert elmore <= stats["lumped"][0]
    assert elmore <= stats["pr-max"][0]
    # pr-min is a lower bound: it must lean optimistic vs elmore.
    assert stats["pr-min"][1] <= stats["elmore"][1]
    # Dropping slope correction visibly hurts.
    assert elmore <= stats["elmore (no slope)"][0] + 1e-9
