"""R-T7 (baseline): transistor-level analysis vs gate-level models.

The quiet argument of the paper: nMOS timing *cannot* be done at the gate
level, because the slow structures are not gates.  Unit-delay and
fanout-delay analyzers are run against TV on pass-transistor-rich blocks;
the table shows how the gate models flatten structures whose true delay
varies by an order of magnitude, and mis-rank the critical path.
"""

from repro import TimingAnalyzer
from repro.baselines import FanoutDelayAnalyzer, UnitDelayAnalyzer
from repro.bench import save_result
from repro.circuits import barrel_shifter, pass_chain, ripple_adder
from repro.core import format_table


def run_t7():
    designs = [
        ("pass chain x2", pass_chain(2)),
        ("pass chain x8", pass_chain(8)),
        ("pass chain x16", pass_chain(16)),
        ("barrel shifter x8", barrel_shifter(8)),
        ("ripple adder x6", ripple_adder(6)),
    ]
    rows = []
    data = {}
    for label, net in designs:
        tv = TimingAnalyzer(net).analyze().max_delay
        unit = UnitDelayAnalyzer(net).analyze().max_delay
        fanout = FanoutDelayAnalyzer(net).analyze().max_delay
        data[label] = (tv, unit, fanout)
        rows.append(
            [
                label,
                f"{tv * 1e9:8.2f}",
                f"{unit * 1e9:8.2f}",
                f"{fanout * 1e9:8.2f}",
            ]
        )
    table = format_table(
        ["design", "TV (ns)", "unit-delay (ns)", "fanout (ns)"],
        rows,
        title="R-T7: transistor-level vs gate-level timing",
    )

    # Ranking check: which design each model calls slowest.
    def slowest(index):
        return max(data, key=lambda k: data[k][index])

    table += (
        f"\nslowest design per model -- TV: {slowest(0)}, "
        f"unit: {slowest(1)}, fanout: {slowest(2)}"
    )
    return table, data


def test_t7_baselines(benchmark):
    table, data = benchmark.pedantic(run_t7, rounds=1, iterations=1)
    save_result("t7_baselines", table)
    # TV sees the pass chain growing; the unit model sees nothing.
    assert data["pass chain x16"][0] > 4 * data["pass chain x2"][0]
    assert data["pass chain x16"][1] == data["pass chain x2"][1]
    # The unit model under-ranks the x16 chain against the ripple adder;
    # TV knows the chain at this length is the real problem structure.
    tv_ratio = data["pass chain x16"][0] / data["pass chain x2"][0]
    unit_ratio = data["pass chain x16"][1] / data["pass chain x2"][1]
    assert tv_ratio > 4 * unit_ratio
