"""R-X1 (extension): the performance-improvement loop's convergence.

Jouppi's follow-up work closed the loop TV opened: analyze, widen the
critical path's dominant devices, repeat.  This extension experiment
reproduces that figure -- metric vs iteration -- on a loaded driver chain
and on the 8-bit datapath.  Expected shape: large early gains that
saturate within a handful of iterations as the critical path moves
elsewhere (the classic diminishing-returns curve).
"""

from repro import TimingAnalyzer
from repro.bench import Series, save_result
from repro.circuits import inverter_chain, mips_like_datapath
from repro.core import format_table
from repro.opt import optimize


def run_x1():
    rows = []
    series = {}

    chain = inverter_chain(4, load=500e-15)
    before = TimingAnalyzer(chain).analyze().max_delay
    chain_series = Series("loaded chain", "iteration", "delay_ns")
    chain_series.add(0, round(before * 1e9, 3))
    for step in optimize(chain, iterations=6):
        chain_series.add(step.iteration, round(step.delay_after * 1e9, 3))
    series["chain"] = chain_series

    dp, _ = mips_like_datapath(8, 4)
    before_dp = TimingAnalyzer(dp).analyze().min_cycle
    dp_series = Series("datapath 8x4", "iteration", "cycle_ns")
    dp_series.add(0, round(before_dp * 1e9, 3))
    for step in optimize(dp, iterations=5, limit=6):
        dp_series.add(step.iteration, round(step.delay_after * 1e9, 3))
    series["datapath"] = dp_series

    for name, s in series.items():
        first = s.points[0][1]
        last = s.points[-1][1]
        rows.append(
            [name, f"{first:8.2f}", f"{last:8.2f}",
             f"{100 * (first - last) / first:5.1f}%",
             f"{len(s.points) - 1}"]
        )
    table = format_table(
        ["design", "before (ns)", "after (ns)", "gain", "iterations"],
        rows,
        title="R-X1: critical-path resizing loop",
    )
    table += "\n\n" + series["chain"].format()
    table += "\n\n" + series["datapath"].format()
    return table, series


def test_x1_optimizer(benchmark):
    table, series = benchmark.pedantic(run_x1, rounds=1, iterations=1)
    save_result("x1_optimizer", table)
    chain = [y for _x, y in series["chain"].points]
    # Strong improvement on the loaded chain, monotone until the stop.
    assert chain[-1] < 0.7 * chain[0]
    assert all(b <= a * 1.0001 for a, b in zip(chain, chain[1:]))
    # The datapath improves too (its paths are already reasonably sized,
    # so gains are smaller but real).
    dp = [y for _x, y in series["datapath"].points]
    assert dp[-1] < dp[0]
