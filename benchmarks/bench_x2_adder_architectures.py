"""R-X2 (extension): adder-architecture design space, as TV would judge it.

The analyzer's real product was design decisions: which adder goes in the
datapath?  This extension experiment times the three classic nMOS choices
across widths -- static ripple (linear in width, cheap), carry-select
(carry hops per section, ~2x area), and the dynamic Manchester chain
(dense, but quadratic chain term plus a precharge phase).  Expected shape:
ripple grows linearly and loses badly by 16 bits; carry-select flattens;
Manchester sits between on evaluate time but pays the precharge phase in
its full cycle.
"""

from repro import TimingAnalyzer
from repro.bench import save_result
from repro.circuits import carry_select_adder, manchester_adder, ripple_adder
from repro.core import format_table

WIDTHS = (4, 8, 16, 24)


def run_x2():
    rows = []
    data = {}
    for width in WIDTHS:
        ripple = TimingAnalyzer(ripple_adder(width)).analyze().max_delay
        csel = TimingAnalyzer(
            carry_select_adder(width, section=4)
        ).analyze().max_delay
        man_result = TimingAnalyzer(manchester_adder(width)).analyze()
        man_eval = man_result.clock_verification.phases["phi2"].width
        man_cycle = man_result.min_cycle
        data[width] = (ripple, csel, man_eval, man_cycle)
        rows.append(
            [
                f"{width}",
                f"{ripple * 1e9:8.2f}",
                f"{csel * 1e9:8.2f}",
                f"{man_eval * 1e9:8.2f}",
                f"{man_cycle * 1e9:8.2f}",
            ]
        )
    table = format_table(
        ["width", "ripple (ns)", "carry-select (ns)",
         "manchester eval (ns)", "manchester cycle (ns)"],
        rows,
        title="R-X2: adder architectures under static analysis",
    )
    return table, data


def test_x2_adder_architectures(benchmark):
    table, data = benchmark.pedantic(run_x2, rounds=1, iterations=1)
    save_result("x2_adder_architectures", table)
    # Ripple grows ~linearly with width.
    assert data[24][0] / data[8][0] > 2.0
    # Carry-select beats ripple clearly at 16+ bits.
    assert data[16][1] < 0.7 * data[16][0]
    assert data[24][1] < 0.6 * data[24][0]
    # At narrow widths the select overhead wipes out the gain.
    assert data[4][1] > 0.8 * data[4][0]
