"""R-X3 (extension): three-corner signoff.

The shipping decision of a 1983 chip: the slow corner sets the data-sheet
cycle time; the fast corner sets the race margins (the minimum non-overlap
the clock generator must guarantee).  This experiment runs the full
two-phase verification of the datapath across the classic corner set.
Expected shape: ~1.5x cycle-time spread slow/fast, and the *fast* corner
giving the smallest overlap margin -- exactly why min-delay checks run
fast-corner.
"""

from repro import TimingAnalyzer, Technology
from repro.bench import save_result
from repro.circuits import mips_like_datapath
from repro.core import format_table


def run_x3():
    rows = []
    data = {}
    for which, tech in Technology.corners().items():
        net, _ = mips_like_datapath(8, 4, tech=tech)
        result = TimingAnalyzer(net).analyze()
        v = result.clock_verification
        margin = min(
            (m.margin for m in v.overlap_margins if m.margin is not None),
            default=None,
        )
        data[which] = (v.min_cycle, margin)
        rows.append(
            [
                which,
                f"{v.phases['phi1'].width * 1e9:8.2f}",
                f"{v.phases['phi2'].width * 1e9:8.2f}",
                f"{v.min_cycle * 1e9:8.2f}",
                f"{margin * 1e9:6.3f}" if margin is not None else "inf",
            ]
        )
    table = format_table(
        ["corner", "phi1 (ns)", "phi2 (ns)", "cycle (ns)", "overlap margin (ns)"],
        rows,
        title="R-X3: three-corner signoff of datapath 8x4",
    )
    table += (
        "\ncycle-time signoff = slow corner; race margin = fast corner"
    )
    return table, data


def test_x3_corners(benchmark):
    table, data = benchmark.pedantic(run_x3, rounds=1, iterations=1)
    save_result("x3_corners", table)
    slow_cycle, _ = data["slow"]
    typ_cycle, typ_margin = data["typ"]
    fast_cycle, fast_margin = data["fast"]
    # Ordering and a realistic spread.
    assert fast_cycle < typ_cycle < slow_cycle
    assert 1.3 < slow_cycle / fast_cycle < 2.5
    # The race margin shrinks on the fast corner.
    assert fast_margin is not None and typ_margin is not None
    assert fast_margin < typ_margin
