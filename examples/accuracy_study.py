"""Accuracy study: static TV estimates against SPICE-lite simulation.

For each nMOS stage archetype, step an input in the transient simulator,
measure the true 50% delay, and compare against the analyzer's worst-case
arrival -- the experiment behind the paper's "within ~10% of SPICE" claim.

Run:  python examples/accuracy_study.py
"""

from repro.bench import compare_delay
from repro.circuits import (
    inverter_chain,
    nand,
    nor,
    pass_chain,
    superbuffer,
    xor2,
)
from repro.core import format_table
from repro.sim import TransientOptions

FAST = TransientOptions(dt=0.1e-9, settle=30e-9)


def main() -> None:
    # Single gates carry a realistic 50 fF wire+fanout load (an unloaded
    # minimum gate is slope-dominated and measures the stimulus, not the
    # stage); NAND triggers its bottom input, the worst-case vector the
    # static analysis assumes.
    FF = 1e-15

    def loaded(net, node, cap=50 * FF):
        net.add_cap(node, cap)
        return net

    cases = [
        ("inverter", loaded(inverter_chain(1), "n0"), "a", "n0", "rise", {}),
        ("inverter (rise)", loaded(inverter_chain(1), "n0"), "a", "n0", "fall", {}),
        ("chain x4", inverter_chain(4), "a", "n3", "rise", {}),
        ("nand2", loaded(nand(2), "out"), "a1", "out", "rise", {"a0": 1}),
        ("nand3", loaded(nand(3), "out"), "a2", "out", "rise", {"a0": 1, "a1": 1}),
        ("nor2", loaded(nor(2), "out"), "a0", "out", "rise", {"a1": 0}),
        ("xor", xor2(), "a", "out", "rise", {"b": 0}),
        ("pass chain x2", pass_chain(2), "d", "p1", "rise", {"sel": 1}),
        ("pass chain x6", pass_chain(6), "d", "p5", "rise", {"sel": 1}),
        ("superbuffer", loaded(superbuffer(), "out", 150 * FF), "a", "out", "rise", {}),
    ]

    rows = []
    for label, net, trigger, output, direction, state in cases:
        row = compare_delay(
            net,
            trigger,
            output,
            direction=direction,
            input_state=state,
            label=label,
            sim_options=FAST,
        )
        rows.append(row.cells())

    print(
        format_table(
            ["stage", "edge", "TV (ns)", "SPICE-lite (ns)", "error"],
            rows,
            title="static estimate vs transient simulation",
        )
    )
    errors = [abs(float(r[-1].rstrip("%"))) for r in rows]
    print(f"\nmean |error|: {sum(errors) / len(errors):.1f}%   "
          f"max |error|: {max(errors):.1f}%")


if __name__ == "__main__":
    main()
