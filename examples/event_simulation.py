"""Event-driven simulation (RSIM-class) and the cross-engine invariant.

The 1983 flow had three tools: the static analyzer (all vectors, worst
case), the event-driven switch simulator (one vector, RC-timed), and SPICE
(one vector, exact).  This example runs a concrete vector through the
event simulator and shows the invariant that ties the tools together:
**no vector settles later than the static worst case.**

Run:  python examples/event_simulation.py
"""

from repro import TimingAnalyzer
from repro.circuits import bus, ripple_adder
from repro.sim import RSim


def main() -> None:
    width = 4
    net = ripple_adder(width)

    # Static worst case over all vectors.
    result = TimingAnalyzer(net).analyze()
    print(f"static worst case to any sum bit: "
          f"{result.max_delay * 1e9:.2f} ns")

    # One concrete vector: launch the full carry ripple (a=0001 + b=1111).
    rsim = RSim(net)
    rsim.drive_word(bus("a", width), 0)
    rsim.drive_word(bus("b", width), 2**width - 1)
    rsim.drive("cin", 0)
    rsim.settle()
    print(f"\ninitial state settled at t = {rsim.now * 1e9:.2f} ns; "
          f"sum = {rsim.word(bus('sum', width))}")

    since = rsim.now
    rsim.drive("a0", 1)  # 1 + 1111 -> carry ripples the whole width
    rsim.settle()
    print(f"after a0 rise: sum = {rsim.word(bus('sum', width))}, "
          f"cout = {rsim.value('cout')}")

    print("\nper-bit settle times vs static worst-case arrivals:")
    for i in range(width):
        node = f"sum{i}"
        settle = rsim.settle_time_of(node, since)
        event_t = (settle - since) * 1e9 if settle else 0.0
        static_t = result.arrival_of(node) * 1e9
        print(f"  {node}: event {event_t:6.2f} ns   "
              f"static bound {static_t:6.2f} ns   "
              f"{'OK' if event_t <= static_t + 1e-9 else 'VIOLATION'}")

    print("\nevent history of the carry-out:")
    for t, v in rsim.history("cout")[-4:]:
        print(f"  t = {t * 1e9:7.2f} ns -> {v}")


if __name__ == "__main__":
    main()
