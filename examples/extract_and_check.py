"""The extraction flow: .sim files, electrical rules, flow hints.

TV sat downstream of a layout extractor: designs arrived as ``.sim``
netlists, went through electrical rules checking, and pass transistors the
structural rules could not orient were annotated by hand.  This example
walks that flow end to end, including a deliberately broken netlist.

Run:  python examples/extract_and_check.py
"""

from repro import FlowDirection, Netlist, TimingAnalyzer
from repro.circuits import barrel_shifter
from repro.errors import ElectricalRuleError
from repro.flow import HintSet
from repro.netlist import check, sim_dumps, sim_loads


def round_trip() -> None:
    print("=" * 60)
    print("1. dump a generated design to .sim and reload it")
    print("=" * 60)
    original = barrel_shifter(4)
    text = sim_dumps(original)
    print("\n".join(text.splitlines()[:8]))
    print(f"... ({len(text.splitlines())} lines total)")

    restored = sim_loads(text)
    result = TimingAnalyzer(restored).analyze()
    print(f"\nreloaded and analyzed: max delay "
          f"{result.max_delay * 1e9:.2f} ns, "
          f"{result.flow.auto_resolved} pass devices auto-oriented")


def broken_netlist() -> None:
    print()
    print("=" * 60)
    print("2. electrical rules catch extraction bugs")
    print("=" * 60)
    text = """| units: 1 tech: nmos name: broken
|I a
e ghost y gnd
d y y vdd
d vdd2 vdd gnd
e a q gnd
"""
    net = sim_loads(text)
    for violation in check(net):
        print(f"  {violation}")
    try:
        TimingAnalyzer(net)
    except ElectricalRuleError as exc:
        print(f"\nanalyzer refused the netlist:\n  {exc}")


def hinted_bus() -> None:
    print()
    print("=" * 60)
    print("3. a bidirectional bus needs a designer hint")
    print("=" * 60)
    net = Netlist("bus")
    net.set_input("en_a", "en_b", "da", "db")
    # Two drivers onto one bus through pass switches: structurally
    # ambiguous which way the bus flows.
    net.add_pullup("qa")
    net.add_enh("da", "qa", "gnd")
    net.add_pullup("qb")
    net.add_enh("db", "qb", "gnd")
    net.add_enh("en_a", "qa", "shared_bus", name="bus.swa")
    net.add_enh("en_b", "qb", "shared_bus", name="bus.swb")
    net.add_pullup("sense")
    net.add_enh("shared_bus", "sense", "gnd")
    net.set_output("sense")

    tv = TimingAnalyzer(net)
    print(tv.flow_report.summary())

    print("\nafter hinting both switches toward the bus:")
    HintSet().add("bus.sw*", FlowDirection.UNKNOWN if False else "s->d").apply(net)
    tv2 = TimingAnalyzer(net)
    print(tv2.flow_report.summary())
    result = tv2.analyze()
    print(f"\nmax delay with oriented bus: {result.max_delay * 1e9:.2f} ns")


if __name__ == "__main__":
    round_trip()
    broken_netlist()
    hinted_bus()
