"""Whole-block analysis: the MIPS-like datapath.

This is the reproduction of the paper's headline use: point the analyzer
at a complete two-phase datapath (register file + Manchester-carry ALU +
barrel shifter + pipeline latches) and get back the minimum cycle time,
per-phase critical paths, and the design's timing profile -- in seconds,
with no input vectors.

Run:  python examples/mips_datapath_timing.py [width] [nregs]
"""

import sys
import time

from repro import TimingAnalyzer
from repro.circuits import mips_like_datapath
from repro.core import design_fingerprint, slack_histogram


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    nregs = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    started = time.perf_counter()
    netlist, ports = mips_like_datapath(width, nregs)
    print(f"generated {netlist.name}: {len(netlist.devices)} transistors "
          f"in {time.perf_counter() - started:.2f}s")

    tv = TimingAnalyzer(netlist)
    print(design_fingerprint(netlist, tv.stage_graph))
    print()

    result = tv.analyze()
    print(result.report())

    # The per-phase stories.
    verification = result.clock_verification
    for phase in ("phi1", "phi2"):
        phase_result = verification.phases[phase]
        print(f"\n--- {phase}: min width "
              f"{phase_result.width * 1e9:.2f} ns ---")
        if phase_result.critical is not None:
            print(phase_result.critical.format())

    # Timing profile: how arrival times distribute across the chip.
    worst_phase = max(verification.phases.values(), key=lambda p: p.width)
    print(f"\narrival-time histogram ({worst_phase.phase}):")
    for low, high, count in slack_histogram(worst_phase.arrivals, bins=10):
        bar = "#" * min(60, count)
        print(f"  {low * 1e9:7.2f}-{high * 1e9:7.2f} ns  {count:5d} {bar}")


if __name__ == "__main__":
    main()
