"""Performance improvement: the analyze -> resize -> re-analyze loop.

TV's reports drove a tuning loop (later systematized in Jouppi's 1987
follow-up): widen the devices that dominate the critical path, re-run the
analysis, repeat.  This example tunes a heavily loaded driver chain and
then a small datapath, printing each iteration's gain.

Run:  python examples/performance_improvement.py
"""

from repro import TimingAnalyzer
from repro.circuits import inverter_chain, mips_like_datapath
from repro.opt import optimize, suggest_resizing


def tune_driver_chain() -> None:
    print("=" * 60)
    print("1. a weak driver on a 500 fF bus")
    print("=" * 60)
    net = inverter_chain(4, load=500e-15)
    result = TimingAnalyzer(net).analyze()
    print(f"before: {result.max_delay * 1e9:.2f} ns")
    print("advisor's first suggestions:")
    for s in suggest_resizing(net, result):
        partners = f" (+{len(s.partners)} ratio partner(s))" if s.partners else ""
        print(f"  widen {s.device} to {s.new_w * 1e6:.0f} um -- {s.reason}{partners}")

    history = optimize(net, iterations=6)
    for step in history:
        print(
            f"  iteration {step.iteration}: "
            f"{step.delay_before * 1e9:6.2f} -> {step.delay_after * 1e9:6.2f} ns"
        )
    final = TimingAnalyzer(net).analyze()
    print(f"after : {final.max_delay * 1e9:.2f} ns")


def tune_datapath() -> None:
    print()
    print("=" * 60)
    print("2. shaving the datapath's cycle time")
    print("=" * 60)
    net, _ports = mips_like_datapath(8, 4)
    before = TimingAnalyzer(net).analyze().min_cycle
    print(f"before: min cycle {before * 1e9:.2f} ns")
    history = optimize(net, iterations=4, limit=6)
    for step in history:
        print(
            f"  iteration {step.iteration}: "
            f"{step.delay_before * 1e9:6.2f} -> {step.delay_after * 1e9:6.2f} ns"
        )
    after = TimingAnalyzer(net).analyze().min_cycle
    print(f"after : min cycle {after * 1e9:.2f} ns "
          f"({100 * (before - after) / before:.1f}% faster)")


if __name__ == "__main__":
    tune_driver_chain()
    tune_datapath()
