"""Process scaling: what a shrink buys (and what it doesn't).

``Technology.scaled()`` shrinks lambda at constant field.  Device gate
areas (and so capacitances) fall quadratically while effective resistances
per square are unchanged, so RC delays -- and the datapath's verified
minimum cycle -- drop roughly with the square of the shrink.  The pass
chain keeps its *quadratic-in-length* shape at every node of the process:
scaling changes the constants, not the structure, which is why the
buffer-insertion rule survived every process generation.

Run:  python examples/process_scaling.py
"""

from repro import NMOS4, TimingAnalyzer
from repro.circuits import mips_like_datapath, pass_chain
from repro.core import format_table


def main() -> None:
    factors = (1.0, 0.5, 0.25)

    rows = []
    for factor in factors:
        tech = NMOS4.scaled(factor)
        dp, _ = mips_like_datapath(8, 4, tech=tech)
        cycle = TimingAnalyzer(dp).analyze().min_cycle
        chain = TimingAnalyzer(pass_chain(8, tech=tech)).analyze().max_delay
        rows.append(
            [
                f"{tech.lam * 1e6:.1f} um lambda",
                f"{cycle * 1e9:8.2f}",
                f"{1.0 / cycle / 1e6:8.2f}",
                f"{chain * 1e9:7.3f}",
            ]
        )

    print(
        format_table(
            ["process", "min cycle (ns)", "freq (MHz)", "pass chain x8 (ns)"],
            rows,
            title="constant-field scaling of the 8-bit datapath",
        )
    )

    print(
        "\nthe shape survives scaling: at every node the x8 chain is still"
        "\n~quadratically slower than a short one -- the buffer-insertion"
        "\ndesign rule is process-independent."
    )
    for factor in factors:
        tech = NMOS4.scaled(factor)
        d2 = TimingAnalyzer(pass_chain(2, tech=tech)).analyze().max_delay
        d8 = TimingAnalyzer(pass_chain(8, tech=tech)).analyze().max_delay
        print(f"  lambda {tech.lam * 1e6:4.1f} um: chain x8 / x2 = {d8 / d2:.1f}x")


if __name__ == "__main__":
    main()
