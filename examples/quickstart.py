"""Quickstart: build an nMOS circuit, run the TV analyzer, read the report.

Run:  python examples/quickstart.py
"""

from repro import Netlist, TimingAnalyzer
from repro.circuits import add_inverter, add_nand, add_pass


def main() -> None:
    # Build a small circuit by hand: two inputs, a NAND, a pass switch,
    # and an output buffer -- the kind of structure a layout extractor
    # would hand the analyzer.
    net = Netlist("quickstart")
    net.set_input("a", "b", "enable")

    add_nand(net, ["a", "b"], "nand_out", tag="g1")
    add_pass(net, "enable", "nand_out", "bus", name="sw")
    add_inverter(net, "bus", "y", tag="buf")
    net.set_output("y")

    # The analyzer runs the whole TV pipeline: electrical rules checks,
    # signal-flow inference, stage decomposition, arc extraction, and
    # worst-case arrival propagation.
    tv = TimingAnalyzer(net)
    result = tv.analyze()

    print(result.report())
    print()
    print(f"worst-case delay to y: {result.max_delay * 1e9:.3f} ns")
    print(f"arrival at bus       : {result.arrival_of('bus') * 1e9:.3f} ns")

    # Each path step names the devices on the worst RC path, so a designer
    # can find the transistor to resize.
    path = result.critical_path
    print(f"\ncritical path devices: "
          f"{[d for s in path.steps for d in s.devices]}")


if __name__ == "__main__":
    main()
