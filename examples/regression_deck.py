"""Block regression with a test-vector deck.

Every block in a real flow shipped with a vector deck; this example runs
the one in ``examples/decks/adder16.vec`` against a generated 16-bit
ripple adder -- the same thing ``repro simulate adder.sim adder16.vec``
does from the shell -- and then demonstrates a failure report by running
the deck against a deliberately mis-wired adder.

Run:  python examples/regression_deck.py
"""

import pathlib

from repro.circuits import ripple_adder
from repro.sim import parse_deck, run_deck

DECK = pathlib.Path(__file__).parent / "decks" / "adder16.vec"


def main() -> None:
    commands = parse_deck(DECK.read_text())
    print(f"deck: {DECK.name} ({len(commands)} commands)")

    print("\n--- correct adder ---")
    result = run_deck(ripple_adder(16), commands)
    print(result.summary())
    assert result.ok

    print("\n--- sabotaged adder (a0 and a8 wires crossed) ---")
    broken = ripple_adder(16)
    # Swap two input wires the way a layout mistake would: every device
    # gated by a0 now listens to a8 and vice versa.
    for dev in broken.devices.values():
        if dev.gate == "a0":
            dev.gate = "a8"
        elif dev.gate == "a8":
            dev.gate = "a0"
    result = run_deck(broken, commands)
    print(result.summary())
    assert not result.ok, "the deck must catch the mis-wiring"
    print("\nthe deck caught the bug, as a regression deck should.")


if __name__ == "__main__":
    main()
