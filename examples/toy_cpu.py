"""The whole machine: PLA control + MIPS-like datapath, analyzed together.

This is the closest thing the package has to the chip TV was built for: a
sequencer FSM (state register + PLA) drives the datapath's ALU selects
through the standard control/datapath phase discipline.  The example
functionally exercises the machine with the switch-level simulator, then
verifies its clocking statically -- two-phase widths, cycle time, races,
overlap margins, charge hazards -- the whole 1983 signoff.

Run:  python examples/toy_cpu.py
"""

from repro import TimingAnalyzer
from repro.circuits import toy_cpu
from repro.core import charge_sharing_report, design_fingerprint
from repro.sim import SwitchSim
from repro.stages import decompose

OPS = ("ADD", "AND", "OR", "XOR")


def cycle(sim):
    sim.step({"phi1": 1, "phi2": 0})
    sim.step({"phi1": 0, "phi2": 1})
    sim.step({"phi1": 0, "phi2": 0})


def main() -> None:
    width = 4
    cpu, ports = toy_cpu(width, 2)
    print(design_fingerprint(cpu, decompose(cpu)))

    # ------------------------------------------------------------------
    # Execute: reset, then let the sequencer walk the ALU ops on B = 5.
    # ------------------------------------------------------------------
    sim = SwitchSim(cpu)
    for name in list(sim._values):  # power-on: zero the register file
        if ".cell" in name and name.endswith(".s"):
            sim._values[name] = 0
        if ".cell" in name and name.endswith(".ns"):
            sim._values[name] = 1
    sim.set_input(ports["run"], 1)
    sim.set_input(ports["write_enable"], 0)
    sim.set_input(ports["carry_in"], 0)
    sim.set_word(ports["address"], 0)
    sim.set_word(ports["shift_select"], 1)
    sim.set_word(ports["b"], 5)
    sim.set_input(ports["reset"], 1)
    cycle(sim)
    cycle(sim)
    sim.set_input(ports["reset"], 0)

    print(f"\nexecuting with A = r0 = 0, B = 5:")
    for _ in range(5):
        cycle(sim)
        state = sim.word(ports["state"])
        result = sim.word(ports["result"])
        op = OPS[state] if state is not None else "?"
        print(f"  state {state} ({op:>3}): result bus = {result}")

    # ------------------------------------------------------------------
    # Sign off: static verification of the whole machine.
    # ------------------------------------------------------------------
    print()
    result = TimingAnalyzer(cpu).analyze()
    print(result.clock_verification.summary())
    hazards = charge_sharing_report(cpu)
    print(f"charge-sharing hazards: {len(hazards)}")
    print(f"\nworst path of the machine:")
    print(result.paths[0].format())


if __name__ == "__main__":
    main()
