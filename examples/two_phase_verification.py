"""Two-phase clock verification: min cycle, phase widths, race detection.

Demonstrates the clocking half of the analyzer on three designs:

1. a clean shift register -- minimum phase widths and cycle time;
2. a Manchester-carry adder -- precharge/evaluate phase budgeting;
3. a deliberately broken pipeline with two same-phase latches in series --
   the classic race-through bug, which the analyzer must flag.

Run:  python examples/two_phase_verification.py
"""

from repro import Netlist, TimingAnalyzer, TwoPhaseClock
from repro.circuits import add_half_latch, manchester_adder, shift_register


def clean_pipeline() -> None:
    print("=" * 60)
    print("1. clean shift register")
    print("=" * 60)
    result = TimingAnalyzer(shift_register(4)).analyze()
    print(result.clock_verification.summary())


def dynamic_adder() -> None:
    print()
    print("=" * 60)
    print("2. Manchester adder (precharge phi1 / evaluate phi2)")
    print("=" * 60)
    result = TimingAnalyzer(manchester_adder(8)).analyze()
    verification = result.clock_verification
    print(verification.summary())
    print("\nworst evaluate-phase path (the carry chain):")
    print(verification.phases["phi2"].critical.format())


def racy_pipeline() -> None:
    print()
    print("=" * 60)
    print("3. broken pipeline: two phi1 latches in series")
    print("=" * 60)
    net = Netlist("racy")
    net.set_input("d")
    net.set_clock("phi1", "phi1")
    net.set_clock("phi2", "phi2")
    add_half_latch(net, "d", "q1", "phi1", tag="l1")
    add_half_latch(net, "q1", "q2", "phi1", tag="l2")  # BUG: same phase
    add_half_latch(net, "q2", "q3", "phi2", tag="l3")
    net.set_output("q3")

    result = TimingAnalyzer(net).analyze()
    verification = result.clock_verification
    print(verification.summary())
    assert verification.races, "the race must be detected"
    print("\nthe analyzer caught the race: data would shoot through both")
    print("phi1 latches in a single phase.")


def custom_schema() -> None:
    print()
    print("=" * 60)
    print("4. widening the non-overlap gap costs cycle time")
    print("=" * 60)
    for gap_ns in (1.0, 4.0, 16.0):
        clock = TwoPhaseClock(nonoverlap=gap_ns * 1e-9)
        result = TimingAnalyzer(shift_register(3), clock=clock).analyze()
        print(f"  gap {gap_ns:5.1f} ns -> min cycle "
              f"{result.min_cycle * 1e9:7.2f} ns")


if __name__ == "__main__":
    clean_pipeline()
    dynamic_adder()
    racy_pipeline()
    custom_schema()
