"""Setuptools entry point.

The pyproject.toml intentionally omits a ``[build-system]`` table so that
``pip install -e .`` uses the legacy setup.py develop path, which works in
fully offline environments without the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Jouppi's 'Timing Analysis for nMOS VLSI' "
        "(DAC 1983): the TV static timing analyzer and its substrates."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
