"""repro: a reproduction of "Timing Analysis for nMOS VLSI" (Jouppi, DAC 1983).

This package implements the TV static timing analyzer and every substrate it
needs, in pure Python:

* :mod:`repro.netlist` -- transistor-level nMOS netlists (+ ``.sim`` codec)
* :mod:`repro.stages` -- channel-connected stage decomposition and node
  classification
* :mod:`repro.flow` -- signal-flow direction inference for pass transistors
* :mod:`repro.delay` -- RC/Elmore/Penfield-Rubinstein delay models
* :mod:`repro.clocks` -- two-phase non-overlapping clock schemas
* :mod:`repro.core` -- the TV analyzer: arrival propagation, critical paths,
  clock verification
* :mod:`repro.sim` -- reference simulators (event-driven switch-level, and a
  numerical "SPICE-lite" transient simulator)
* :mod:`repro.circuits` -- parametric nMOS benchmark circuit generators up to
  a MIPS-like datapath
* :mod:`repro.baselines` -- gate-level baseline timing models

Quickstart::

    from repro import Netlist, TimingAnalyzer
    from repro.circuits import inverter_chain

    net = inverter_chain(8)
    tv = TimingAnalyzer(net)
    result = tv.analyze()
    print(result.report())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reconstructed evaluation.
"""

from .errors import (
    ClockingError,
    ConvergenceError,
    DeadlineError,
    ElectricalRuleError,
    FlowError,
    NetlistError,
    ReproError,
    SimFormatError,
    SimulationError,
    StageError,
    TimingError,
)
from .netlist import (
    DeviceKind,
    FlowDirection,
    Netlist,
    Node,
    Transistor,
)
from .errors import ReportSchemaError
from .tech import FF, KOHM, NMOS4, NS, PF, PS, UM, Technology
from .trace import NULL_TRACE, NullTrace, Trace, get_logger

def _resolve_version() -> str:
    """The package version, from installed metadata when available.

    A source checkout run via ``PYTHONPATH=src`` has no installed
    distribution, so the value falls back to the setup.py version.  The
    CLI ``--version`` flag and the serve daemon's ``/healthz`` payload
    both report this, letting clients pin against schema drift.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - python < 3.8
        return "1.0.0"
    try:
        return version("repro")
    except PackageNotFoundError:
        return "1.0.0"


__version__ = _resolve_version()
del _resolve_version

__all__ = [
    "__version__",
    # tech
    "Technology",
    "NMOS4",
    "UM",
    "NS",
    "PS",
    "FF",
    "PF",
    "KOHM",
    # netlist
    "Netlist",
    "Node",
    "Transistor",
    "DeviceKind",
    "FlowDirection",
    # errors
    "ReproError",
    "NetlistError",
    "SimFormatError",
    "ElectricalRuleError",
    "StageError",
    "DeadlineError",
    "FlowError",
    "TimingError",
    "ClockingError",
    "SimulationError",
    "ConvergenceError",
    "ReportSchemaError",
    # tracing / diagnostics
    "Trace",
    "NullTrace",
    "NULL_TRACE",
    "get_logger",
]


def _late_imports() -> None:
    """Populate the package namespace with the analyzer and clock classes.

    Done lazily at import bottom so that the low-level modules above never
    see a partially initialized package.
    """
    from .clocks import TwoPhaseClock  # noqa: F401
    from .core import (  # noqa: F401
        AnalysisResult,
        McmmResult,
        Scenario,
        TimingAnalyzer,
        analyze_mcmm,
        corner_scenarios,
    )

    globals().update(
        TwoPhaseClock=TwoPhaseClock,
        TimingAnalyzer=TimingAnalyzer,
        AnalysisResult=AnalysisResult,
        Scenario=Scenario,
        McmmResult=McmmResult,
        analyze_mcmm=analyze_mcmm,
        corner_scenarios=corner_scenarios,
    )
    __all__.extend(
        [
            "TwoPhaseClock",
            "TimingAnalyzer",
            "AnalysisResult",
            "Scenario",
            "McmmResult",
            "analyze_mcmm",
            "corner_scenarios",
        ]
    )


_late_imports()
del _late_imports
