"""Gate-level baseline timing models (the R-T7 strawmen)."""

from .gate_level import BaselineResult, FanoutDelayAnalyzer, UnitDelayAnalyzer

__all__ = ["BaselineResult", "UnitDelayAnalyzer", "FanoutDelayAnalyzer"]
