"""Gate-level baseline timing analyzers.

The paper's implicit comparison: why analyze at the *transistor* level when
a gate-level model is so much simpler?  Because nMOS designs are not made of
gates -- pass-transistor networks, precharged chains, and bus structures
have no gate-level equivalent, and a gate model either cannot see them or
mis-times them (experiment R-T7).

Both baselines reuse the stage decomposition as their "gate" extractor
(charitably -- a real 1983 gate-level flow would have needed hand netlists)
and differ only in the per-gate delay model:

* :class:`UnitDelayAnalyzer` -- every stage traversal costs one unit;
* :class:`FanoutDelayAnalyzer` -- delay = ``d0 + k * fanout``, the classic
  library-free load model.

Both are value- and transistor-blind: every arc through a stage gets the
same delay regardless of series chains, pass networks, or clocking.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import TimingGraph, critical_paths, propagate
from ..core.arrival import ArrivalMap
from ..core.paths import TimingPath
from ..delay import (
    FALL,
    RISE,
    ArcTiming,
    NO_SLOPE,
    StageArc,
    StageDelayCalculator,
)
from ..errors import TimingError
from ..flow import infer_flow
from ..netlist import Netlist
from ..stages import decompose

__all__ = ["BaselineResult", "UnitDelayAnalyzer", "FanoutDelayAnalyzer"]


@dataclass
class BaselineResult:
    """Outcome of a baseline analysis (combinational view)."""

    arrivals: ArrivalMap
    paths: list[TimingPath]
    max_delay: float

    @property
    def critical_path(self) -> TimingPath | None:
        return self.paths[0] if self.paths else None


class _GateLevelAnalyzer:
    """Shared machinery: structural arcs, constant per-arc delay."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        infer_flow(netlist)
        self.graph = decompose(netlist)
        # Reuse the transistor-level arc *topology* but discard its delays:
        # the baseline sees connectivity only.
        self._calculator = StageDelayCalculator(
            netlist, self.graph, slope=NO_SLOPE
        )

    def _arc_delay(self, arc: StageArc) -> float:
        raise NotImplementedError

    def analyze(self, *, top_k: int = 5) -> BaselineResult:
        arcs = []
        for arc in self._calculator.all_arcs(active_clocks=None):
            delay = self._arc_delay(arc)
            timing = ArcTiming(delay=delay, tau=0.0, path=())
            arcs.append(
                StageArc(
                    stage_index=arc.stage_index,
                    trigger=arc.trigger,
                    via=arc.via,
                    output=arc.output,
                    inverting=arc.inverting,
                    rise=timing if arc.rise is not None else None,
                    fall=timing if arc.fall is not None else None,
                )
            )
        graph = TimingGraph.build(arcs)
        drive = set(self.netlist.inputs) | set(self.netlist.clocks)
        if not drive:
            raise TimingError("baseline analysis needs primary inputs")
        sources = {}
        for name in drive:
            sources[(name, RISE)] = 0.0
            sources[(name, FALL)] = 0.0
        arrivals = propagate(graph, sources, NO_SLOPE, source_slew=0.0)
        endpoints = set(self.netlist.outputs) or None
        paths = critical_paths(arrivals, endpoints, k=top_k)
        worst = arrivals.max_arrival(endpoints)
        return BaselineResult(
            arrivals=arrivals,
            paths=paths,
            max_delay=worst.time if worst else 0.0,
        )


class UnitDelayAnalyzer(_GateLevelAnalyzer):
    """Every stage traversal costs exactly one delay unit."""

    def __init__(self, netlist: Netlist, unit: float = 1.0e-9):
        super().__init__(netlist)
        self.unit = unit

    def _arc_delay(self, arc: StageArc) -> float:
        return self.unit


class FanoutDelayAnalyzer(_GateLevelAnalyzer):
    """Delay = ``d0 + k * fanout(output)`` -- load-proportional gates."""

    def __init__(
        self,
        netlist: Netlist,
        d0: float = 0.5e-9,
        k: float = 0.5e-9,
    ):
        super().__init__(netlist)
        self.d0 = d0
        self.k = k

    def _arc_delay(self, arc: StageArc) -> float:
        fanout = len(self.netlist.gate_loads(arc.output))
        return self.d0 + self.k * fanout
