"""Benchmark harness shared by the scripts in ``benchmarks/``."""

from .harness import (
    AccuracyRow,
    Series,
    compare_delay,
    percent_error,
    save_result,
    timed_analysis,
)

__all__ = [
    "AccuracyRow",
    "Series",
    "compare_delay",
    "percent_error",
    "save_result",
    "timed_analysis",
]
