"""Shared benchmark harness.

Each file in ``benchmarks/`` regenerates one table or figure of the
reconstructed evaluation (see DESIGN.md section 3).  This module holds the
pieces they share: accuracy comparisons between the static analyzer and
SPICE-lite, timed analysis runs, and series containers that print in the
paper's row/series format.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core import TimingAnalyzer, format_table
from ..delay import SlopeModel
from ..errors import SimulationError
from ..netlist import Netlist
from ..sim import TransientOptions, measure_step_delay

__all__ = [
    "AccuracyRow",
    "compare_delay",
    "timed_analysis",
    "Series",
    "percent_error",
    "save_result",
]


def save_result(name: str, text: str) -> None:
    """Print a bench's table/series and save it as ``<name>.txt``.

    pytest captures stdout, so every bench also persists its output where
    EXPERIMENTS.md can reference it.  The destination defaults to
    ``benchmarks/results/`` in the repository checkout and is created if
    missing; set the ``REPRO_RESULTS_DIR`` environment variable to an
    absolute path to redirect it (an installed package has no checkout to
    write into -- see README "Benchmarks").  A read-only destination
    downgrades to a warning -- a bench run should never die on the save::

        REPRO_RESULTS_DIR=/tmp/results PYTHONPATH=src pytest benchmarks/
    """
    import os
    import pathlib
    import sys

    print(text)
    override = os.environ.get("REPRO_RESULTS_DIR")
    if override:
        results_dir = pathlib.Path(override)
    else:
        results_dir = (
            pathlib.Path(__file__).resolve().parents[3]
            / "benchmarks"
            / "results"
        )
    from ..core import atomic_write_text

    try:
        results_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(results_dir / f"{name}.txt", text + "\n")
    except OSError as exc:
        print(
            f"warning: could not save {name!r} under {results_dir}: {exc}",
            file=sys.stderr,
        )


def percent_error(estimate: float, reference: float) -> float:
    """Signed percentage error of ``estimate`` against ``reference``."""
    if reference == 0:
        raise ValueError("reference delay is zero")
    return 100.0 * (estimate - reference) / reference


@dataclass
class AccuracyRow:
    """One accuracy comparison: static estimate vs simulated truth."""

    label: str
    transition: str
    tv_delay: float
    sim_delay: float

    @property
    def error_pct(self) -> float:
        return percent_error(self.tv_delay, self.sim_delay)

    def cells(self) -> list[str]:
        """The row formatted for :func:`repro.core.format_table`."""
        return [
            self.label,
            self.transition,
            f"{self.tv_delay * 1e9:8.3f}",
            f"{self.sim_delay * 1e9:8.3f}",
            f"{self.error_pct:+7.1f}%",
        ]


def compare_delay(
    netlist: Netlist,
    trigger: str,
    output: str,
    *,
    direction: str = "rise",
    input_state: dict[str, int] | None = None,
    model: str = "elmore",
    slope: SlopeModel | None = None,
    label: str | None = None,
    sim_options: TransientOptions | None = None,
    ramp: float = 1e-9,
) -> AccuracyRow:
    """Measure one (trigger -> output) delay with both engines.

    The static figure is the analyzer's worst arrival at ``output`` for the
    transition the simulation observed, with only ``trigger`` switching at
    time 0 (all other inputs held).  The analyzer is told the same input
    transition time the simulator applies (``ramp``), so the comparison
    isolates the delay model.  This is the inner loop of R-T1/R-F2.
    """
    measurement = measure_step_delay(
        netlist,
        trigger,
        output,
        direction=direction,
        input_state=input_state,
        options=sim_options,
        ramp=ramp,
    )

    analyzer = TimingAnalyzer(netlist, model=model, slope=slope)
    # Non-trigger inputs are *held* in the simulation; telling the static
    # side they arrive at t=0 would count their paths (e.g. a mux select
    # re-routing the output) against this measurement.  They arrived long
    # ago.
    arrivals = {
        name: -1e-6 for name in netlist.inputs if name != trigger
    }
    arrivals[trigger] = 0.0
    result = analyzer.analyze(input_arrivals=arrivals, input_slew=ramp)
    if result.arrivals is None:
        raise SimulationError("accuracy comparison needs combinational mode")
    arrival = result.arrivals.get(output, measurement.output_direction)
    if arrival is None:
        raise SimulationError(
            f"static analysis produced no {measurement.output_direction} "
            f"arrival at {output!r}"
        )
    return AccuracyRow(
        label=label or f"{netlist.name}:{trigger}->{output}",
        transition=measurement.output_direction,
        tv_delay=arrival.time,
        sim_delay=measurement.delay,
    )


def timed_analysis(netlist: Netlist, **kwargs) -> tuple[float, object]:
    """Run the full analyzer pipeline, returning (wall seconds, result).

    Includes ERC + flow inference + decomposition + analysis -- the whole
    cost a user pays, which is what R-T3 compares against simulation.
    """
    started = time.perf_counter()
    analyzer = TimingAnalyzer(netlist, **kwargs)
    result = analyzer.analyze()
    return time.perf_counter() - started, result


@dataclass
class Series:
    """A named (x, y) series -- one line of a reconstructed figure."""

    name: str
    x_label: str
    y_label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point to the series."""
        self.points.append((x, y))

    def format(self) -> str:
        """The series as an aligned two-column table."""
        rows = [[f"{x:g}", f"{y:g}"] for x, y in self.points]
        return format_table(
            [self.x_label, self.y_label], rows, title=f"series: {self.name}"
        )
