"""MCMM regression gate: shared extraction must beat independent runs.

Successor to ``benchmarks/bench_x3_corners.py`` (the R-X3 three-corner
signoff experiment), which ran one fully independent analysis per corner
-- redoing ERC, flow inference, and stage decomposition every time.
:func:`repro.core.mcmm.analyze_mcmm` runs those structural phases once
and re-evaluates only the numeric delay terms per corner; this harness
measures that win and gates on it.

What is measured and gated (written to ``BENCH_mcmm.json``):

* **mcmm_speedup** -- wall-clock of N independent single-corner analyses
  divided by one N-corner ``analyze_mcmm``.  Gated ``> 1.0`` on hosts
  with at least 2 usable CPUs; a 1-CPU host records the measurement and
  an explicit skip (matching ``repro.bench.perf``'s convention).
* **symbolic_speedup** -- the PR 7 retarget sweep (``parametric=False``:
  every corner re-extracts concretely) divided by the parametric sweep
  (``parametric=True``: one symbolic extraction, N term evaluations; see
  :mod:`repro.delay.parametric`).  Gated ``>= 1.0`` across the 3-corner
  set under the same CPU convention, and the symbolic run must show
  ``parametric_stage_evals`` ticks proving term evaluation actually
  served the arcs.
* **structural sharing** -- hard gate via :mod:`repro.trace` counters: a
  traced MCMM run must show ``structural_runs == 1`` and one
  ``mcmm_scenarios`` tick per corner, while the traced independent runs
  show ``structural_runs == N``.
* **parity** -- every scenario's ``to_json`` must be byte-identical to a
  standalone single-corner analysis (the MCMM correctness anchor).
* **R-X3 signoff shape** -- the assertions ported from
  ``bench_x3_corners``: cycle times order fast < typ < slow with a
  1.3-2.5x spread, and the race (overlap) margin shrinks on the fast
  corner -- why min-delay checks run fast-corner.

Usage::

    PYTHONPATH=src python -m repro.bench.mcmm            # full gate
    PYTHONPATH=src python -m repro.bench.mcmm --smoke    # CI quick mode
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from ..circuits import mips_like_datapath
from ..core import TimingAnalyzer, atomic_write_text
from ..core.mcmm import corner_scenarios
from ..delay import available_cpus, shutdown_pool
from ..tech import Technology
from ..trace import Trace
from .perf import _best_of, _environment

__all__ = ["run", "main"]

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
OUTPUT_PATH = REPO_ROOT / "BENCH_mcmm.json"

#: (registers, shifts) of the benchmarked datapath.
FULL_SHAPE = (8, 4)
SMOKE_SHAPE = (4, 2)


def _fresh_net(shape: tuple[int, int]):
    net, _ports = mips_like_datapath(*shape)
    return net


def _corner_table(base: Technology) -> dict[str, Technology]:
    return Technology.corners(base)


def _independent_run(shape, corners, workers, trace=None) -> dict:
    """N standalone single-corner analyses (the pre-MCMM baseline)."""
    results = {}
    for name, tech in corners.items():
        net = _fresh_net(shape)
        tv = TimingAnalyzer(net, tech=tech, workers=workers, trace=trace)
        results[name] = tv.analyze()
    return results


def _mcmm_run(shape, corners, workers, trace=None, parametric=None):
    net = _fresh_net(shape)
    tv = TimingAnalyzer(net, workers=workers, trace=trace)
    return tv.analyze_mcmm(
        corner_scenarios(net.tech), parametric=parametric
    )


def _signoff_gates(results: dict, failures: list[str]) -> dict:
    """The R-X3 shape assertions, ported from bench_x3_corners."""
    metrics = {}
    for name, result in results.items():
        verification = result.clock_verification
        margin = min(
            (
                m.margin
                for m in verification.overlap_margins
                if m.margin is not None
            ),
            default=None,
        )
        metrics[name] = {
            "min_cycle": verification.min_cycle,
            "overlap_margin": margin,
            "races": len(verification.races),
        }
    slow = metrics["slow"]["min_cycle"]
    typ = metrics["typ"]["min_cycle"]
    fast = metrics["fast"]["min_cycle"]
    if not fast < typ < slow:
        failures.append(
            f"corner cycle times out of order: fast={fast} typ={typ} "
            f"slow={slow} (expected fast < typ < slow)"
        )
    spread = slow / fast
    if not 1.3 < spread < 2.5:
        failures.append(
            f"slow/fast cycle spread {spread:.2f}x outside the "
            "realistic 1.3-2.5x band"
        )
    fast_margin = metrics["fast"]["overlap_margin"]
    typ_margin = metrics["typ"]["overlap_margin"]
    if fast_margin is None or typ_margin is None:
        failures.append("overlap margins missing on typ/fast corners")
    elif not fast_margin < typ_margin:
        failures.append(
            f"race margin must shrink on the fast corner: "
            f"fast={fast_margin} typ={typ_margin}"
        )
    return metrics


def run(*, smoke: bool = False, repeat: int = 3, workers: int | str = 1):
    """Measure and gate; returns ``(payload, failures)``."""
    shape = SMOKE_SHAPE if smoke else FULL_SHAPE
    corners = _corner_table(_fresh_net(shape).tech)
    environment = _environment(
        workers if isinstance(workers, int) else available_cpus()
    )
    failures: list[str] = []

    # -- timing: N independent runs vs one MCMM sweep -------------------
    independent_s = _best_of(
        repeat, lambda: _independent_run(shape, corners, workers)
    )
    mcmm_s = _best_of(repeat, lambda: _mcmm_run(shape, corners, workers))
    speedup = independent_s / mcmm_s if mcmm_s > 0 else float("inf")

    # -- timing: retarget sweep vs symbolic term evaluation --------------
    retarget_s = _best_of(
        repeat,
        lambda: _mcmm_run(shape, corners, workers, parametric=False),
    )
    symbolic_s = _best_of(
        repeat,
        lambda: _mcmm_run(shape, corners, workers, parametric=True),
    )
    symbolic_speedup = (
        retarget_s / symbolic_s if symbolic_s > 0 else float("inf")
    )

    # -- structural sharing, observable via trace counters --------------
    mcmm_trace = Trace()
    mcmm = _mcmm_run(shape, corners, workers, trace=mcmm_trace)
    independent_trace = Trace()
    independent = _independent_run(
        shape, corners, workers, trace=independent_trace
    )
    structural = {
        "mcmm_structural_runs": mcmm_trace.counters.get("structural_runs", 0),
        "mcmm_scenarios": mcmm_trace.counters.get("mcmm_scenarios", 0),
        "mcmm_parametric_stage_evals": mcmm_trace.counters.get(
            "parametric_stage_evals", 0
        ),
        "independent_structural_runs": independent_trace.counters.get(
            "structural_runs", 0
        ),
    }
    if structural["mcmm_parametric_stage_evals"] == 0:
        failures.append(
            "the default MCMM sweep served no stage from parametric term "
            "evaluation; the symbolic path is not being exercised"
        )
    if structural["mcmm_structural_runs"] != 1:
        failures.append(
            "MCMM must run the structural phases exactly once, got "
            f"{structural['mcmm_structural_runs']} structural_runs"
        )
    if structural["mcmm_scenarios"] != len(corners):
        failures.append(
            f"MCMM evaluated {structural['mcmm_scenarios']} scenarios, "
            f"expected {len(corners)}"
        )
    if structural["independent_structural_runs"] != len(corners):
        failures.append(
            "independent baseline should run the structural phases once "
            f"per corner, got {structural['independent_structural_runs']}"
        )

    # -- parity: every scenario byte-identical to standalone ------------
    parity_rows = []
    for name in corners:
        a = json.dumps(mcmm.result(name).to_json(), sort_keys=True)
        b = json.dumps(independent[name].to_json(), sort_keys=True)
        identical = a == b
        parity_rows.append({"corner": name, "identical": identical})
        if not identical:
            failures.append(
                f"MCMM scenario {name!r} diverged from its standalone "
                "single-corner analysis"
            )

    # -- the R-X3 signoff-shape gates ------------------------------------
    signoff = _signoff_gates(independent, failures)

    # -- the speedup gate -------------------------------------------------
    gate_applies = environment["affinity_cpus"] >= 2
    speedup_gate = {
        "applied": gate_applies,
        "required": 1.0,
        "measured": speedup,
        "skip_reason": (
            None
            if gate_applies
            else (
                f"host exposes {environment['affinity_cpus']} usable "
                "CPU(s); the gate needs at least 2 for a stable margin "
                "(measured value recorded regardless)"
            )
        ),
    }
    if gate_applies and speedup <= 1.0:
        failures.append(
            f"{len(corners)}-corner MCMM is {speedup:.2f}x the "
            "independent baseline; shared extraction must win (> 1.0x)"
        )

    # -- the symbolic-vs-retarget gate -----------------------------------
    symbolic_gate = {
        "applied": gate_applies,
        "required": 1.0,
        "measured": symbolic_speedup,
        "skip_reason": speedup_gate["skip_reason"],
    }
    if gate_applies and symbolic_speedup < 1.0:
        failures.append(
            f"symbolic {len(corners)}-corner evaluation is "
            f"{symbolic_speedup:.2f}x the retarget sweep; term "
            "evaluation must not lose (>= 1.0x)"
        )

    shutdown_pool()
    payload = {
        "schema": "repro-bench-mcmm",
        "smoke": smoke,
        "circuit": f"mips_like_datapath{shape}",
        "corners": list(corners),
        "environment": environment,
        "independent_seconds": independent_s,
        "mcmm_seconds": mcmm_s,
        "mcmm_speedup": speedup,
        "retarget_seconds": retarget_s,
        "symbolic_seconds": symbolic_s,
        "symbolic_speedup": symbolic_speedup,
        "speedup_gate": speedup_gate,
        "symbolic_gate": symbolic_gate,
        "structural": structural,
        "parity": parity_rows,
        "signoff": signoff,
        "dominant": mcmm.dominant_scenario(),
        "failures": failures,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    return payload, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small datapath, quick gate (CI perf-smoke mode)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="timing repetitions; best-of wins (default 3)",
    )
    parser.add_argument(
        "--workers", default=1,
        help="extraction pool width (int or 'auto'; default 1)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the payload to stdout as JSON",
    )
    args = parser.parse_args(argv)
    workers = args.workers if args.workers == "auto" else int(args.workers)
    payload, failures = run(
        smoke=args.smoke, repeat=args.repeat, workers=workers
    )
    atomic_write_text(
        OUTPUT_PATH, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"MCMM bench ({payload['circuit']}): "
            f"{payload['mcmm_speedup']:.2f}x vs independent runs, "
            f"symbolic {payload['symbolic_speedup']:.2f}x vs retarget "
            f"(gates {'applied' if payload['speedup_gate']['applied'] else 'skipped'}), "
            f"dominant corner: {payload['dominant']}"
        )
        print(f"wrote {OUTPUT_PATH}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
