"""Performance-regression harness for the analysis pipeline.

Times the three phases a user pays for -- analyzer setup (ERC + flow +
decomposition), timing-arc extraction, and arrival propagation -- plus the
end-to-end :meth:`~repro.core.TimingAnalyzer.analyze` call, on the synthetic
scaling circuits of experiment R-T3 (``random_logic``, seed 7).  It emits a
machine-readable ``BENCH_perf.json`` with devices/second per phase, the
parallel-extraction speedup over serial, the end-to-end speedup over the
checked-in pre-optimization baseline, and -- via one extra *traced*
analysis per size (:class:`repro.trace.Trace`) -- a ``phase_attribution``
breakdown saying what fraction of the end-to-end time each pipeline phase
(erc/flow/stages/extract/propagate/paths) consumed.  The gated timings
themselves run with tracing disabled, proving the ``NULL_TRACE`` default
costs nothing.  It then gates on two regressions:

* no phase may be slower than ``benchmarks/results/perf_baseline.json``
  by more than the tolerance factor (``REPRO_PERF_TOLERANCE``, default
  1.75 -- generous because CI machines are noisy);
* end-to-end analysis of the largest circuit must stay at least
  ``REPRO_PERF_MIN_SPEEDUP`` (default 1.5) times faster than the recorded
  pre-optimization serial baseline;
* at the MIPS-scale point (:func:`repro.circuits.mips_benchmark_datapath`,
  ~26.7k devices -- the paper's headline circuit size), warm-pool parallel
  extraction must beat serial (``extract_speedup_parallel_vs_serial >
  1.0``).  This gate only *applies* on hosts with at least two usable
  CPUs; a single-CPU host records the measurement and an explicit
  ``speedup_gate.applied: false`` instead of a vacuous pass or an
  unattainable failure.

The full run also times the persistent pool's **cold start** (first
pooled sweep after :func:`repro.delay.shutdown_pool`) against its
**warm reuse** (subsequent sweeps on live workers), and records the host
environment (CPU count, scheduler affinity, ``multiprocessing`` start
method, resolved worker count) so ``BENCH_perf.json`` files from
different machines are comparable.

Smoke mode (``--smoke``) measures the smallest circuit only with a
single repetition, skips the MIPS point and the speedup gates, but
**does** apply the phase-tolerance gate with a looser factor
(``REPRO_PERF_SMOKE_TOLERANCE``, default 3.0) and the full serial/
parallel parity sweep -- so a pool regression fails a PR in seconds
instead of only in the full gate.

It also proves the parallel path is *safe* to keep enabled: every circuit
generator in :mod:`repro.circuits` is analyzed serially and with the worker
pool, and the two text reports must be byte-identical.  The pooled runs
are traced, and the supervised extractor's retry/timeout/fallback counters
(:data:`SUPERVISION_COUNTERS`) land in the payload's ``supervision``
section -- all zeros on a healthy machine.  No fault handler is ever
installed here, so the gated timings exercise the production fast path of
:func:`repro.robust.fault_point` (one ``None`` check per call) and the
baseline tolerance gate doubles as the zero-overhead check for the
fault-injection hooks.

Run as::

    PYTHONPATH=src python -m repro.bench.perf            # full gate
    PYTHONPATH=src python -m repro.bench.perf --smoke    # CI smoke: quick,
                                                         # no assertions

Exit status 0 means no regression; 1 means a gate failed.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pathlib
import platform
import sys
import time

from ..circuits import (
    ProductTerm,
    Transition,
    barrel_shifter,
    carry_select_adder,
    decoder,
    fsm,
    full_adder,
    half_latch,
    inverter,
    inverter_chain,
    manchester_adder,
    mips_benchmark_datapath,
    mips_like_datapath,
    mux2,
    nand,
    nor,
    pass_chain,
    pla,
    random_logic,
    register_bit,
    register_file,
    ripple_adder,
    sequencer,
    shift_register,
    superbuffer,
    toy_cpu,
    xor2,
)
from ..core import TimingAnalyzer, atomic_write_json
from ..core.arrival import propagate
from ..core.graph import TimingGraph
from ..delay import FALL, RISE, auto_workers, available_cpus, shutdown_pool
from ..trace import Trace

__all__ = ["run", "main", "parity_circuits"]

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
BASELINE_PATH = REPO_ROOT / "benchmarks" / "results" / "perf_baseline.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_perf.json"

FULL_SIZES = (200, 1000, 5000)
SMOKE_SIZES = (200,)
SEED = 7


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        sys.exit(f"error: {name}={raw!r} is not a number")


def _best_of(repeat: int, fn) -> float:
    best = None
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _environment(workers: int) -> dict:
    """Host metadata making cross-machine trajectories comparable.

    ``affinity_cpus`` is what the crossover heuristic actually sees
    (container CPU quotas show up here, not in ``os.cpu_count``).
    """
    return {
        "cpu_count": os.cpu_count(),
        "affinity_cpus": available_cpus(),
        "mp_start_method": multiprocessing.get_start_method(),
        "mp_start_methods": list(multiprocessing.get_all_start_methods()),
        "bench_workers": workers,
        "auto_workers": auto_workers(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def _bench_mips(repeat: int, workers: int) -> dict:
    """Time serial vs pooled extraction at the ~26.7k-device MIPS point.

    The pooled sweep is measured twice: once **cold** (first sweep after
    ``shutdown_pool``, paying fork + snapshot attach) and then **warm**
    (reusing the live workers, the steady state the persistent pool
    exists for).  The headline ``extract_speedup_parallel_vs_serial`` is
    serial over *warm* -- amortized fork cost is exactly the claim under
    test.  Kept to extraction only: the end-to-end figures stay on the
    R-T3 ``random_logic`` family the checked-in baseline covers.
    """
    net, _ports = mips_benchmark_datapath()
    devices = len(net.devices)
    tv = TimingAnalyzer(net)
    stages = len(tv.stage_graph)

    def extract_serial() -> None:
        tv.calculator._arc_cache.clear()
        tv.calculator.all_arcs(parallel=False)

    extract_s = _best_of(min(repeat, 2), extract_serial)

    def extract_pooled() -> None:
        tv.calculator._arc_cache.clear()
        tv.calculator.all_arcs(parallel=True, workers=workers)

    shutdown_pool()
    cold_s = _best_of(1, extract_pooled)
    warm_s = _best_of(min(repeat, 2), extract_pooled)

    return {
        "circuit": "mips_benchmark_datapath",
        "devices": devices,
        "stages": stages,
        "extract_s": extract_s,
        "parallel_extract_cold_s": cold_s,
        "parallel_extract_s": warm_s,
        "pool_cold_start_overhead_s": cold_s - warm_s,
        "extract_speedup_parallel_vs_serial": extract_s / warm_s,
        "extract_devices_per_s": devices / extract_s,
    }


def _bench_size(size: int, repeat: int, workers: int) -> dict:
    """Time each phase on one ``random_logic`` instance, best of ``repeat``."""
    net = random_logic(size, seed=SEED)
    devices = len(net.devices)

    # End-to-end first: it is the gating number, and measuring it before
    # any pool has forked keeps it clear of allocator/page-cache noise
    # from the other phases.  A couple of extra repetitions tighten the
    # best-of estimate on busy machines.
    end_to_end_s = _best_of(
        repeat + 2, lambda: TimingAnalyzer(net).analyze()
    )

    setup_s = _best_of(repeat, lambda: TimingAnalyzer(net))

    tv = TimingAnalyzer(net)

    def extract_serial() -> None:
        tv.calculator._arc_cache.clear()
        tv.calculator.all_arcs(parallel=False)

    extract_s = _best_of(repeat, extract_serial)

    tv.calculator._arc_cache.clear()
    arcs = tv.calculator.all_arcs(parallel=False)
    sources = {}
    for name in set(net.inputs) | set(net.clocks):
        sources[(name, RISE)] = 0.0
        sources[(name, FALL)] = 0.0

    def run_propagate() -> None:
        graph = TimingGraph.build(arcs)
        propagate(graph, sources, tv.calculator.slope)

    propagate_s = _best_of(repeat, run_propagate)

    def extract_parallel() -> None:
        tv.calculator._arc_cache.clear()
        tv.calculator.all_arcs(parallel=True, workers=workers)

    # Cold first (fresh fork + snapshot attach), then warm reuse of the
    # persistent pool -- the steady-state number the speedup uses.
    shutdown_pool()
    parallel_extract_cold_s = _best_of(1, extract_parallel)
    parallel_extract_s = _best_of(repeat, extract_parallel)

    # One traced analysis attributes the end-to-end time to the pipeline
    # phases (erc/flow/stages/extract/propagate/paths).  Deliberately
    # measured OUTSIDE the gated numbers above, which run with tracing
    # disabled -- the gate proves the NULL_TRACE default costs nothing.
    trace = Trace(logger=None)
    TimingAnalyzer(net, trace=trace).analyze()

    return {
        "phase_attribution": trace.attribution(),
        "phase_timers_s": dict(trace.timers_s),
        "devices": devices,
        "setup_s": setup_s,
        "extract_s": extract_s,
        "parallel_extract_cold_s": parallel_extract_cold_s,
        "parallel_extract_s": parallel_extract_s,
        "extract_speedup_parallel_vs_serial": extract_s / parallel_extract_s,
        "propagate_s": propagate_s,
        "end_to_end_s": end_to_end_s,
        "setup_devices_per_s": devices / setup_s,
        "extract_devices_per_s": devices / extract_s,
        "propagate_devices_per_s": devices / propagate_s,
        "end_to_end_devices_per_s": devices / end_to_end_s,
    }


def parity_circuits() -> list[tuple[str, object]]:
    """Factories for small instances of every :mod:`repro.circuits` generator.

    Each entry is ``(name, factory)``; the factory builds a *fresh* netlist
    each call.  Flow inference annotates the netlist in place, so reusing
    one instance across analyzers would make the second flow report
    trivially empty -- fresh builds keep the serial and parallel runs
    honestly independent.  Composite generators returning
    ``(netlist, ports)`` are unwrapped.
    """
    transitions = [
        Transition(state=0, inputs={0: 1}, next_state=1, outputs=(0,)),
        Transition(state=1, inputs={0: 1}, next_state=0, outputs=(1,)),
        Transition(state=1, inputs={0: 0}, next_state=1, outputs=(1,)),
    ]
    terms = [ProductTerm({0: 1, 1: 1}, (0,)), ProductTerm({2: 0}, (1,))]
    factories = [
        ("inverter", inverter),
        ("inverter_chain", lambda: inverter_chain(5)),
        ("nand", lambda: nand(3)),
        ("nor", lambda: nor(3)),
        ("pass_chain", lambda: pass_chain(4)),
        ("mux2", mux2),
        ("superbuffer", superbuffer),
        ("xor2", xor2),
        ("full_adder", full_adder),
        ("decoder", lambda: decoder(3)),
        ("half_latch", half_latch),
        ("register_bit", register_bit),
        ("shift_register", lambda: shift_register(4)),
        ("ripple_adder", lambda: ripple_adder(4)),
        ("manchester_adder", lambda: manchester_adder(4)),
        ("carry_select_adder", lambda: carry_select_adder(8)),
        ("barrel_shifter", lambda: barrel_shifter(4)),
        ("pla", lambda: pla(3, 2, terms)),
        ("register_file", lambda: register_file(2, 2)),
        ("fsm", lambda: fsm(2, 1, 2, transitions)),
        ("sequencer", lambda: sequencer(4)),
        ("toy_cpu", lambda: toy_cpu(4, 2)),
        ("mips_like_datapath", lambda: mips_like_datapath(4, 2, n_shifts=2)),
        ("random_logic", lambda: random_logic(300, seed=SEED)),
    ]

    def unwrap(factory):
        def build():
            obj = factory()
            return obj[0] if isinstance(obj, tuple) else obj

        return build

    return [(name, unwrap(factory)) for name, factory in factories]


def _normalized_report(result) -> str:
    # Wall-clock is the one legitimately nondeterministic report field.
    result.analysis_seconds = 0.0
    return result.report()


#: Supervision counters the pooled runs report (see repro.trace).  On a
#: healthy machine every one of them stays zero; nonzero values mean the
#: supervised extractor had to retry, time out, or fall back serially.
SUPERVISION_COUNTERS = (
    "extract_retries",
    "extract_timeouts",
    "extract_corrupt_results",
    "extract_fallback_stages",
    "extract_pool_failures",
)


def check_parity(workers: int = 2) -> tuple[list[dict], dict]:
    """Serial vs pooled extraction must yield byte-identical reports.

    Returns ``(rows, supervision)`` where ``supervision`` aggregates the
    retry/timeout/fallback counters across every pooled run.
    """
    rows = []
    trace = Trace(logger=None)
    for name, build in parity_circuits():
        serial_tv = TimingAnalyzer(build(), workers=1)
        serial_tv.calculator.all_arcs(parallel=False)
        serial = _normalized_report(serial_tv.analyze())

        pooled_tv = TimingAnalyzer(build(), workers=workers, trace=trace)
        pooled_tv.calculator.all_arcs(parallel=True, workers=workers)
        pooled = _normalized_report(pooled_tv.analyze())

        rows.append({"circuit": name, "identical": serial == pooled})
    supervision = {
        name: trace.counters.get(name, 0) for name in SUPERVISION_COUNTERS
    }
    return rows, supervision


def run(
    *,
    smoke: bool = False,
    repeat: int = 3,
    workers: int = 2,
    output: pathlib.Path = OUTPUT_PATH,
) -> tuple[dict, list[str]]:
    """Execute the harness; returns ``(payload, failures)``.

    ``failures`` is empty when every gate passes.  Smoke mode still
    gates -- phase tolerances (loosened to ``REPRO_PERF_SMOKE_TOLERANCE``)
    and serial/parallel parity -- but skips the MIPS point and the
    speedup floors, which need full-size circuits and repetitions to be
    meaningful.
    """
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    repeat = 1 if smoke else repeat
    if smoke:
        tolerance = _env_float("REPRO_PERF_SMOKE_TOLERANCE", 3.0)
    else:
        tolerance = _env_float("REPRO_PERF_TOLERANCE", 1.75)
    min_speedup = _env_float("REPRO_PERF_MIN_SPEEDUP", 1.5)
    environment = _environment(workers)

    results: dict[str, dict] = {}
    for size in sizes:
        print(f"benchmarking random_logic({size}, seed={SEED}) ...")
        results[str(size + 1)] = _bench_size(size, repeat, workers)

    mips_row = None
    if not smoke:
        print("benchmarking mips_benchmark_datapath (~26.7k devices) ...")
        mips_row = _bench_mips(repeat, workers)
        results[str(mips_row["devices"])] = mips_row

    baseline = {}
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())

    failures: list[str] = []
    phases = ("setup_s", "extract_s", "propagate_s", "end_to_end_s")
    for key, row in results.items():
        base_row = baseline.get(key)
        if base_row is None:
            continue
        row["baseline"] = {p: base_row[p] for p in phases}
        row["end_to_end_speedup_vs_baseline"] = (
            base_row["end_to_end_s"] / row["end_to_end_s"]
        )
        for phase in phases:
            limit = base_row[phase] * tolerance
            if row[phase] > limit:
                failures.append(
                    f"{key} devices: {phase} {row[phase]:.4f}s exceeds "
                    f"baseline {base_row[phase]:.4f}s x{tolerance:g} "
                    f"tolerance"
                )

    largest = str(max(sizes) + 1)
    speedup = results[largest].get("end_to_end_speedup_vs_baseline")
    if not smoke and speedup is not None and speedup < min_speedup:
        failures.append(
            f"end-to-end speedup on {largest}-device circuit is "
            f"{speedup:.2f}x, below the required {min_speedup:g}x"
        )

    if mips_row is not None:
        # The parallel-wins gate.  Physically unattainable with a single
        # usable CPU, so it only *applies* on multi-CPU hosts; a 1-CPU
        # host records the measurement and an explicit skip.
        gate_applies = environment["affinity_cpus"] >= 2
        mips_speedup = mips_row["extract_speedup_parallel_vs_serial"]
        mips_row["speedup_gate"] = {
            "applied": gate_applies,
            "required": 1.0,
            "measured": mips_speedup,
            "skip_reason": (
                None
                if gate_applies
                else (
                    "host exposes "
                    f"{environment['affinity_cpus']} usable CPU(s); "
                    "parallel extraction cannot beat serial without at "
                    "least 2"
                )
            ),
        }
        if gate_applies and mips_speedup <= 1.0:
            failures.append(
                f"warm-pool parallel extraction at the MIPS point is "
                f"{mips_speedup:.2f}x serial; the persistent pool must "
                f"win (> 1.0x) with {workers} workers on "
                f"{environment['affinity_cpus']} CPUs"
            )

    parity, supervision = check_parity(workers)
    mismatched = [row["circuit"] for row in parity if not row["identical"]]
    if mismatched:
        failures.append(
            "parallel extraction diverged from serial on: "
            + ", ".join(mismatched)
        )

    payload = {
        "bench": "perf",
        "mode": "smoke" if smoke else "full",
        "seed": SEED,
        "repeat": repeat,
        "workers": workers,
        "tolerance": tolerance,
        "min_end_to_end_speedup": min_speedup,
        "environment": environment,
        "results": results,
        "parity": {
            "circuits": len(parity),
            "all_identical": not mismatched,
            "rows": parity,
        },
        # Retry/timeout/fallback counters from the supervised pooled runs,
        # plus the zero-overhead claim for the fault-injection hooks: no
        # handler is ever installed here, so every gated timing above runs
        # the production fast path (one None check per fault_point call)
        # and the baseline tolerance gate doubles as the overhead check.
        "supervision": {
            "counters": supervision,
            "fault_hooks_installed": False,
        },
        "regressions": failures,
        "pass": not failures,
    }
    atomic_write_json(output, payload)
    print(f"wrote {output}")
    return payload, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smallest circuit only, single repetition, loose tolerance "
             "gate plus the full parity sweep (CI quick mode)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="pool width for parallel runs"
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=OUTPUT_PATH,
        help="output path for the machine-readable results",
    )
    args = parser.parse_args(argv)
    payload, failures = run(
        smoke=args.smoke,
        repeat=args.repeat,
        workers=args.workers,
        output=args.json,
    )
    for key, row in payload["results"].items():
        speedup = row.get("end_to_end_speedup_vs_baseline")
        note = f"  ({speedup:.2f}x vs baseline)" if speedup else ""
        e2e = row.get("end_to_end_devices_per_s")
        e2e_note = f"  e2e {e2e:.0f}/s" if e2e is not None else ""
        pool = row.get("extract_speedup_parallel_vs_serial")
        pool_note = f"  pool {pool:.2f}x" if pool is not None else ""
        print(
            f"{key:>6} devices: extract {row['extract_devices_per_s']:.0f}/s"
            f"{e2e_note}{pool_note}{note}"
        )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("perf gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
