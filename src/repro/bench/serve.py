"""Serve-daemon regression gate: hot sessions must actually be hot.

The daemon's pitch is that a resident engine answers iteration-loop
queries orders of magnitude faster than one-shot CLI runs.  This
harness measures that end to end -- through real HTTP against a real
:class:`~repro.serve.server.TimingServer` -- on the R-T3 scaling
circuits, and gates on it (written to ``BENCH_serve.json``):

* **warm_speedup** -- cold first analysis over warm content-cache hit,
  same request both times.  Gated ``>= 10`` at sizes where engine work
  dominates (``WARM_GATE_MIN_DEVICES``); the warm side is a fixed
  ~1 ms hash + dict lookup + HTTP round trip, so on tiny designs the
  ratio measures the loopback stack, not the cache.  Small sizes are
  still measured and reported, just not gated.
* **delta_speedup** -- full re-analysis of an edited design (fresh load
  + fresh analysis, what a CLI re-run pays) over an incremental
  ``/delta`` request (surgical ``notify_changed`` invalidation, every
  untouched stage's arcs stay cached).  Gated ``> 1.0``.
* **recovery_overhead** -- daemon startup with a journal to replay
  (snapshot + delta records rebuilt into a live session) over a cold
  reload of the same design from ``.sim`` text.  Both pay the same
  dominant parse + session build; the gate (``<= 1.5x``) holds the
  durability layer to "replay costs no more than reloading", so crash
  recovery never becomes the slow path.

Latencies are wall-clock through the loopback HTTP stack, so the gates
hold the *service*, not just the engine, to the claim.  Environment
metadata rides along, matching ``repro.bench.perf`` conventions.

Usage::

    PYTHONPATH=src python -m repro.bench.serve            # full gate
    PYTHONPATH=src python -m repro.bench.serve --smoke    # CI quick mode
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time
import urllib.request

from ..circuits import random_logic
from ..core import atomic_write_json
from ..delay import shutdown_pool
from ..netlist import sim_dumps, sim_loads
from ..serve import TimingServer
from .perf import _best_of, _environment

__all__ = ["run", "main"]

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
OUTPUT_PATH = REPO_ROOT / "BENCH_serve.json"

#: R-T3 scaling points (devices ~= size + 1).
FULL_SIZES = (200, 1000, 5000)
SMOKE_SIZES = (1000,)

WARM_SPEEDUP_GATE = 10.0
#: The warm side is a fixed HTTP+hash floor; only gate the ratio where
#: cold engine work towers over it.
WARM_GATE_MIN_DEVICES = 500
DELTA_SPEEDUP_GATE = 1.0
#: Journal replay at startup may cost at most this multiple of a cold
#: reload of the same design.
RECOVERY_OVERHEAD_GATE = 1.5


class _Client:
    """Minimal JSON-over-HTTP client for one daemon."""

    def __init__(self, port: int) -> None:
        self.base = f"http://127.0.0.1:{port}"

    def post(self, path: str, body: dict) -> dict:
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(body).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())


def _bench_size(client: _Client, size: int, repeat: int) -> dict:
    """Measure one R-T3 circuit end to end; returns the result row."""
    net = random_logic(size, seed=7)
    sim_text = sim_dumps(net)
    name = f"rt3_{size}"
    # The .sim writer assigns canonical device names, so pick the edit
    # target from a local round trip -- the daemon sees the same names.
    loaded = sim_loads(sim_text, name=name)
    device = sorted(loaded.devices)[0]
    base_w = loaded.device(device).w

    started = time.perf_counter()
    client.post(f"/designs/{name}", {"sim": sim_text})
    load_s = time.perf_counter() - started

    started = time.perf_counter()
    cold = client.post(f"/designs/{name}/analyze", {})
    cold_s = time.perf_counter() - started
    assert cold["cached"] is False

    def warm_query() -> None:
        reply = client.post(f"/designs/{name}/analyze", {})
        assert reply["cached"] is True

    warm_s = _best_of(repeat, warm_query)

    # Incremental edit loop: toggle one device width so every /delta is
    # a real engine run (cache bypassed to time the engine, not the
    # result cache).
    state = {"wide": False}

    def delta_query() -> None:
        state["wide"] = not state["wide"]
        w = base_w * 1.05 if state["wide"] else base_w
        reply = client.post(
            f"/designs/{name}/delta",
            {"edits": [{"device": device, "w": w}], "cache": "bypass"},
        )
        assert reply["cached"] is False

    delta_s = _best_of(repeat, delta_query)

    # Full-reanalysis comparator: what re-running the CLI on the edited
    # netlist costs -- a fresh parse/ERC/decomposition (the load) plus a
    # from-scratch analysis (fresh session, so its engine is cold).
    loaded.device(device).w = base_w * 1.05
    edited = sim_dumps(loaded)

    def full_query() -> None:
        client.post(f"/designs/{name}_full", {"sim": edited})
        reply = client.post(
            f"/designs/{name}_full/analyze", {"cache": "bypass"}
        )
        assert reply["cached"] is False

    full_s = _best_of(repeat, full_query)

    return {
        "size": size,
        "devices": len(net.devices),
        "load_s": load_s,
        "cold_analyze_s": cold_s,
        "warm_query_s": warm_s,
        "delta_reanalysis_s": delta_s,
        "full_reanalysis_s": full_s,
        "warm_speedup": cold_s / warm_s,
        "delta_speedup": full_s / delta_s,
    }


def _bench_recovery(size: int, repeat: int) -> dict:
    """Time journal-replay startup against a cold reload, same design."""
    net = random_logic(size, seed=7)
    sim_text = sim_dumps(net)
    name = f"rt3_{size}"
    loaded = sim_loads(sim_text, name=name)
    device = sorted(loaded.devices)[0]
    base_w = loaded.device(device).w

    with tempfile.TemporaryDirectory() as tmp:
        journal_dir = os.path.join(tmp, "journal")
        seeded = TimingServer(port=0, journal_dir=journal_dir)
        seeded.load(name, {"sim": sim_text})
        seeded.sessions[name].delta([{"device": device, "w": base_w * 1.05}])
        seeded.stop()

        def replay() -> None:
            revived = TimingServer(port=0, journal_dir=journal_dir)
            assert revived.recovered_designs == [name]
            revived.stop()

        recovery_s = _best_of(repeat, replay)

        def cold_reload() -> None:
            fresh = TimingServer(port=0)
            fresh.load(name, {"sim": sim_text})
            fresh.stop()

        cold_s = _best_of(repeat, cold_reload)

    return {
        "size": size,
        "devices": len(net.devices),
        "recovery_s": recovery_s,
        "cold_reload_s": cold_s,
        "recovery_overhead": recovery_s / cold_s,
    }


def run(*, smoke: bool = False, repeat: int | None = None) -> tuple[dict, list]:
    """Run the serve bench; returns ``(payload, failures)``."""
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    repeat = repeat if repeat is not None else (3 if smoke else 5)
    server = TimingServer(port=0, max_inflight=32).start()
    try:
        client = _Client(server.port)
        rows = [_bench_size(client, size, repeat) for size in sizes]
        stats = server.stats()
    finally:
        server.stop()
        shutdown_pool()
    recovery_rows = [_bench_recovery(size, repeat) for size in sizes]

    failures: list[str] = []
    for row in rows:
        if (
            row["devices"] >= WARM_GATE_MIN_DEVICES
            and row["warm_speedup"] < WARM_SPEEDUP_GATE
        ):
            failures.append(
                f"size {row['size']}: warm cached query only "
                f"{row['warm_speedup']:.1f}x faster than cold analyze "
                f"(gate: >= {WARM_SPEEDUP_GATE:g}x)"
            )
        if row["delta_speedup"] <= DELTA_SPEEDUP_GATE:
            failures.append(
                f"size {row['size']}: delta re-analysis "
                f"{row['delta_speedup']:.2f}x vs full re-analysis "
                f"(gate: > {DELTA_SPEEDUP_GATE:g}x)"
            )
    for row in recovery_rows:
        if row["recovery_overhead"] > RECOVERY_OVERHEAD_GATE:
            failures.append(
                f"size {row['size']}: journal-replay startup "
                f"{row['recovery_overhead']:.2f}x slower than a cold "
                f"reload (gate: <= {RECOVERY_OVERHEAD_GATE:g}x)"
            )

    payload = {
        "bench": "serve",
        "smoke": smoke,
        "repeat": repeat,
        "environment": _environment(1),
        "server": stats["server"],
        "cache": stats["cache"],
        "results": rows,
        "recovery": recovery_rows,
        "gates": {
            "warm_speedup_min": WARM_SPEEDUP_GATE,
            "warm_gate_min_devices": WARM_GATE_MIN_DEVICES,
            "delta_speedup_min": DELTA_SPEEDUP_GATE,
            "recovery_overhead_max": RECOVERY_OVERHEAD_GATE,
        },
        "regressions": failures,
        "pass": not failures,
    }
    return payload, failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry: run the bench, write BENCH_serve.json, gate."""
    parser = argparse.ArgumentParser(
        description="serve-daemon latency bench + regression gate"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="one mid-size circuit, fewer repeats (CI)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="best-of repeats per timed query")
    parser.add_argument("--json", action="store_true",
                        help="print the full payload to stdout")
    args = parser.parse_args(argv)
    payload, failures = run(smoke=args.smoke, repeat=args.repeat)
    atomic_write_json(OUTPUT_PATH, payload)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for row in payload["results"]:
            print(
                f"size {row['size']:>5}: cold {row['cold_analyze_s']*1e3:8.2f} ms  "
                f"warm {row['warm_query_s']*1e3:7.3f} ms "
                f"({row['warm_speedup']:7.1f}x)  "
                f"delta {row['delta_reanalysis_s']*1e3:8.2f} ms vs "
                f"full {row['full_reanalysis_s']*1e3:8.2f} ms "
                f"({row['delta_speedup']:.2f}x)"
            )
        for row in payload["recovery"]:
            print(
                f"size {row['size']:>5}: recovery "
                f"{row['recovery_s']*1e3:8.2f} ms vs cold reload "
                f"{row['cold_reload_s']*1e3:8.2f} ms "
                f"({row['recovery_overhead']:.2f}x)"
            )
    print(f"wrote {OUTPUT_PATH}")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("serve gates pass")
    return 0


if __name__ == "__main__":  # pragma: no cover - bench entry point
    sys.exit(main())
