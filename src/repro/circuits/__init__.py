"""Parametric nMOS benchmark circuit generators.

Every generator returns a :class:`~repro.netlist.Netlist` (composites also
return a ports object) with declared inputs/outputs/clocks, built from
1983-vintage nMOS idioms: ratioed depletion-load gates, pass-transistor
networks, precharged dynamic logic, and two-phase dynamic latches.
"""

from .adders import (
    add_carry_select_adder,
    add_manchester_adder,
    add_ripple_adder,
    carry_select_adder,
    manchester_adder,
    ripple_adder,
)
from .control import FsmPorts, Transition, fsm, sequencer, toy_cpu
from .datapath import (
    DatapathPorts,
    mips_benchmark_datapath,
    mips_like_datapath,
)
from .latches import (
    add_half_latch,
    add_register,
    add_register_bit,
    half_latch,
    register_bit,
    shift_register,
)
from .logic import (
    add_aoi,
    add_decoder,
    add_full_adder,
    add_xnor,
    add_xor,
    decoder,
    full_adder,
    xor2,
)
from .pla import ProductTerm, add_pla, pla
from .primitives import (
    add_inverter,
    add_mux2,
    add_nand,
    add_nor,
    add_pass,
    add_superbuffer,
    bus,
    inverter,
    inverter_chain,
    mux2,
    nand,
    nor,
    pass_chain,
    superbuffer,
)
from .random_logic import random_logic
from .regfile import RegFilePorts, add_register_file, register_file
from .shifter import add_barrel_shifter, barrel_shifter

__all__ = [
    "bus",
    # primitives
    "add_inverter",
    "add_nand",
    "add_nor",
    "add_pass",
    "add_mux2",
    "add_superbuffer",
    "inverter",
    "inverter_chain",
    "nand",
    "nor",
    "pass_chain",
    "mux2",
    "superbuffer",
    # logic
    "add_aoi",
    "add_xor",
    "add_xnor",
    "add_full_adder",
    "add_decoder",
    "xor2",
    "full_adder",
    "decoder",
    # latches
    "add_half_latch",
    "add_register_bit",
    "add_register",
    "half_latch",
    "register_bit",
    "shift_register",
    # adders
    "add_ripple_adder",
    "add_manchester_adder",
    "add_carry_select_adder",
    "ripple_adder",
    "manchester_adder",
    "carry_select_adder",
    # shifter
    "add_barrel_shifter",
    "barrel_shifter",
    # pla
    "ProductTerm",
    "add_pla",
    "pla",
    # regfile
    "add_register_file",
    "register_file",
    "RegFilePorts",
    # datapath
    "mips_like_datapath",
    "mips_benchmark_datapath",
    "DatapathPorts",
    # control
    "Transition",
    "FsmPorts",
    "fsm",
    "sequencer",
    "toy_cpu",
    # random
    "random_logic",
]
