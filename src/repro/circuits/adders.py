"""Adders: static ripple-carry and dynamic Manchester carry chain.

The Manchester chain is the signature nMOS datapath structure and the
reason a transistor-level analyzer matters: its carry propagates through a
*pass-transistor chain*, precharged each cycle, and no gate-level model
sees that path correctly (experiment R-T7 demonstrates exactly this).
"""

from __future__ import annotations

from ..netlist import Netlist
from ..tech import Technology, NMOS4
from .logic import add_full_adder, add_xor
from .primitives import add_inverter, add_nand, add_pass, bus

__all__ = [
    "add_ripple_adder",
    "add_manchester_adder",
    "add_carry_select_adder",
    "ripple_adder",
    "manchester_adder",
    "carry_select_adder",
]


def add_ripple_adder(
    net: Netlist,
    a_bits: list[str],
    b_bits: list[str],
    sum_bits: list[str],
    cin: str,
    cout: str,
    *,
    tag: str | None = None,
) -> None:
    """Static ripple-carry adder from AOI full-adder cells."""
    width = len(a_bits)
    if not (len(b_bits) == len(sum_bits) == width):
        raise ValueError("adder buses must have equal width")
    t = tag or "rip"
    carry = cin
    for i in range(width):
        next_carry = cout if i == width - 1 else net.fresh_node(f"{t}.c").name
        add_full_adder(
            net,
            a_bits[i],
            b_bits[i],
            carry,
            sum_bits[i],
            next_carry,
            tag=f"{t}.fa{i}",
        )
        carry = next_carry


def add_manchester_adder(
    net: Netlist,
    a_bits: list[str],
    b_bits: list[str],
    sum_bits: list[str],
    cin: str,
    cout: str,
    precharge_clock: str,
    eval_clock: str,
    *,
    tag: str | None = None,
) -> list[str]:
    """Dynamic Manchester-carry-chain adder.

    Per bit ``i`` (active-low carry chain ``nc``):

    * propagate ``p_i = a_i XOR b_i`` and generate ``g_i = a_i AND b_i``
      are computed statically;
    * chain node ``nc_i`` is precharged high during ``precharge_clock``;
    * during ``eval_clock``: a pull-down gated by ``g_i`` (in series with
      the evaluation foot) discharges ``nc_i`` (carry generated), and a
      pass transistor gated by ``p_i`` connects ``nc_{i-1}`` to ``nc_i``
      (carry propagated);
    * ``sum_i = p_i XOR c_i`` with ``c_i = NOT nc_i``.

    The caller must declare both clocks.  Returns the chain node names
    (``nc_0 .. nc_{width-1}``) for timing experiments.
    """
    width = len(a_bits)
    if not (len(b_bits) == len(sum_bits) == width):
        raise ValueError("adder buses must have equal width")
    t = tag or "man"
    tech = net.tech

    # Carry-in enters the chain through an inverter (chain is active-low)
    # and an eval-gated pull-down on a dedicated entry node.
    nc_prev = net.fresh_node(f"{t}.ncin").name
    net.add_node(nc_prev)
    net.add_enh(precharge_clock, net.vdd, nc_prev, name=f"{t}.pre_in")
    foot_in = net.fresh_node(f"{t}.fin").name
    net.add_enh(cin, nc_prev, foot_in, name=f"{t}.cin_pd")
    net.add_enh(eval_clock, foot_in, net.gnd, name=f"{t}.cin_foot")

    chain: list[str] = []
    for i in range(width):
        p = net.fresh_node(f"{t}.p{i}").name
        g = net.fresh_node(f"{t}.g{i}").name
        ng = net.fresh_node(f"{t}.ng{i}").name
        add_xor(net, a_bits[i], b_bits[i], p, tag=f"{t}.px{i}")
        add_nand(net, [a_bits[i], b_bits[i]], ng, tag=f"{t}.gn{i}")
        add_inverter(net, ng, g, tag=f"{t}.gi{i}")

        nc = f"{t}.nc{i}"
        net.add_node(nc)
        chain.append(nc)
        # Precharge.
        net.add_enh(precharge_clock, net.vdd, nc, name=f"{t}.pre{i}")
        # Generate: g_i discharges nc_i through the eval foot.
        mid = net.fresh_node(f"{t}.gm{i}").name
        net.add_enh(g, nc, mid, w=2 * tech.min_width(), name=f"{t}.gen{i}")
        net.add_enh(
            eval_clock, mid, net.gnd, w=2 * tech.min_width(), name=f"{t}.foot{i}"
        )
        # Propagate: pass device along the chain.
        add_pass(net, p, nc_prev, nc, size=2.0, name=f"{t}.prop{i}")
        # Sum uses the *incoming* carry: c_i = NOT nc_{i-1}.
        c = net.fresh_node(f"{t}.c{i}").name
        add_inverter(net, nc_prev, c, tag=f"{t}.ci{i}")
        add_xor(net, p, c, sum_bits[i], tag=f"{t}.sx{i}")
        nc_prev = nc

    add_inverter(net, nc_prev, cout, tag=f"{t}.co")
    return chain


def add_carry_select_adder(
    net: Netlist,
    a_bits: list[str],
    b_bits: list[str],
    sum_bits: list[str],
    cin: str,
    cout: str,
    *,
    section: int = 4,
    tag: str | None = None,
) -> None:
    """Carry-select adder: ripple sections computed for both carry-ins.

    Each ``section``-bit block contains two ripple adders (assuming carry
    0 and carry 1); the real section carry selects between the precomputed
    results through pass muxes.  Carry now hops per *section* instead of
    per bit -- the classic speed-for-area trade, and a stress case for the
    analyzer (the select lines are data-dependent, not one-hot-assertable).
    """
    width = len(a_bits)
    if not (len(b_bits) == len(sum_bits) == width):
        raise ValueError("adder buses must have equal width")
    if section < 1:
        raise ValueError("section size must be >= 1")
    t = tag or "csel"
    tech = net.tech

    carry = cin
    start = 0
    block = 0
    while start < width:
        end = min(start + section, width)
        bits = range(start, end)
        bt = f"{t}.b{block}"

        # Two speculative ripple chains.
        results = {}
        for assumed in (0, 1):
            sums = [net.fresh_node(f"{bt}.s{assumed}_").name for _ in bits]
            c_in_name = f"{bt}.cin{assumed}"
            # A constant carry-in: tie low with a pull-down-only node or
            # high with a load-only node (static levels, ERC-clean).
            if assumed == 0:
                net.add_node(c_in_name)
                net.add_enh(net.vdd, c_in_name, net.gnd, name=f"{bt}.tie0")
            else:
                net.add_pullup(c_in_name, name=f"{bt}.tie1")
            c_out_name = f"{bt}.cout{assumed}"
            add_ripple_adder(
                net,
                [a_bits[i] for i in bits],
                [b_bits[i] for i in bits],
                sums,
                c_in_name,
                c_out_name,
                tag=f"{bt}.r{assumed}",
            )
            results[assumed] = (sums, c_out_name)

        # Select with the block's true carry (and its complement).
        ncarry = net.fresh_node(f"{bt}.nc").name
        add_inverter(net, carry, ncarry, tag=f"{bt}.ci")
        for offset, i in enumerate(bits):
            add_pass(net, carry, results[1][0][offset], sum_bits[i],
                     name=f"{bt}.sel1_{offset}")
            add_pass(net, ncarry, results[0][0][offset], sum_bits[i],
                     name=f"{bt}.sel0_{offset}")
        next_carry = (
            cout if end == width else net.fresh_node(f"{bt}.c").name
        )
        raw = net.fresh_node(f"{bt}.craw").name
        add_pass(net, carry, results[1][1], raw, name=f"{bt}.selc1")
        add_pass(net, ncarry, results[0][1], raw, name=f"{bt}.selc0")
        # Restore the muxed carry before it drives the next block.
        mid = net.fresh_node(f"{bt}.cr").name
        add_inverter(net, raw, mid, tag=f"{bt}.cr1")
        add_inverter(net, mid, next_carry, size=2.0, tag=f"{bt}.cr2")
        net.add_exclusive_group(carry, ncarry)
        carry = next_carry
        start = end
        block += 1


# ----------------------------------------------------------------------
# Standalone netlists.
# ----------------------------------------------------------------------
def ripple_adder(width: int = 8, *, tech: Technology = NMOS4) -> Netlist:
    """Static ripple adder: buses ``a``/``b``, ``cin``; ``sum`` and
    ``cout``."""
    net = Netlist(f"ripple{width}", tech=tech)
    a, b, s = bus("a", width), bus("b", width), bus("sum", width)
    net.set_input(*a, *b, "cin")
    add_ripple_adder(net, a, b, s, "cin", "cout")
    net.set_output(*s, "cout")
    return net


def manchester_adder(width: int = 8, *, tech: Technology = NMOS4) -> Netlist:
    """Manchester adder: precharge on ``phi1``, evaluate on ``phi2``."""
    net = Netlist(f"manchester{width}", tech=tech)
    a, b, s = bus("a", width), bus("b", width), bus("sum", width)
    net.set_input(*a, *b, "cin")
    net.set_clock("phi1", "phi1")
    net.set_clock("phi2", "phi2")
    add_manchester_adder(net, a, b, s, "cin", "cout", "phi1", "phi2")
    net.set_output(*s, "cout")
    return net


def carry_select_adder(
    width: int = 8,
    *,
    section: int = 4,
    tech: Technology = NMOS4,
) -> Netlist:
    """Static carry-select adder: buses ``a``/``b``, ``cin``; ``sum``/``cout``."""
    net = Netlist(f"cselect{width}s{section}", tech=tech)
    a, b, s = bus("a", width), bus("b", width), bus("sum", width)
    net.set_input(*a, *b, "cin")
    add_carry_select_adder(net, a, b, s, "cin", "cout", section=section)
    net.set_output(*s, "cout")
    return net
