"""Control logic: PLA-based finite-state machines and a toy CPU.

MIPS-class chips paired their datapath with PLA-based control: a state
register (two-phase master-slave) feeding a PLA whose outputs are the next
state and the control lines.  :func:`fsm` builds exactly that structure
from a transition table; :func:`toy_cpu` closes the loop by wiring a small
sequencer to the MIPS-like datapath's control inputs -- the closest thing
this package has to the full chip TV analyzed.

FSM semantics: on every cycle the machine evaluates its transitions
against the current state and inputs; the first matching row supplies the
next state and asserted outputs.  *No matching row means next state 0*
(the NOR-NOR PLA's natural default) -- state 0 doubles as the reset state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import NetlistError
from ..netlist import Netlist
from ..tech import Technology, NMOS4
from .latches import add_register_bit
from .pla import ProductTerm, add_pla
from .primitives import bus

__all__ = ["Transition", "FsmPorts", "fsm", "sequencer", "toy_cpu"]


@dataclass(frozen=True)
class Transition:
    """One FSM transition row.

    ``state``: the current state this row applies to.
    ``inputs``: required input polarities, ``{input_index: 0|1}`` (empty =
    unconditional).
    ``next_state``: the state entered.
    ``outputs``: control-output indices asserted *while in* ``state`` under
    these input conditions (Mealy outputs).
    """

    state: int
    inputs: dict[int, int] = field(default_factory=dict)
    next_state: int = 0
    outputs: tuple[int, ...] = ()


class FsmPorts:
    """Canonical port names of a generated FSM."""

    def __init__(self, n_state_bits: int, n_inputs: int, n_outputs: int):
        self.state = bus("state", n_state_bits)
        self.inputs = bus("in", n_inputs)
        self.outputs = bus("ctl", n_outputs)
        self.reset = "reset"


def fsm(
    n_states: int,
    n_inputs: int,
    n_outputs: int,
    transitions: list[Transition],
    *,
    name: str = "fsm",
    master_phase: str = "phi1",
    slave_phase: str = "phi2",
    tech: Technology = NMOS4,
) -> tuple[Netlist, FsmPorts]:
    """Build a two-phase PLA state machine.

    The PLA reads ``state`` bits and external ``in`` bits; it produces the
    next-state bits, registered through master-slave bits (master on
    ``master_phase``, slave on ``slave_phase``).  State -- and so the
    control outputs -- changes when the slave opens; drive logic captured
    in the *opposite* phase to keep the standard two-phase discipline.

    A ``reset`` input forces the visible state lines low; holding it
    through one full cycle parks the machine in state 0 (the PLA's
    default), after which it may be released.
    """
    if n_states < 2:
        raise NetlistError("an FSM needs at least two states")
    n_state_bits = max(1, math.ceil(math.log2(n_states)))
    for t in transitions:
        if not 0 <= t.state < n_states or not 0 <= t.next_state < n_states:
            raise NetlistError(f"transition references unknown state: {t}")
        for idx in t.inputs:
            if not 0 <= idx < n_inputs:
                raise NetlistError(f"transition input index {idx} out of range")
        for idx in t.outputs:
            if not 0 <= idx < n_outputs:
                raise NetlistError(f"transition output index {idx} out of range")

    if {master_phase, slave_phase} != {"phi1", "phi2"}:
        raise NetlistError(
            "master/slave phases must be phi1 and phi2 in some order"
        )
    net = Netlist(name, tech=tech)
    ports = FsmPorts(n_state_bits, n_inputs, n_outputs)
    net.set_input(*ports.inputs, ports.reset)
    net.set_clock("phi1", "phi1")
    net.set_clock("phi2", "phi2")

    # PLA personality: inputs are [state bits..., external inputs...];
    # outputs are [next-state bits..., control outputs...].
    terms: list[ProductTerm] = []
    for t in transitions:
        literals: dict[int, int] = {}
        for bit in range(n_state_bits):
            literals[bit] = (t.state >> bit) & 1
        for idx, polarity in t.inputs.items():
            literals[n_state_bits + idx] = polarity
        asserted = [
            bit for bit in range(n_state_bits) if (t.next_state >> bit) & 1
        ]
        asserted += [n_state_bits + idx for idx in t.outputs]
        if not asserted:
            # A transition to state 0 with no outputs needs no PLA term at
            # all: 0 is the PLA's default.
            continue
        terms.append(ProductTerm(literals, tuple(asserted)))

    next_bits = bus("next", n_state_bits)
    pla_outputs = next_bits + list(ports.outputs)
    add_pla(
        net,
        list(ports.state) + list(ports.inputs),
        pla_outputs,
        terms,
        tag=f"{name}.pla",
    )

    # State register: next -> state, one full cycle.  Reset pull-downs on
    # the visible state lines give the PLA a known 0 during initialization
    # (they fight the state inverters' weak loads and win, the standard
    # reset-transistor idiom).
    for i in range(n_state_bits):
        add_register_bit(
            net, next_bits[i], ports.state[i], master_phase, slave_phase,
            tag=f"{name}.sr{i}",
        )
        net.add_enh(
            ports.reset,
            ports.state[i],
            net.gnd,
            w=2 * tech.min_width(),
            name=f"{name}.rst{i}",
        )

    net.set_output(*ports.outputs, *ports.state)
    return net, ports


def sequencer(
    n_steps: int = 4,
    *,
    name: str = "sequencer",
    master_phase: str = "phi1",
    slave_phase: str = "phi2",
    tech: Technology = NMOS4,
) -> tuple[Netlist, FsmPorts]:
    """A free-running one-hot step sequencer with an ``in0`` = run input.

    While ``run`` is high the machine walks state 0 -> 1 -> ... -> n-1 -> 0,
    asserting ``ctl{k}`` in state k; deasserting ``run`` parks it at 0.
    """
    transitions = []
    for step in range(n_steps):
        transitions.append(
            Transition(
                state=step,
                inputs={0: 1},
                next_state=(step + 1) % n_steps,
                outputs=(step,),
            )
        )
    return fsm(
        n_steps, 1, n_steps, transitions,
        name=name, master_phase=master_phase, slave_phase=slave_phase,
        tech=tech,
    )


def toy_cpu(
    width: int = 8,
    nregs: int = 4,
    *,
    tech: Technology = NMOS4,
) -> tuple[Netlist, dict]:
    """A complete toy machine: sequencer-driven MIPS-like datapath.

    A 4-step sequencer cycles ADD -> AND -> OR -> XOR, its one-hot control
    outputs wired straight onto the datapath's ALU function selects (they
    are one-hot by construction, so the datapath's exclusivity assertion
    holds).  The sequencer's slave runs on phi1 so the control lines are
    stable throughout the datapath's phi2 evaluation -- the standard
    control/datapath phase discipline.  Everything else (operands,
    addresses, shift amount) stays a primary input.  Returns the netlist
    and a port dictionary.
    """
    from .datapath import mips_like_datapath

    top = Netlist(f"toycpu{width}x{nregs}", tech=tech)
    seq_net, seq_ports = sequencer(
        4, name="seq", master_phase="phi2", slave_phase="phi1", tech=tech
    )
    dp_net, dp_ports = mips_like_datapath(width, nregs, tech=tech)

    seq_translation = top.embed(seq_net, "seq", {
        "phi1": "phi1",
        "phi2": "phi2",
    })
    op_names = list(dp_ports.op.values())  # op_add, op_and, op_or, op_xor
    port_map = {"phi1": "phi1", "phi2": "phi2"}
    for k, op in enumerate(op_names):
        port_map[op] = seq_translation[seq_ports.outputs[k]]
    dp_translation = top.embed(dp_net, "dp", port_map)

    top.set_clock("phi1", "phi1")
    top.set_clock("phi2", "phi2")
    top.set_input(seq_translation[seq_ports.inputs[0]])  # run
    top.set_input(seq_translation[seq_ports.reset])
    for name in (
        list(dp_ports.address)
        + [dp_ports.write_enable, dp_ports.carry_in]
        + list(dp_ports.b_ext)
        + list(dp_ports.shift_select)
    ):
        top.set_input(dp_translation[name])
    top.set_output(*(dp_translation[r] for r in dp_ports.result))

    ports = {
        "run": seq_translation[seq_ports.inputs[0]],
        "reset": seq_translation[seq_ports.reset],
        "state": [seq_translation[s] for s in seq_ports.state],
        "ctl": [seq_translation[c] for c in seq_ports.outputs],
        "b": [dp_translation[b] for b in dp_ports.b_ext],
        "result": [dp_translation[r] for r in dp_ports.result],
        "address": [dp_translation[a] for a in dp_ports.address],
        "write_enable": dp_translation[dp_ports.write_enable],
        "carry_in": dp_translation[dp_ports.carry_in],
        "shift_select": [dp_translation[s] for s in dp_ports.shift_select],
    }
    return top, ports
