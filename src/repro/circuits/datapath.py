"""MIPS-like pipelined datapath: the whole-chip benchmark.

This is the package's stand-in for the MIPS processor layout the paper
analyzed (DESIGN.md, substitutions table).  It composes every nMOS idiom
the analyzer must handle, in the two-phase discipline of the real chip:

========  =========================================================
phi1      register-file write (previous result); operand latches
          capture; Manchester carry chain and read bitlines precharge
phi2      register-file read; ALU evaluates; shifter passes; result
          latch captures
========  =========================================================

Structure per cycle: ``regfile[ra] -> A latch; b_ext -> B latch;
ALU(A, B) -> shifter -> result latch -> (write back when we)``.

Ports (``width`` = data width, ``nregs`` registers):

* inputs: ``ra*`` (address), ``we`` (write enable), ``b*`` (external B
  operand), ``cin``, one-hot ALU function ``op_add/op_and/op_or/op_xor``,
  one-hot shift amount ``sh0..`` (``n_shifts`` lines)
* clocks: ``phi1``, ``phi2``
* outputs: ``r*`` (result bus)

The generated netlist is a few thousand devices at width 16 and scales
linearly; ``mips_like_datapath(width=32, nregs=16)`` approaches the device
mix (though not the count) of the real chip's datapath slice.
"""

from __future__ import annotations

from ..netlist import Netlist
from ..tech import Technology, NMOS4
from .adders import add_manchester_adder
from .latches import add_half_latch
from .logic import add_xor
from .primitives import (
    add_inverter,
    add_nand,
    add_nor,
    add_pass,
    add_superbuffer,
    bus,
)
from .regfile import RegFilePorts, add_register_file
from .shifter import add_barrel_shifter

__all__ = ["mips_like_datapath", "mips_benchmark_datapath", "DatapathPorts"]

OPS = ("add", "and", "or", "xor")


class DatapathPorts:
    """Canonical port names of a generated datapath."""

    def __init__(self, width: int, nregs: int, n_shifts: int):
        import math

        self.width = width
        self.address = bus("ra", int(math.log2(nregs)))
        self.b_ext = bus("b", width)
        self.result = bus("r", width)
        self.shift_select = bus("sh", n_shifts)
        self.op = {op: f"op_{op}" for op in OPS}
        self.write_enable = "we"
        self.carry_in = "cin"


def mips_like_datapath(
    width: int = 16,
    nregs: int = 8,
    *,
    n_shifts: int = 4,
    tech: Technology = NMOS4,
) -> tuple[Netlist, DatapathPorts]:
    """Build the datapath; returns ``(netlist, ports)``."""
    if n_shifts < 1 or n_shifts > width:
        raise ValueError("n_shifts must be in 1..width")
    net = Netlist(f"datapath{width}x{nregs}", tech=tech)
    ports = DatapathPorts(width, nregs, n_shifts)

    net.set_input(
        *ports.address,
        ports.write_enable,
        *ports.b_ext,
        ports.carry_in,
        *ports.op.values(),
        *ports.shift_select,
    )
    net.set_clock("phi1", "phi1")
    net.set_clock("phi2", "phi2")
    # One-hot assertions: the function select and the shift amount.
    net.add_exclusive_group(*ports.op.values())
    if n_shifts > 1:
        net.add_exclusive_group(*ports.shift_select)

    # ------------------------------------------------------------------
    # Register file (write phi1, read phi2) -> q bus.
    # ------------------------------------------------------------------
    q = bus("rf.q", width)
    add_register_file(
        net,
        nregs,
        width,
        address=ports.address,
        write_enable=ports.write_enable,
        write_data=ports.result,  # write-back loop, cut by the phases
        read_data=q,
        phi1="phi1",
        phi2="phi2",
        tag="rf",
    )

    # ------------------------------------------------------------------
    # Operand latches (phi1).  A latch output is inverted once by the half
    # latch, so a second inverter restores polarity.
    # ------------------------------------------------------------------
    a_op, b_op = bus("alat", width), bus("blat", width)
    for i in range(width):
        na = f"alat.n{i}"
        add_half_latch(net, q[i], na, "phi1", tag=f"alat{i}")
        add_inverter(net, na, a_op[i], tag=f"alat.b{i}")
        nb = f"blat.n{i}"
        add_half_latch(net, ports.b_ext[i], nb, "phi1", tag=f"blat{i}")
        add_inverter(net, nb, b_op[i], tag=f"blat.b{i}")

    # ------------------------------------------------------------------
    # ALU: Manchester adder (precharge phi1 / evaluate phi2) + logic unit.
    # ------------------------------------------------------------------
    add_out = bus("alu.add", width)
    add_manchester_adder(
        net,
        a_op,
        b_op,
        add_out,
        ports.carry_in,
        "alu.cout",
        "phi1",
        "phi2",
        tag="alu.man",
    )

    and_out, or_out, xor_out = (
        bus("alu.and", width),
        bus("alu.or", width),
        bus("alu.xor", width),
    )
    for i in range(width):
        nand_i = net.fresh_node(f"alu.nand{i}").name
        add_nand(net, [a_op[i], b_op[i]], nand_i, tag=f"alu.an{i}")
        add_inverter(net, nand_i, and_out[i], tag=f"alu.ai{i}")
        nor_i = net.fresh_node(f"alu.nor{i}").name
        add_nor(net, [a_op[i], b_op[i]], nor_i, tag=f"alu.on{i}")
        add_inverter(net, nor_i, or_out[i], tag=f"alu.oi{i}")
        add_xor(net, a_op[i], b_op[i], xor_out[i], tag=f"alu.x{i}")

    # Function select: one-hot pass mux onto the ALU bus, then a restoring
    # inverter pair (the bus is pure pass logic).
    alu_bus = bus("alu.bus", width)
    alu_out = bus("alu.out", width)
    candidates = {
        "add": add_out,
        "and": and_out,
        "or": or_out,
        "xor": xor_out,
    }
    for i in range(width):
        for op, values in candidates.items():
            add_pass(
                net,
                ports.op[op],
                values[i],
                alu_bus[i],
                name=f"alu.sel_{op}{i}",
            )
        inv = net.fresh_node(f"alu.binv{i}").name
        add_inverter(net, alu_bus[i], inv, tag=f"alu.bi{i}")
        add_inverter(net, inv, alu_out[i], size=2.0, tag=f"alu.bo{i}")

    # ------------------------------------------------------------------
    # Barrel shifter (rotate) on the ALU result, superbuffered outputs.
    # ------------------------------------------------------------------
    sh_matrix = bus("shm", width)
    sh_out = bus("sho", width)
    select = list(ports.shift_select)
    if n_shifts < width:
        # Unselected diagonals simply do not exist; pad the select list
        # logically by wiring only n_shifts diagonals.
        matrix_select = select
    else:
        matrix_select = select
    for k, sel in enumerate(matrix_select):
        for i in range(width):
            src = (i + k) % width
            net.add_enh(sel, alu_out[src], sh_matrix[i], name=f"shm.m{k}_{i}")
    for i in range(width):
        add_superbuffer(net, sh_matrix[i], sh_out[i], tag=f"sho{i}")

    # ------------------------------------------------------------------
    # Result latch (phi2) -> result bus r*, which also feeds write-back.
    # The shifter output is inverted by the superbuffer and again by the
    # half latch, so r follows the ALU value.
    # ------------------------------------------------------------------
    for i in range(width):
        add_half_latch(net, sh_out[i], ports.result[i], "phi2", tag=f"rlat{i}")

    net.set_output(*ports.result)
    return net, ports


def mips_benchmark_datapath(
    *, tech: Technology = NMOS4
) -> tuple[Netlist, DatapathPorts]:
    """The ~25k-device scaling point used by :mod:`repro.bench.perf`.

    A 64-bit, 32-register instance of :func:`mips_like_datapath` with an
    8-way shifter -- about 26.7k enhancement/depletion devices, the same
    order as the MIPS datapath whose "minutes, not hours" analysis is the
    paper's headline claim.  Kept as a named generator so the benchmark,
    tests, and docs all agree on what "MIPS scale" means here.
    """
    return mips_like_datapath(64, 32, n_shifts=8, tech=tech)
