"""Two-phase dynamic latches and registers.

The nMOS storage idiom: a clock-gated pass transistor writes a capacitive
storage node; an inverter restores and buffers the stored level.  Two half
latches on opposite phases make a master-slave register.  These cells are
what the two-phase verification experiments (R-T5) exercise.
"""

from __future__ import annotations

from ..netlist import Netlist
from ..tech import Technology, NMOS4
from .primitives import add_inverter, add_pass, bus

__all__ = [
    "add_half_latch",
    "add_register_bit",
    "add_register",
    "half_latch",
    "register_bit",
    "shift_register",
]


def add_half_latch(
    net: Netlist,
    d: str,
    q: str,
    clock: str,
    *,
    tag: str | None = None,
) -> str:
    """Dynamic half latch: ``q = NOT(d)`` sampled while ``clock`` is high.

    Returns the storage node name.  The caller must have declared ``clock``
    with :meth:`~repro.netlist.Netlist.set_clock`.
    """
    t = tag or f"lat.{q}"
    store = net.fresh_node(f"{t}.s").name
    add_pass(net, clock, d, store, name=f"{t}.sw")
    add_inverter(net, store, q, tag=f"{t}.inv")
    return store


def add_register_bit(
    net: Netlist,
    d: str,
    q: str,
    phi1: str,
    phi2: str,
    *,
    tag: str | None = None,
) -> tuple[str, str]:
    """Master-slave register bit: ``q`` follows ``d`` one full cycle later.

    Two cascaded half latches (phi1 master, phi2 slave); the double
    inversion restores polarity.  Returns the two storage node names.
    """
    t = tag or f"reg.{q}"
    mid = net.fresh_node(f"{t}.m").name
    s1 = add_half_latch(net, d, mid, phi1, tag=f"{t}.h1")
    s2 = add_half_latch(net, mid, q, phi2, tag=f"{t}.h2")
    return s1, s2


def add_register(
    net: Netlist,
    d_bits: list[str],
    q_bits: list[str],
    phi1: str,
    phi2: str,
    *,
    tag: str | None = None,
) -> None:
    """A word-wide master-slave register."""
    if len(d_bits) != len(q_bits):
        raise ValueError("register needs equal-width d and q buses")
    t = tag or "reg"
    for i, (d, q) in enumerate(zip(d_bits, q_bits)):
        add_register_bit(net, d, q, phi1, phi2, tag=f"{t}.b{i}")


# ----------------------------------------------------------------------
# Standalone netlists.
# ----------------------------------------------------------------------
def half_latch(*, tech: Technology = NMOS4) -> Netlist:
    """Half latch: input ``d``, clock ``phi1``, output ``q`` (inverted)."""
    net = Netlist("half_latch", tech=tech)
    net.set_input("d")
    net.set_clock("phi1", "phi1")
    net.set_clock("phi2", "phi2")  # present so the two-phase schema checks
    add_half_latch(net, "d", "q", "phi1", tag="l")
    # Give phi2 something to do: re-latch q.
    add_half_latch(net, "q", "q2", "phi2", tag="l2")
    net.set_output("q", "q2")
    return net


def register_bit(*, tech: Technology = NMOS4) -> Netlist:
    """Master-slave bit: ``d`` in, ``q`` out, clocks ``phi1``/``phi2``."""
    net = Netlist("register_bit", tech=tech)
    net.set_input("d")
    net.set_clock("phi1", "phi1")
    net.set_clock("phi2", "phi2")
    add_register_bit(net, "d", "q", "phi1", "phi2", tag="r")
    net.set_output("q")
    return net


def shift_register(
    length: int = 4,
    *,
    tech: Technology = NMOS4,
) -> Netlist:
    """A chain of master-slave bits -- the canonical two-phase pipeline."""
    if length < 1:
        raise ValueError("shift register length must be >= 1")
    net = Netlist(f"shiftreg{length}", tech=tech)
    net.set_input("d")
    net.set_clock("phi1", "phi1")
    net.set_clock("phi2", "phi2")
    previous = "d"
    for i in range(length):
        q = f"q{i}"
        add_register_bit(net, previous, q, "phi1", "phi2", tag=f"r{i}")
        previous = q
    net.set_output(previous)
    return net
