"""Composite logic blocks: XOR, AOI structures, full adders, decoders.

These follow 1983 nMOS practice: complements come from explicit inverters,
XOR/majority are single AOI (AND-OR-INVERT) pull-down networks rather than
gate trees, and decoders are NOR arrays.
"""

from __future__ import annotations

from ..netlist import Netlist
from ..tech import Technology, NMOS4
from .primitives import add_inverter, add_nand, add_nor, bus

__all__ = [
    "add_aoi",
    "add_xor",
    "add_xnor",
    "add_full_adder",
    "add_decoder",
    "xor2",
    "full_adder",
    "decoder",
]


def add_aoi(
    net: Netlist,
    branches: list[list[str]],
    out: str,
    *,
    size: float = 1.0,
    tag: str | None = None,
) -> None:
    """AND-OR-INVERT gate: ``out = NOT( OR_i ( AND_j branches[i][j] ) )``.

    Each branch is a series pull-down chain; branches are in parallel.
    Series devices are widened by the branch length to preserve the ratio.
    """
    if not branches or any(not b for b in branches):
        raise ValueError("aoi needs non-empty branches")
    tech = net.tech
    net.add_pullup(out, name=f"{tag}.pu" if tag else None)
    for b_index, branch in enumerate(branches):
        w = size * len(branch) * tech.min_width()
        previous = out
        for i, inp in enumerate(branch):
            nxt = (
                net.gnd
                if i == len(branch) - 1
                else net.fresh_node(f"{out}.b{b_index}").name
            )
            net.add_enh(
                inp,
                previous,
                nxt,
                w=w,
                name=f"{tag}.b{b_index}.{i}" if tag else None,
            )
            previous = nxt


def add_xor(
    net: Netlist,
    a: str,
    b: str,
    out: str,
    *,
    na: str | None = None,
    nb: str | None = None,
    tag: str | None = None,
) -> tuple[str, str]:
    """``out = a XOR b`` as one AOI: ``NOT(a.b + na.nb)``.

    Complements are generated unless supplied (pass ``na``/``nb`` to share
    inverters across several gates).  Returns the complement node names.
    """
    if na is None:
        na = net.fresh_node(f"{out}.na").name
        add_inverter(net, a, na, tag=f"{tag}.ia" if tag else None)
    if nb is None:
        nb = net.fresh_node(f"{out}.nb").name
        add_inverter(net, b, nb, tag=f"{tag}.ib" if tag else None)
    add_aoi(net, [[a, b], [na, nb]], out, tag=f"{tag}.aoi" if tag else None)
    return na, nb


def add_xnor(
    net: Netlist,
    a: str,
    b: str,
    out: str,
    *,
    na: str | None = None,
    nb: str | None = None,
    tag: str | None = None,
) -> tuple[str, str]:
    """``out = NOT(a XOR b)`` as ``NOT(a.nb + na.b)``."""
    if na is None:
        na = net.fresh_node(f"{out}.na").name
        add_inverter(net, a, na, tag=f"{tag}.ia" if tag else None)
    if nb is None:
        nb = net.fresh_node(f"{out}.nb").name
        add_inverter(net, b, nb, tag=f"{tag}.ib" if tag else None)
    add_aoi(net, [[a, nb], [na, b]], out, tag=f"{tag}.aoi" if tag else None)
    return na, nb


def add_full_adder(
    net: Netlist,
    a: str,
    b: str,
    cin: str,
    sum_out: str,
    cout: str,
    *,
    tag: str | None = None,
) -> None:
    """Ripple-carry full-adder cell in AOI style.

    ``ncout = NOT(a.b + cin.(a + b))`` (majority), then invert;
    ``sum = (a XOR b) XOR cin`` with the inner XOR shared.
    """
    t = tag or f"fa.{sum_out}"
    ncout = net.fresh_node(f"{t}.nco").name
    # Majority via AOI: branches a.b, cin.a, cin.b.
    add_aoi(net, [[a, b], [cin, a], [cin, b]], ncout, tag=f"{t}.maj")
    add_inverter(net, ncout, cout, tag=f"{t}.co")
    p = net.fresh_node(f"{t}.p").name  # a XOR b
    add_xor(net, a, b, p, tag=f"{t}.x1")
    add_xor(net, p, cin, sum_out, tag=f"{t}.x2")


def add_decoder(
    net: Netlist,
    address: list[str],
    lines: list[str],
    *,
    tag: str | None = None,
) -> None:
    """NOR address decoder: ``lines[k]`` is high iff address == k.

    ``lines`` must have length ``2 ** len(address)``.  Complement inverters
    are generated once and shared.
    """
    n = len(address)
    if len(lines) != 2**n:
        raise ValueError(
            f"decoder of {n} address bits needs {2**n} lines, "
            f"got {len(lines)}"
        )
    t = tag or "dec"
    complements = []
    for i, a in enumerate(address):
        na = net.fresh_node(f"{t}.n{i}").name
        add_inverter(net, a, na, tag=f"{t}.inv{i}")
        complements.append(na)
    for k, line in enumerate(lines):
        # Active-high line: NOR of the literals that must be low, i.e. for
        # each bit, the *wrong* polarity pulls the line down.
        wrong = [
            complements[i] if (k >> i) & 1 else address[i] for i in range(n)
        ]
        add_nor(net, wrong, line, tag=f"{t}.l{k}")


# ----------------------------------------------------------------------
# Standalone netlists.
# ----------------------------------------------------------------------
def xor2(*, tech: Technology = NMOS4) -> Netlist:
    """``out = a XOR b``."""
    net = Netlist("xor2", tech=tech)
    net.set_input("a", "b")
    add_xor(net, "a", "b", "out", tag="x")
    net.set_output("out")
    return net


def full_adder(*, tech: Technology = NMOS4) -> Netlist:
    """One-bit full adder: inputs ``a``, ``b``, ``cin``; outputs ``sum``,
    ``cout``."""
    net = Netlist("full_adder", tech=tech)
    net.set_input("a", "b", "cin")
    add_full_adder(net, "a", "b", "cin", "sum", "cout", tag="fa")
    net.set_output("sum", "cout")
    return net


def decoder(n: int = 3, *, tech: Technology = NMOS4) -> Netlist:
    """n-to-2^n NOR decoder: address ``a0..``, lines ``line0..``."""
    net = Netlist(f"decoder{n}", tech=tech)
    address = bus("a", n)
    lines = bus("line", 2**n)
    net.set_input(*address)
    add_decoder(net, address, lines)
    net.set_output(*lines)
    return net
