"""Programmable logic array (static NOR-NOR nMOS PLA).

The control logic of MIPS-class chips lived in PLAs.  The canonical nMOS
implementation is two NOR planes with depletion loads:

* AND plane: each product-term line has a pull-up and one pull-down per
  participating literal; the line is high iff every literal is satisfied
  (a NOR of the violated literals);
* OR plane: each output line NORs the product terms that assert it, then an
  output inverter restores active-high polarity.

Programming is a list of :class:`ProductTerm` rows -- essentially the
personality matrix of a real PLA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NetlistError
from ..netlist import Netlist
from ..tech import Technology, NMOS4
from .primitives import add_inverter, add_nor, bus

__all__ = ["ProductTerm", "add_pla", "pla"]


@dataclass(frozen=True)
class ProductTerm:
    """One PLA row.

    ``literals`` maps input index -> required polarity (1 means the input
    must be high); ``outputs`` lists the output indices this term asserts.
    """

    literals: dict[int, int]
    outputs: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.literals:
            raise NetlistError("a product term needs at least one literal")
        if not self.outputs:
            raise NetlistError("a product term must assert at least one output")
        for idx, polarity in self.literals.items():
            if polarity not in (0, 1):
                raise NetlistError(
                    f"literal polarity must be 0 or 1, got {polarity} "
                    f"for input {idx}"
                )

    def evaluate(self, inputs: list[int]) -> int:
        """Truth value of the term for a concrete input vector."""
        return int(
            all(inputs[idx] == pol for idx, pol in self.literals.items())
        )


def add_pla(
    net: Netlist,
    inputs: list[str],
    outputs: list[str],
    terms: list[ProductTerm],
    *,
    tag: str | None = None,
) -> list[str]:
    """Build the two NOR planes; returns the product-term line names."""
    t = tag or "pla"
    n_in, n_out = len(inputs), len(outputs)
    for term in terms:
        for idx in term.literals:
            if not 0 <= idx < n_in:
                raise NetlistError(f"term literal index {idx} out of range")
        for idx in term.outputs:
            if not 0 <= idx < n_out:
                raise NetlistError(f"term output index {idx} out of range")

    complements = []
    for i, name in enumerate(inputs):
        nc = net.fresh_node(f"{t}.nin{i}").name
        add_inverter(net, name, nc, tag=f"{t}.ii{i}")
        complements.append(nc)

    term_lines = []
    for r, term in enumerate(terms):
        line = f"{t}.pt{r}"
        # High iff all literals satisfied: NOR of the violating signals.
        violators = [
            complements[idx] if pol == 1 else inputs[idx]
            for idx, pol in sorted(term.literals.items())
        ]
        add_nor(net, violators, line, tag=f"{t}.and{r}")
        term_lines.append(line)

    for o, name in enumerate(outputs):
        asserting = [
            term_lines[r] for r, term in enumerate(terms) if o in term.outputs
        ]
        nline = net.fresh_node(f"{t}.no{o}").name
        if asserting:
            add_nor(net, asserting, nline, tag=f"{t}.or{o}")
        else:
            # Constant-false output: tie the NOR line high with a load only.
            net.add_pullup(nline, name=f"{t}.or{o}.pu")
        add_inverter(net, nline, name, tag=f"{t}.oi{o}")
    return term_lines


def pla(
    n_inputs: int,
    n_outputs: int,
    terms: list[ProductTerm],
    *,
    name: str = "pla",
    tech: Technology = NMOS4,
) -> Netlist:
    """Standalone PLA: inputs ``in0..``, outputs ``out0..``."""
    net = Netlist(name, tech=tech)
    ins = bus("in", n_inputs)
    outs = bus("out", n_outputs)
    net.set_input(*ins)
    add_pla(net, ins, outs, terms)
    net.set_output(*outs)
    return net
