"""nMOS circuit primitives.

Builder functions in this package come in pairs:

* ``add_<thing>(net, ...)`` adds the structure into an existing netlist
  using caller-supplied node names -- composition style;
* ``<thing>(...)`` returns a fresh standalone netlist with declared inputs
  and outputs -- convenient for tests and single-structure experiments.

All geometry defaults to the technology's minimum enhancement device and
the classic weak depletion load (4:1 ratio).  ``size`` scales drive
strength: pull-downs get ``size``x the minimum width and the load is
shortened proportionally, keeping the ratio legal.
"""

from __future__ import annotations

from ..netlist import FlowDirection, Netlist
from ..tech import Technology, NMOS4

__all__ = [
    "bus",
    "add_inverter",
    "add_nand",
    "add_nor",
    "add_pass",
    "add_mux2",
    "add_superbuffer",
    "inverter",
    "inverter_chain",
    "nand",
    "nor",
    "pass_chain",
    "mux2",
    "superbuffer",
]


def bus(prefix: str, width: int) -> list[str]:
    """Canonical bit names of a bus: ``prefix0 .. prefix{width-1}``."""
    if width < 1:
        raise ValueError(f"bus width must be >= 1, got {width}")
    return [f"{prefix}{i}" for i in range(width)]


# ----------------------------------------------------------------------
# Composable builders.
# ----------------------------------------------------------------------
def add_inverter(
    net: Netlist,
    inp: str,
    out: str,
    *,
    size: float = 1.0,
    tag: str | None = None,
) -> None:
    """A depletion-load inverter: ``out = NOT inp``."""
    tech = net.tech
    w_pd = size * tech.min_width()
    net.add_pullup(
        out,
        w=tech.min_width(),
        l=max(tech.min_length(), 4.0 * tech.min_length() / size),
        name=f"{tag}.pu" if tag else None,
    )
    net.add_enh(
        inp,
        out,
        net.gnd,
        w=w_pd,
        name=f"{tag}.pd" if tag else None,
    )


def add_nand(
    net: Netlist,
    inputs: list[str],
    out: str,
    *,
    size: float = 1.0,
    tag: str | None = None,
) -> None:
    """A k-input NAND: series pull-downs, widened k-fold to keep the ratio."""
    if not inputs:
        raise ValueError("nand needs at least one input")
    tech = net.tech
    k = len(inputs)
    net.add_pullup(out, name=f"{tag}.pu" if tag else None)
    w = size * k * tech.min_width()
    previous = out
    for i, inp in enumerate(inputs):
        nxt = net.gnd if i == k - 1 else net.fresh_node(f"{out}.s").name
        net.add_enh(
            inp,
            previous,
            nxt,
            w=w,
            name=f"{tag}.pd{i}" if tag else None,
        )
        previous = nxt


def add_nor(
    net: Netlist,
    inputs: list[str],
    out: str,
    *,
    size: float = 1.0,
    tag: str | None = None,
) -> None:
    """A k-input NOR: parallel pull-downs."""
    if not inputs:
        raise ValueError("nor needs at least one input")
    tech = net.tech
    net.add_pullup(out, name=f"{tag}.pu" if tag else None)
    for i, inp in enumerate(inputs):
        net.add_enh(
            inp,
            out,
            net.gnd,
            w=size * tech.min_width(),
            name=f"{tag}.pd{i}" if tag else None,
        )


def add_pass(
    net: Netlist,
    gate: str,
    a: str,
    b: str,
    *,
    size: float = 1.0,
    name: str | None = None,
    flow: FlowDirection = FlowDirection.UNKNOWN,
) -> None:
    """A pass transistor (transmission switch) between ``a`` and ``b``."""
    net.add_enh(
        gate, a, b, w=size * net.tech.min_width(), name=name, flow=flow
    )


def add_mux2(
    net: Netlist,
    sel: str,
    nsel: str,
    a: str,
    b: str,
    out: str,
    *,
    size: float = 1.0,
    tag: str | None = None,
) -> None:
    """Two-way pass mux: ``out = a if sel else b`` (``nsel = NOT sel``)."""
    add_pass(net, sel, a, out, size=size, name=f"{tag}.pa" if tag else None)
    add_pass(net, nsel, b, out, size=size, name=f"{tag}.pb" if tag else None)


def add_superbuffer(
    net: Netlist,
    inp: str,
    out: str,
    *,
    size: float = 4.0,
    tag: str | None = None,
) -> None:
    """Inverting superbuffer: actively driven in both directions.

    The input drives a small inverter producing ``x``; the output stage is
    a depletion source-follower gated by ``x`` (pull-up) and a large
    enhancement pull-down gated by the input.  Standard nMOS idiom for
    driving long wires and clock lines.
    """
    tech = net.tech
    x = net.fresh_node(f"{out}.sb").name
    # The first inverter is upsized: it must drive the follower's gate
    # quickly or the buffer's rise is limited by its own internal node.
    add_inverter(net, inp, x, size=2.0, tag=f"{tag}.inv" if tag else None)
    # The follower is kept ~2x weaker than the pull-down so the output-low
    # level stays legal even though the depletion device never fully cuts
    # off (it still beats a plain load on rise because its gate is driven),
    # and at minimum length so its gate load stays small.
    net.add_transistor(
        "dep",
        gate=x,
        source=out,
        drain=net.vdd,
        w=0.5 * size * tech.min_width(),
        l=tech.min_length(),
        name=f"{tag}.fo" if tag else None,
        flow=FlowDirection.D_TO_S,
    )
    net.add_enh(
        inp,
        out,
        net.gnd,
        w=size * tech.min_width(),
        name=f"{tag}.pd" if tag else None,
    )


# ----------------------------------------------------------------------
# Standalone netlists.
# ----------------------------------------------------------------------
def inverter(*, size: float = 1.0, tech: Technology = NMOS4) -> Netlist:
    """``out = NOT a``."""
    net = Netlist("inverter", tech=tech)
    net.set_input("a")
    add_inverter(net, "a", "out", size=size)
    net.set_output("out")
    return net


def inverter_chain(
    length: int,
    *,
    size: float = 1.0,
    load: float = 0.0,
    tech: Technology = NMOS4,
) -> Netlist:
    """A chain of ``length`` inverters; ``load`` farads on the output."""
    if length < 1:
        raise ValueError("chain length must be >= 1")
    net = Netlist(f"invchain{length}", tech=tech)
    net.set_input("a")
    previous = "a"
    for i in range(length):
        out = f"n{i}"
        add_inverter(net, previous, out, size=size, tag=f"inv{i}")
        previous = out
    net.set_output(previous)
    if load > 0:
        net.add_cap(previous, load)
    return net


def nand(k: int = 2, *, tech: Technology = NMOS4) -> Netlist:
    """k-input NAND with inputs ``a0..``, output ``out``."""
    net = Netlist(f"nand{k}", tech=tech)
    inputs = bus("a", k)
    net.set_input(*inputs)
    add_nand(net, inputs, "out", tag="g")
    net.set_output("out")
    return net


def nor(k: int = 2, *, tech: Technology = NMOS4) -> Netlist:
    """k-input NOR with inputs ``a0..``, output ``out``."""
    net = Netlist(f"nor{k}", tech=tech)
    inputs = bus("a", k)
    net.set_input(*inputs)
    add_nor(net, inputs, "out", tag="g")
    net.set_output("out")
    return net


def pass_chain(
    length: int,
    *,
    buffer_every: int = 0,
    size: float = 1.0,
    tech: Technology = NMOS4,
) -> Netlist:
    """A chain of ``length`` always-on pass transistors, ``d`` to ``out``.

    The classic quadratic-delay structure (experiment R-F4).  All gates are
    tied to a ``sel`` input (drive it to 1).  ``buffer_every`` > 0 inserts
    a restoring buffer (two cascaded inverters: a minimum one so the chain
    sees almost no load, then a 2x driver) after every that-many pass
    devices -- the era's design rule for breaking the quadratic blowup.
    """
    if length < 1:
        raise ValueError("chain length must be >= 1")
    net = Netlist(f"passchain{length}", tech=tech)
    net.set_input("d", "sel")
    previous = "d"
    since_buffer = 0
    for i in range(length):
        out = f"p{i}"
        add_pass(net, "sel", previous, out, size=size, name=f"sw{i}")
        previous = out
        since_buffer += 1
        if buffer_every and since_buffer == buffer_every and i < length - 1:
            mid = f"bm{i}"
            buffered = f"b{i}"
            add_inverter(net, previous, mid, tag=f"buf{i}a")
            add_inverter(net, mid, buffered, size=2.0, tag=f"buf{i}b")
            previous = buffered
            since_buffer = 0
    net.set_output(previous)
    # Give the output a sense amplifier's worth of gate load.
    add_inverter(net, previous, "sense", tag="sense")
    return net


def mux2(*, tech: Technology = NMOS4) -> Netlist:
    """2-way mux: inputs ``a``, ``b``, ``sel``; output ``out`` (buffered)."""
    net = Netlist("mux2", tech=tech)
    net.set_input("a", "b", "sel")
    add_inverter(net, "sel", "nsel", tag="seln")
    net.add_exclusive_group("sel", "nsel")
    add_mux2(net, "sel", "nsel", "a", "b", "out", tag="mux")
    add_inverter(net, "out", "outb", tag="ob")
    net.set_output("out", "outb")
    return net


def superbuffer(*, size: float = 4.0, tech: Technology = NMOS4) -> Netlist:
    """Standalone inverting superbuffer, input ``a``, output ``out``."""
    net = Netlist("superbuffer", tech=tech)
    net.set_input("a")
    add_superbuffer(net, "a", "out", size=size, tag="sb")
    net.set_output("out")
    return net
