"""Seeded random logic generator for scaling experiments.

R-T3/R-F3 need circuits spanning 10^2 .. 10^5 devices with realistic
composition.  The generator builds a layered DAG of nMOS structures in
fixed proportions (inverters, NAND2/3, NOR2, pass-mux pairs, occasional
superbuffers), fully seeded so every run is reproducible.
"""

from __future__ import annotations

import random

from ..netlist import Netlist
from ..tech import Technology, NMOS4
from .primitives import (
    add_inverter,
    add_mux2,
    add_nand,
    add_nor,
    add_superbuffer,
    bus,
)

__all__ = ["random_logic"]

#: (kind, weight) mix of generated structures.
_MIX = (
    ("inv", 30),
    ("nand2", 25),
    ("nor2", 20),
    ("nand3", 10),
    ("mux", 10),
    ("sbuf", 5),
)


def random_logic(
    target_devices: int,
    *,
    seed: int = 0,
    n_inputs: int = 16,
    layer_width: int = 32,
    tech: Technology = NMOS4,
) -> Netlist:
    """Generate a random combinational netlist of roughly ``target_devices``.

    The circuit is layered: each new structure draws its inputs from the
    most recent ``2 * layer_width`` signals, bounding logical depth growth
    to roughly devices / layer_width.  Sinks that end up unused are
    declared primary outputs so nothing is dangling.
    """
    if target_devices < 4:
        raise ValueError("target_devices must be >= 4")
    rng = random.Random(seed)
    net = Netlist(f"rand{target_devices}_s{seed}", tech=tech)
    inputs = bus("in", n_inputs)
    net.set_input(*inputs)

    signals: list[str] = list(inputs)
    used: set[str] = set()
    kinds = [k for k, _w in _MIX]
    weights = [w for _k, w in _MIX]
    counter = 0

    def pick(n: int) -> list[str]:
        window = signals[-2 * layer_width :]
        chosen = rng.sample(window, min(n, len(window)))
        while len(chosen) < n:
            chosen.append(rng.choice(signals))
        used.update(chosen)
        return chosen

    while len(net.devices) < target_devices:
        counter += 1
        kind = rng.choices(kinds, weights)[0]
        out = f"g{counter}"
        if kind == "inv":
            add_inverter(net, pick(1)[0], out, tag=out)
        elif kind == "nand2":
            add_nand(net, pick(2), out, tag=out)
        elif kind == "nor2":
            add_nor(net, pick(2), out, tag=out)
        elif kind == "nand3":
            add_nand(net, pick(3), out, tag=out)
        elif kind == "mux":
            sel, a, b = pick(3)
            nsel = f"{out}.ns"
            add_inverter(net, sel, nsel, tag=f"{out}.si")
            if net.exclusive_group_of(sel) is None:
                net.add_exclusive_group(sel, nsel)
            add_mux2(net, sel, nsel, a, b, f"{out}.m", tag=out)
            # Restore the pass output so it can drive gates downstream.
            add_inverter(net, f"{out}.m", out, tag=f"{out}.oi")
        else:  # sbuf
            add_superbuffer(net, pick(1)[0], out, tag=out)
        signals.append(out)

    leaves = [s for s in signals if s not in used and s not in inputs]
    net.set_output(*leaves[-max(1, layer_width) :])
    return net
