"""Register file: static cells, decoupled ports, precharged read bitlines.

The structure follows MIPS-era datapath convention, with the write and read
ports decoupled the way real register files are:

* each cell is a pair of cross-coupled inverters (``s``/``ns``);
* **write port** (phi1): write wordline ``wwl_r = dec_r AND we AND phi1``
  turns on a dual-rail pass pair driving the cell from buffered write
  bitlines, so a write never fights the precharge;
* **read port** (phi2): the read bitline ``rbl_i`` is precharged high
  during phi1; a two-device read stack per cell (gated by
  ``rwl_r = dec_r AND phi2`` and by the cell node ``s``) discharges it when
  the selected cell stores 1; a sense inverter produces ``q_i = NOT rbl``,
  i.e. ``q = s`` ... inverted once more for an active-high output.

This block exercises everything at once: decoder gate logic, clock
qualification, precharged dynamic nodes, pass access devices, and static
feedback (the cross-coupled pair) that the timing-graph builder must cut.
"""

from __future__ import annotations

import math

from ..errors import NetlistError
from ..netlist import Netlist
from ..tech import Technology, NMOS4
from .logic import add_decoder
from .primitives import add_inverter, add_nand, add_pass, bus

__all__ = ["add_register_file", "register_file", "RegFilePorts"]


class RegFilePorts:
    """Canonical port names of a generated register file."""

    def __init__(self, nregs: int, width: int, tag: str):
        self.address = bus("ra", int(math.log2(nregs)))
        self.write_enable = "we"
        self.write_data = bus("wd", width)
        self.read_data = bus("q", width)
        self.tag = tag

    def cell(self, r: int, i: int) -> str:
        """Storage node of register ``r``, bit ``i``."""
        return f"{self.tag}.cell{r}_{i}.s"

    def read_bitline(self, i: int) -> str:
        """Precharged read bitline of column ``i``."""
        return f"{self.tag}.rbl{i}"

    def write_wordline(self, r: int) -> str:
        """Write wordline of register ``r`` (``dec AND we AND phi1``)."""
        return f"{self.tag}.wwl{r}"

    def read_wordline(self, r: int) -> str:
        """Read wordline of register ``r`` (``dec AND phi2``)."""
        return f"{self.tag}.rwl{r}"


def add_register_file(
    net: Netlist,
    nregs: int,
    width: int,
    *,
    address: list[str],
    write_enable: str,
    write_data: list[str],
    read_data: list[str],
    phi1: str,
    phi2: str,
    tag: str | None = None,
) -> None:
    """Build the array into ``net`` (see module docstring for structure)."""
    if nregs < 2 or (nregs & (nregs - 1)) != 0:
        raise NetlistError("nregs must be a power of two >= 2")
    if len(address) != int(math.log2(nregs)):
        raise NetlistError(
            f"{nregs} registers need {int(math.log2(nregs))} address bits"
        )
    if len(write_data) != width or len(read_data) != width:
        raise NetlistError("write/read buses must match the width")
    t = tag or "rf"
    tech = net.tech

    dec_lines = [f"{t}.dec{r}" for r in range(nregs)]
    add_decoder(net, address, dec_lines, tag=f"{t}.dec")

    # Qualified wordlines.  The NAND output (write-wordline complement) is
    # kept on a stable name: it also gates the cells' feedback switches.
    for r in range(nregs):
        nw = f"{t}.nww{r}"
        add_nand(net, [dec_lines[r], write_enable, phi1], nw, tag=f"{t}.wwn{r}")
        add_inverter(net, nw, f"{t}.wwl{r}", size=2.0, tag=f"{t}.wwi{r}")
        nr = net.fresh_node(f"{t}.nrw{r}").name
        add_nand(net, [dec_lines[r], phi2], nr, tag=f"{t}.rwn{r}")
        add_inverter(net, nr, f"{t}.rwl{r}", size=2.0, tag=f"{t}.rwi{r}")
    # Decoded wordlines are one-hot by construction: assert it so the
    # analyzer never chains two rows' access devices into one path.
    net.add_exclusive_group(*(f"{t}.wwl{r}" for r in range(nregs)))
    net.add_exclusive_group(*(f"{t}.rwl{r}" for r in range(nregs)))

    # Write bitlines: buffered true and complement rails.
    for i in range(width):
        nwd = f"{t}.nwbl{i}"
        add_inverter(net, write_data[i], nwd, size=2.0, tag=f"{t}.wbn{i}")
        add_inverter(net, nwd, f"{t}.wbl{i}", size=2.0, tag=f"{t}.wbt{i}")

    # Read bitlines: precharge (phi1) + sense.
    for i in range(width):
        rbl = f"{t}.rbl{i}"
        net.add_node(rbl, nregs * 4.0 * tech.c_node_floor)
        net.add_enh(
            phi1, net.vdd, rbl, w=2 * tech.min_width(), name=f"{t}.pre{i}"
        )
        # The selected cell discharges rbl when it stores 1, so a single
        # sense inverter restores the read value: q = NOT(rbl) = s.
        add_inverter(net, rbl, read_data[i], size=2.0, tag=f"{t}.sense{i}")

    # The cell array: jam-free static cells.  The cross-coupled inverters
    # drive the storage nodes through feedback switches gated by the write
    # wordline's complement, so a write never fights the feedback -- the
    # classic clocked-static-latch idiom.
    for r in range(nregs):
        for i in range(width):
            c = f"{t}.cell{r}_{i}"
            s, ns = f"{c}.s", f"{c}.ns"
            si, nsi = f"{c}.si", f"{c}.nsi"
            add_inverter(net, s, nsi, tag=f"{c}.i1")
            add_pass(net, f"{t}.nww{r}", nsi, ns, name=f"{c}.fb1")
            add_inverter(net, ns, si, tag=f"{c}.i2")
            add_pass(net, f"{t}.nww{r}", si, s, name=f"{c}.fb2")
            # Write access pair.
            add_pass(net, f"{t}.wwl{r}", f"{t}.wbl{i}", s, size=2.0,
                     name=f"{c}.ax")
            add_pass(net, f"{t}.wwl{r}", f"{t}.nwbl{i}", ns, size=2.0,
                     name=f"{c}.axn")
            # Read stack: rbl discharges when selected and s == 1.
            mid = net.fresh_node(f"{c}.rm").name
            net.add_enh(f"{t}.rwl{r}", f"{t}.rbl{i}", mid, name=f"{c}.rd1")
            net.add_enh(s, mid, net.gnd, name=f"{c}.rd2")


def register_file(
    nregs: int = 4,
    width: int = 4,
    *,
    tech: Technology = NMOS4,
) -> tuple[Netlist, RegFilePorts]:
    """Standalone register file; returns ``(netlist, ports)``.

    Read data appears on ``q*`` during phi2; writes happen during phi1 when
    ``we`` is high, at the address on ``ra*``.
    """
    net = Netlist(f"regfile{nregs}x{width}", tech=tech)
    ports = RegFilePorts(nregs, width, "rf")
    net.set_input(*ports.address, ports.write_enable, *ports.write_data)
    net.set_clock("phi1", "phi1")
    net.set_clock("phi2", "phi2")
    add_register_file(
        net,
        nregs,
        width,
        address=ports.address,
        write_enable=ports.write_enable,
        write_data=ports.write_data,
        read_data=ports.read_data,
        phi1="phi1",
        phi2="phi2",
        tag="rf",
    )
    net.set_output(*ports.read_data)
    return net, ports
