"""Barrel shifter: the pass-transistor matrix.

The MIPS barrel shifter was a full crossbar of pass transistors -- n one-hot
shift-select lines, each switching a diagonal of the n x n matrix.  It is
the stress test for signal-flow inference (hundreds of pass devices, no
pull-ups anywhere in the matrix) and a workload where gate-level baselines
have nothing to say (R-T4, R-T7).
"""

from __future__ import annotations

from ..netlist import Netlist
from ..tech import Technology, NMOS4
from .primitives import add_inverter, add_superbuffer, bus

__all__ = ["add_barrel_shifter", "barrel_shifter"]


def add_barrel_shifter(
    net: Netlist,
    in_bits: list[str],
    out_bits: list[str],
    select: list[str],
    *,
    rotate: bool = True,
    tag: str | None = None,
) -> None:
    """Pass matrix: ``out[i] = in[(i + k) mod n]`` when ``select[k]`` high.

    ``select`` is one-hot.  With ``rotate=False``, shifted-out positions are
    left unconnected for that diagonal (a logical right shift whose high
    bits rely on the bus precharge/keeper of the surrounding datapath).
    """
    n = len(in_bits)
    if len(out_bits) != n or len(select) != n:
        raise ValueError("barrel shifter buses must all have width n")
    t = tag or "bsh"
    for k, sel in enumerate(select):
        for i in range(n):
            src = i + k
            if src >= n:
                if not rotate:
                    continue
                src -= n
            net.add_enh(
                sel,
                in_bits[src],
                out_bits[i],
                name=f"{t}.m{k}_{i}",
            )


def barrel_shifter(
    width: int = 8,
    *,
    rotate: bool = True,
    buffered: bool = True,
    tech: Technology = NMOS4,
) -> Netlist:
    """Standalone rotator: bus ``d`` in, one-hot ``s`` selects, bus ``q``.

    With ``buffered`` (default) every matrix output drives an inverting
    superbuffer ``q{i}`` -- as the real datapath did -- so outputs are
    restored levels; the raw matrix nodes are ``m0..``.
    """
    net = Netlist(f"barrel{width}", tech=tech)
    d = bus("d", width)
    s = bus("s", width)
    m = bus("m", width)
    q = bus("q", width)
    net.set_input(*d, *s)
    if width > 1:
        net.add_exclusive_group(*s)
    add_barrel_shifter(net, d, m, s, rotate=rotate)
    if buffered:
        for i in range(width):
            add_superbuffer(net, m[i], q[i], tag=f"ob{i}")
        net.set_output(*q)
    else:
        for i in range(width):
            add_inverter(net, m[i], q[i], tag=f"ob{i}")
        net.set_output(*q)
    return net
