"""Command-line interface: the tool a 1983 design flow would have invoked.

Subcommands operate on ``.sim`` netlists (with this package's ``|I/|O/|K``
boundary extension records):

``analyze``   full timing analysis (combinational or two-phase), report to
              stdout; exits 1 on races.  ``--json`` emits the versioned
              report schema (docs/report-schema.md) instead of text;
              ``--trace`` prints per-phase timings to stderr;
              ``--on-error=quarantine|best-effort`` degrades gracefully
              around ERC/extraction failures instead of aborting;
              ``--workers N|auto`` extracts arcs on the persistent
              worker pool for large netlists; repeatable
              ``--corner NAME=SPEC`` runs a multi-corner (MCMM) sweep
              sharing the structural phases across corners
``explain``   causal chain behind one node's arrival time: every hop with
              its stage, arc family, and delay-model terms; the terms sum
              to the reported arrival exactly
``erc``       electrical rules check; exits 1 on errors
``flow``      signal-flow inference report; exits 1 if devices remain
              unresolved (hints needed)
``stats``     structural fingerprint (devices, stages, archetypes)
``simulate``  run a test-vector deck (set/cycle/settle/expect); exits 1 on
              failed expectations
``charge``    charge-sharing hazard check on dynamic nodes
``optimize``  critical-path resizing loop; writes the resized netlist

Example::

    python -m repro analyze chip.sim --top-k 3 --tech process.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import __version__
from .core import TimingAnalyzer, design_fingerprint
from .errors import ReproError
from .flow import HintSet, infer_flow
from .netlist import check as erc_check
from .netlist import sim_dumps, sim_load
from .opt import optimize
from .stages import decompose
from .tech import NMOS4, Technology
from .trace import Trace

__all__ = ["main"]


def _load_netlist(args) -> "Netlist":
    tech = Technology.from_json(args.tech) if args.tech else NMOS4
    with open(args.netlist) as fp:
        return sim_load(fp, tech=tech)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("netlist", help=".sim netlist file")
    parser.add_argument(
        "--tech", help="JSON technology/process file", default=None
    )


def _parse_input_arrivals(args) -> dict[str, float]:
    arrivals = {}
    for spec in args.input_arrival or ():
        name, _eq, value = spec.partition("=")
        if not _eq:
            raise SystemExit(f"--input-arrival needs name=ns, got {spec!r}")
        arrivals[name] = float(value) * 1e-9
    return arrivals


def _apply_hints(args, net) -> None:
    hints = HintSet()
    for spec in args.hint or ():
        pattern, _eq, direction = spec.partition("=")
        if not _eq:
            raise SystemExit(f"--hint needs pattern=direction, got {spec!r}")
        hints.add(pattern, direction)
    if len(hints):
        hints.apply(net)


def _workers_spec(value: str):
    """``--workers`` argument: a positive integer or the literal ``auto``.

    Zero and negative widths are rejected here, at the argument parser,
    instead of being silently clamped to serial deep in the engine.
    """
    if value == "auto":
        return value
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        )
    return workers


def _parse_corner_scenarios(args, base_tech):
    """``--corner`` arguments -> MCMM scenarios.

    Each spec is ``NAME=CORNER`` (``slow``/``typ``/``fast`` of the
    loaded technology), ``NAME=FILE.json`` (an explicit process file),
    or a bare corner name as shorthand for ``slow=slow`` etc.
    """
    from .core.mcmm import CORNER_NAMES, Scenario

    scenarios = []
    for spec in args.corner or ():
        name, _eq, value = spec.partition("=")
        if not _eq:
            name = value = spec
        if not name:
            raise SystemExit(
                f"--corner needs name=corner|file, got {spec!r}"
            )
        if value in CORNER_NAMES:
            tech = base_tech.corner(value)
        elif os.path.exists(value):
            tech = Technology.from_json(value)
        else:
            raise SystemExit(
                f"--corner {spec!r}: {value!r} is neither a corner "
                f"({'/'.join(CORNER_NAMES)}) nor a technology file"
            )
        scenarios.append(Scenario(name=name, tech=tech))
    return scenarios


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_analyze(args) -> int:
    net = _load_netlist(args)
    arrivals = _parse_input_arrivals(args)
    _apply_hints(args, net)
    trace = Trace() if args.trace else None
    analyzer = TimingAnalyzer(
        net,
        model=args.model,
        run_erc=not args.no_erc,
        workers=args.workers,
        trace=trace,
        on_error=args.on_error,
    )
    scenarios = _parse_corner_scenarios(args, net.tech)
    if scenarios:
        mcmm = analyzer.analyze_mcmm(
            scenarios, arrivals, top_k=args.top_k
        )
        if args.json:
            _print_json(mcmm.to_json())
        else:
            print(mcmm.report())
        if trace is not None:
            print(trace.summary(), file=sys.stderr)
        raced = any(
            result.clock_verification is not None
            and result.clock_verification.races
            for result in mcmm.results.values()
        )
        return 1 if raced else 0
    result = analyzer.analyze(input_arrivals=arrivals, top_k=args.top_k)
    if args.json:
        _print_json(result.to_json())
    else:
        print(result.report())
    if trace is not None:
        print(trace.summary(), file=sys.stderr)
    if result.clock_verification is not None and result.clock_verification.races:
        return 1
    return 0


def _cmd_explain(args) -> int:
    net = _load_netlist(args)
    arrivals = _parse_input_arrivals(args)
    _apply_hints(args, net)
    analyzer = TimingAnalyzer(
        net,
        model=args.model,
        run_erc=not args.no_erc,
        on_error=args.on_error,
    )
    scenarios = _parse_corner_scenarios(args, net.tech)
    if scenarios:
        # MCMM explain: each node's chain comes from its *dominant*
        # corner (the scenario in which it arrives latest), named by the
        # explanation's `scenario` field.
        mcmm = analyzer.analyze_mcmm(scenarios, arrivals)
        dominant = mcmm.result(mcmm.dominant_scenario())
        nodes = args.node or [
            path.endpoint for path in dominant.paths[:1]
        ]
        if not nodes:
            print("error: no critical path to explain; name a node",
                  file=sys.stderr)
            return 2
        payloads = []
        for node in nodes:
            explanation = mcmm.explain(
                node, args.transition, sensitivity=args.sensitivity
            )
            if args.json:
                payloads.append(explanation.to_json())
            else:
                print(explanation.format())
        if args.json:
            _print_json(payloads if len(payloads) > 1 else payloads[0])
        return 0
    result = analyzer.analyze(input_arrivals=arrivals)
    nodes = args.node or [
        path.endpoint for path in result.paths[: 1]
    ]
    if not nodes:
        print("error: no critical path to explain; name a node",
              file=sys.stderr)
        return 2
    payloads = []
    for node in nodes:
        explanation = analyzer.explain(
            node, args.transition, result=result,
            sensitivity=args.sensitivity,
        )
        if args.json:
            payloads.append(explanation.to_json())
        else:
            print(explanation.format())
    if args.json:
        _print_json(payloads if len(payloads) > 1 else payloads[0])
    return 0


def _cmd_erc(args) -> int:
    net = _load_netlist(args)
    violations = erc_check(net)
    if not violations:
        print(f"{net.name}: electrical rules clean")
        return 0
    for violation in violations:
        print(violation)
    errors = [v for v in violations if v.severity == "error"]
    print(f"{len(errors)} error(s), {len(violations) - len(errors)} warning(s)")
    return 1 if errors else 0


def _cmd_flow(args) -> int:
    net = _load_netlist(args)
    hints = HintSet()
    for spec in args.hint or ():
        pattern, _eq, direction = spec.partition("=")
        if not _eq:
            raise SystemExit(f"--hint needs pattern=direction, got {spec!r}")
        hints.add(pattern, direction)
    if len(hints):
        hints.apply(net)
    report = infer_flow(net)
    print(report.summary())
    if report.unresolved:
        print("unresolved devices (add --hint pattern=s->d|d->s|bidir):")
        for name in report.unresolved:
            print(f"  {name}")
        return 1
    return 0


def _cmd_stats(args) -> int:
    net = _load_netlist(args)
    print(design_fingerprint(net, decompose(net)))
    return 0


def _cmd_simulate(args) -> int:
    from .sim import parse_deck, run_deck

    net = _load_netlist(args)
    with open(args.deck) as fp:
        commands = parse_deck(fp.read())
    result = run_deck(net, commands)
    print(result.summary())
    return 0 if result.ok else 1


def _cmd_charge(args) -> int:
    from .core import charge_sharing_report

    net = _load_netlist(args)
    hazards = charge_sharing_report(net, threshold=args.threshold)
    if args.json:
        _print_json({
            "schema": "repro-charge-report",
            "netlist": net.name,
            "threshold": args.threshold,
            "hazards": [
                {
                    "node": hazard.node,
                    "node_class": hazard.node_class,
                    "c_store": hazard.c_store,
                    "c_shared": hazard.c_shared,
                    "retention": hazard.ratio,
                    "via": list(hazard.via),
                }
                for hazard in hazards
            ],
        })
        return 1 if hazards else 0
    if not hazards:
        print(f"{net.name}: no charge-sharing hazards "
              f"(threshold {args.threshold})")
        return 0
    for hazard in hazards:
        print(hazard)
    return 1


def _cmd_optimize(args) -> int:
    net = _load_netlist(args)
    history = optimize(
        net,
        target=args.target * 1e-9 if args.target else None,
        iterations=args.iterations,
        factor=args.factor,
    )
    for step in history:
        print(
            f"iteration {step.iteration}: "
            f"{step.delay_before * 1e9:.3f} -> "
            f"{step.delay_after * 1e9:.3f} ns "
            f"({len(step.applied)} device(s) widened)"
        )
    if not history:
        print("nothing to improve (already at target or no candidates)")
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(sim_dumps(net))
        print(f"wrote resized netlist to {args.output}")
    return 0


def _cmd_serve(args) -> int:
    import signal

    from .serve import TimingServer
    from .testing.faults import FAULT_PLAN_ENV, install_plan_from_env

    if os.environ.get(FAULT_PLAN_ENV):
        # Chaos-test hook: arm a scripted fault plan (crash/torn-write/
        # hang at named fault points) from the environment.  Production
        # runs never set this variable.
        install_plan_from_env()
    server = TimingServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        cache_dir=args.cache_dir,
        journal_dir=(None if args.no_journal else args.journal_dir),
        default_deadline=(
            args.deadline_ms / 1000.0 if args.deadline_ms else None
        ),
        default_on_error=args.on_error,
    )
    for name in server.recovered_designs:
        print(f"recovered {name}: journal replay")
    tech = Technology.from_json(args.tech) if args.tech else None
    for path in args.netlist:
        name = os.path.splitext(os.path.basename(path))[0]
        if name in server.sessions:
            # Already rebuilt from its journal; the durable state (which
            # includes every applied delta) wins over the on-disk file.
            continue
        with open(path) as fp:
            sim_text = fp.read()
        info = server.load(name, {"sim": sim_text,
                                  **({"tech": tech.to_dict()} if tech else {})})
        print(f"loaded {name}: {info['devices']} devices, "
              f"{info['stages']} stages")

    def _graceful(signum, frame):
        # Runs on the main thread between serve_forever's polls; stop()
        # drains in-flight requests and reaps the worker pool, then
        # serve_forever returns and we exit 0 -- a clean drain, which is
        # what a container supervisor sending SIGTERM wants.
        server.stop()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    print(f"repro serve: listening on http://{args.host}:{server.port} "
          f"(designs: {len(server.sessions)}, workers: {args.workers}, "
          f"max in-flight: {args.max_inflight})",
          flush=True)
    server.serve_forever()
    server.stop()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TV-class static timing analysis for nMOS .sim netlists",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--debug", action="store_true",
        help="print full tracebacks instead of one-line diagnostics"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="run the timing analyzer")
    _add_common(p)
    p.add_argument("--model", default="elmore",
                   choices=("elmore", "lumped", "pr-min", "pr-max"))
    p.add_argument("--top-k", type=int, default=5)
    p.add_argument("--workers", type=_workers_spec, default=1,
                   metavar="N|auto",
                   help="arc-extraction pool width: a positive integer, "
                        "or 'auto' to size from the available CPUs; "
                        "parallel extraction only engages when the "
                        "crossover heuristic predicts a win, and results "
                        "are identical to serial either way (default: 1)")
    p.add_argument("--no-erc", action="store_true",
                   help="skip electrical rules (partial netlists)")
    p.add_argument("--corner", action="append", metavar="NAME=SPEC",
                   help="repeatable: add an MCMM scenario named NAME at "
                        "corner SPEC ('slow'/'typ'/'fast' of the loaded "
                        "technology, or a process JSON file; a bare "
                        "corner name works as shorthand).  With corners "
                        "the report is the merged MCMM view -- worst "
                        "arrival per node, dominant corner per path -- "
                        "and structural phases run once for all corners")
    p.add_argument("--input-arrival", action="append", metavar="NAME=NS")
    p.add_argument("--hint", action="append", metavar="PATTERN=DIR")
    p.add_argument("--json", action="store_true",
                   help="emit the versioned JSON report schema "
                        "(docs/report-schema.md) instead of text")
    p.add_argument("--trace", action="store_true",
                   help="print per-phase timing/counter summary to stderr")
    p.add_argument("--on-error", default="strict",
                   choices=("strict", "quarantine", "best-effort"),
                   help="error policy: fail fast (strict, default), "
                        "excise broken stages and analyze the rest "
                        "(quarantine), or additionally downgrade "
                        "recoverable errors (best-effort)")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "explain",
        help="causal chain behind a node's arrival time",
        description="Print every hop behind a node's worst arrival: "
                    "stage, arc family (gate/transfer/channel), RC and "
                    "slope delay terms.  The terms sum to the reported "
                    "arrival exactly.  With no NODE, explains the "
                    "critical-path endpoint.",
    )
    _add_common(p)
    p.add_argument("node", nargs="*",
                   help="node(s) to explain (default: critical endpoint)")
    p.add_argument("--transition", choices=("rise", "fall"), default=None,
                   help="explain this transition (default: the worst one)")
    p.add_argument("--sensitivity", action="store_true",
                   help="attach per-parameter arrival slopes: which "
                        "technology parameter moves this path most "
                        "(parametric delay layer)")
    p.add_argument("--model", default="elmore",
                   choices=("elmore", "lumped", "pr-min", "pr-max"))
    p.add_argument("--no-erc", action="store_true",
                   help="skip electrical rules (partial netlists)")
    p.add_argument("--corner", action="append", metavar="NAME=SPEC",
                   help="repeatable: explain against an MCMM sweep over "
                        "these corners (see `repro analyze --help`); "
                        "each node's chain comes from its dominant "
                        "corner, which the explanation names")
    p.add_argument("--input-arrival", action="append", metavar="NAME=NS")
    p.add_argument("--hint", action="append", metavar="PATTERN=DIR")
    p.add_argument("--json", action="store_true",
                   help="emit the explanation(s) as JSON")
    p.add_argument("--on-error", default="strict",
                   choices=("strict", "quarantine", "best-effort"),
                   help="error policy (see `repro analyze --help`); "
                        "explaining a quarantined node reports why it "
                        "was excised")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("erc", help="electrical rules check")
    _add_common(p)
    p.set_defaults(func=_cmd_erc)

    p = sub.add_parser("flow", help="signal-flow inference report")
    _add_common(p)
    p.add_argument("--hint", action="append", metavar="PATTERN=DIR")
    p.set_defaults(func=_cmd_flow)

    p = sub.add_parser("stats", help="structural fingerprint")
    _add_common(p)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("simulate", help="run a test-vector deck")
    _add_common(p)
    p.add_argument("deck", help="vector deck file (set/cycle/settle/expect)")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("charge", help="charge-sharing hazard check")
    _add_common(p)
    p.add_argument("--threshold", type=float, default=0.5,
                   help="minimum acceptable retention ratio")
    p.add_argument("--json", action="store_true",
                   help="emit the hazard list as JSON")
    p.set_defaults(func=_cmd_charge)

    p = sub.add_parser(
        "serve",
        help="resident analysis daemon (JSON over HTTP)",
        description="Hold parsed designs hot and answer "
                    "analyze/explain/charge/delta queries over HTTP; "
                    "see docs/cli.md for the endpoint reference.",
    )
    p.add_argument("netlist", nargs="*",
                   help=".sim netlist file(s) to pre-load (the stem "
                        "names the design); more can be loaded over HTTP")
    p.add_argument("--tech", help="JSON technology/process file",
                   default=None)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8731,
                   help="TCP port (0 picks a free one; default 8731)")
    p.add_argument("--workers", type=_workers_spec, default=1,
                   metavar="N|auto",
                   help="arc-extraction pool width per engine run, as in "
                        "'analyze' (default: 1)")
    p.add_argument("--max-inflight", type=int, default=8, metavar="N",
                   help="admission limit: analysis requests beyond this "
                        "are refused with 429 + Retry-After (default: 8)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persist the content-addressed result cache "
                        "here (atomic writes; survives restarts)")
    p.add_argument("--journal-dir", default=None, metavar="DIR",
                   help="write-ahead journal + snapshots here; on "
                        "restart, designs found in DIR are recovered "
                        "byte-identically before any preload")
    p.add_argument("--no-journal", action="store_true",
                   help="disable the durability layer even if "
                        "--journal-dir is given (sessions are "
                        "memory-only)")
    p.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                   help="default per-request extraction deadline; "
                        "requests may override with their own "
                        "'deadline_ms'")
    p.add_argument("--on-error",
                   choices=("strict", "quarantine", "best-effort"),
                   default="strict",
                   help="default error policy for loaded designs "
                        "(requests may override per call)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("optimize", help="critical-path resizing loop")
    _add_common(p)
    p.add_argument("--iterations", type=int, default=8)
    p.add_argument("--factor", type=float, default=1.5)
    p.add_argument("--target", type=float, default=None, metavar="NS")
    p.add_argument("-o", "--output", default=None,
                   help="write the resized netlist here (.sim)")
    p.set_defaults(func=_cmd_optimize)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse arguments, dispatch, map errors to exit codes.

    Expected failures (missing files, any :class:`ReproError`) print a
    one-line ``error:`` diagnostic and exit 2.  *Unexpected* exceptions
    are mapped to the same contract -- one line, exit 2 -- instead of
    dumping a traceback on the user; pass ``--debug`` to re-raise with
    the full traceback.  ``SystemExit``/``KeyboardInterrupt`` pass
    through untouched, and a ``BrokenPipeError`` (the report was piped
    into ``head``/``less`` and the reader quit) exits 0 silently.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # The stdout consumer went away mid-report; not an error.  Point
        # stdout at devnull so interpreter shutdown does not raise again
        # on the final flush (no-op when stdout has no real fd, e.g.
        # under test capture).
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError):
            pass
        return 0
    except (FileNotFoundError, ReproError) as exc:
        if args.debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        if args.debug:
            raise
        print(
            f"internal error ({type(exc).__name__}): {exc} "
            "[rerun with --debug for a traceback]",
            file=sys.stderr,
        )
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
