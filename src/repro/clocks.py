"""Two-phase non-overlapping clock schema.

MIPS -- like nearly all nMOS designs of its generation -- used two-phase
non-overlapping clocking: phi1 and phi2 are never high simultaneously, with
a guaranteed *non-overlap gap* between the fall of one and the rise of the
other.  Dynamic latches (clock-gated pass switches) alternate phases, so a
signal launched by phi1 is captured by phi2 and vice versa.

:class:`TwoPhaseClock` names the two phase labels used in a netlist's clock
declarations (:meth:`repro.netlist.Netlist.set_clock`) and records the
non-overlap gap.  The *widths* of the phases are outputs of timing analysis
(the analyzer computes the minimum width each phase needs), so they are not
stored here; :meth:`cycle_time` assembles a full cycle from computed widths.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ClockingError
from .netlist import Netlist
from .tech import NS

__all__ = ["TwoPhaseClock"]


@dataclass(frozen=True)
class TwoPhaseClock:
    """A two-phase non-overlapping clock schema.

    ``phase1``/``phase2`` are the phase labels expected in netlist clock
    declarations; ``nonoverlap`` is the dead time between phases, seconds.
    """

    phase1: str = "phi1"
    phase2: str = "phi2"
    nonoverlap: float = 2.0 * NS

    def __post_init__(self) -> None:
        if self.phase1 == self.phase2:
            raise ClockingError("the two phases must have distinct labels")
        if self.nonoverlap < 0:
            raise ClockingError(
                f"non-overlap gap must be >= 0, got {self.nonoverlap}"
            )

    @property
    def phases(self) -> tuple[str, str]:
        return (self.phase1, self.phase2)

    def other(self, phase: str) -> str:
        """The opposite phase label."""
        if phase == self.phase1:
            return self.phase2
        if phase == self.phase2:
            return self.phase1
        raise ClockingError(f"unknown phase {phase!r}")

    def clock_nodes(self, netlist: Netlist, phase: str) -> frozenset[str]:
        """Clock nodes of the netlist declared with ``phase``."""
        if phase not in self.phases:
            raise ClockingError(f"unknown phase {phase!r}")
        return frozenset(
            node for node, p in netlist.clocks.items() if p == phase
        )

    def check(self, netlist: Netlist) -> None:
        """Validate the netlist's clock declarations against this schema.

        Every declared clock must use one of the two phase labels, and at
        least one clock of each phase must exist (a "two-phase" design with
        one phase missing is a latch-less design misdeclared).
        """
        phases_seen = set(netlist.clocks.values())
        unknown = phases_seen - set(self.phases)
        if unknown:
            raise ClockingError(
                f"netlist {netlist.name!r} declares clock phases "
                f"{sorted(unknown)} outside the schema {self.phases}"
            )
        missing = set(self.phases) - phases_seen
        if missing:
            raise ClockingError(
                f"netlist {netlist.name!r} has no clock for phase(s) "
                f"{sorted(missing)}"
            )

    def cycle_time(self, width1: float, width2: float) -> float:
        """Full cycle: both phase widths plus two non-overlap gaps."""
        if width1 < 0 or width2 < 0:
            raise ClockingError("phase widths must be >= 0")
        return width1 + width2 + 2.0 * self.nonoverlap
