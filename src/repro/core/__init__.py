"""The TV static timing analyzer.

Public surface:

* :class:`TimingAnalyzer`, :class:`AnalysisResult` -- the facade
* :class:`TimingGraph` -- arc-level DAG with feedback cutting
* :func:`propagate`, :class:`Arrival`, :class:`ArrivalMap` -- arrival engine
* :func:`critical_paths`, :func:`trace_path`, :class:`TimingPath`,
  :class:`PathStep` -- path extraction
* :func:`verify_two_phase`, :class:`ClockVerification`,
  :class:`PhaseResult`, :class:`RaceViolation` -- clock verification
* provenance: :func:`explain_arrival`, :class:`Explanation`,
  :class:`ProvenanceRecord` -- the causal chain behind any arrival
* MCMM: :class:`Scenario`, :func:`analyze_mcmm`, :class:`McmmResult`,
  :func:`corner_scenarios` -- multi-corner multi-mode analysis with
  shared extraction
* JSON reports: :data:`REPORT_SCHEMA`, :func:`result_to_json`,
  :func:`validate_report`, :func:`schema_markdown`
* report helpers: :func:`format_ns`, :func:`design_fingerprint`,
  :func:`slack_histogram`, :func:`format_table`
"""

from .analyzer import AnalysisResult, TimingAnalyzer
from .charge import ChargeHazard, charge_sharing_report
from .arrival import DEFAULT_INPUT_SLEW, Arrival, ArrivalMap, propagate
from .provenance import (
    ARC_FAMILIES,
    Explanation,
    ProvenanceRecord,
    explain_arrival,
)
from .constraints import (
    ClockVerification,
    PhaseResult,
    RaceViolation,
    latch_devices,
    storage_nodes_of_phase,
    verify_two_phase,
)
from .graph import TimingGraph
from .mcmm import McmmResult, Scenario, analyze_mcmm, corner_scenarios
from .mindelay import OverlapMargin, cross_phase_margins, propagate_min
from .paths import PathStep, TimingPath, critical_paths, trace_path
from .report import (
    REPORT_SCHEMA,
    REPORT_SCHEMA_VERSION,
    atomic_write_json,
    atomic_write_text,
    design_fingerprint,
    format_ns,
    format_table,
    result_to_json,
    schema_markdown,
    slack_histogram,
    validate_report,
)

__all__ = [
    "TimingAnalyzer",
    "AnalysisResult",
    "TimingGraph",
    "propagate",
    "Arrival",
    "ArrivalMap",
    "DEFAULT_INPUT_SLEW",
    "critical_paths",
    "trace_path",
    "TimingPath",
    "PathStep",
    "verify_two_phase",
    "ClockVerification",
    "OverlapMargin",
    "ChargeHazard",
    "charge_sharing_report",
    "cross_phase_margins",
    "propagate_min",
    "PhaseResult",
    "RaceViolation",
    "latch_devices",
    "storage_nodes_of_phase",
    "format_ns",
    "design_fingerprint",
    "slack_histogram",
    "format_table",
    "ARC_FAMILIES",
    "Explanation",
    "ProvenanceRecord",
    "explain_arrival",
    "Scenario",
    "McmmResult",
    "analyze_mcmm",
    "corner_scenarios",
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "result_to_json",
    "schema_markdown",
    "validate_report",
    "atomic_write_json",
    "atomic_write_text",
]
