"""The TV timing analyzer: the package's primary public interface.

:class:`TimingAnalyzer` glues the substrates together the way the original
tool did:

1. run the electrical rules checks (:mod:`repro.netlist.validate`);
2. infer signal-flow directions (:mod:`repro.flow`);
3. decompose the netlist into stages (:mod:`repro.stages`);
4. extract stage timing arcs (:mod:`repro.delay`);
5. propagate worst-case arrivals and report critical paths
   (:mod:`repro.core.arrival` / :mod:`repro.core.paths`);
6. if the design is clocked, verify the two-phase schema
   (:mod:`repro.core.constraints`).

Typical use::

    tv = TimingAnalyzer(netlist)
    result = tv.analyze()
    print(result.report())

The whole pipeline is value-independent and runs in near-linear time in the
device count -- the property benchmarked in experiment R-T3.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass, field, replace as _dc_replace

from .. import robust
from ..clocks import TwoPhaseClock
from ..delay import (
    FALL,
    RISE,
    SlopeModel,
    StageDelayCalculator,
)
from ..errors import (
    ElectricalRuleError,
    FlowError,
    ReproError,
    StageError,
    TimingError,
)
from ..flow import FlowReport, infer_flow
from ..netlist import Netlist
from ..netlist.validate import Violation, check, validate
from ..stages import StageGraph, decompose
from ..tech import Technology
from ..trace import NULL_TRACE, Trace
from .arrival import DEFAULT_INPUT_SLEW, ArrivalMap, propagate
from .constraints import ClockVerification, verify_two_phase
from .graph import TimingGraph
from .paths import TimingPath, critical_paths
from .provenance import Explanation, explain_arrival

__all__ = ["TimingAnalyzer", "AnalysisResult"]


@dataclass
class AnalysisResult:
    """Everything one analysis run produced.

    ``mode`` is ``"combinational"`` or ``"two-phase"``.  For combinational
    runs, ``arrivals``/``paths``/``max_delay`` describe the input-to-output
    longest paths.  For clocked runs, ``clock_verification`` carries the
    per-phase results and ``min_cycle``; ``paths`` holds the overall worst
    phase's critical paths for convenience.
    """

    mode: str
    netlist_name: str
    device_count: int
    stage_count: int
    flow: FlowReport
    erc_warnings: list[Violation] = field(default_factory=list)
    arrivals: ArrivalMap | None = None
    paths: list[TimingPath] = field(default_factory=list)
    max_delay: float | None = None
    clock_verification: ClockVerification | None = None
    cut_arc_count: int = 0
    analysis_seconds: float = 0.0
    #: Error policy the run executed under (repro.robust.ERROR_POLICIES).
    policy: str = robust.STRICT
    #: Typed records of tolerated failures (quarantines/downgrades/skips).
    diagnostics: list[robust.Diagnostic] = field(default_factory=list)
    #: Analyzed-vs-quarantined accounting; ``coverage.complete`` is True
    #: for an undegraded run.
    coverage: robust.Coverage | None = None

    @property
    def min_cycle(self) -> float | None:
        if self.clock_verification is None:
            return None
        return self.clock_verification.min_cycle

    @property
    def critical_path(self) -> TimingPath | None:
        return self.paths[0] if self.paths else None

    def arrival_of(self, node: str) -> float | None:
        """Worst arrival at a node (combinational mode), seconds."""
        if self.arrivals is None:
            return None
        worst = self.arrivals.worst(node)
        return worst.time if worst is not None else None

    def to_json(self, *, include_wall_time: bool = False) -> dict:
        """Serialize to the versioned JSON report schema.

        See :data:`repro.core.report.REPORT_SCHEMA` (rendered reference:
        ``docs/report-schema.md``).  Deterministic by default; pass
        ``include_wall_time=True`` to add the (nondeterministic)
        ``analysis_seconds`` field.
        """
        from .report import result_to_json

        return result_to_json(self, include_wall_time=include_wall_time)

    def report(self, time_unit: float = 1e-9, unit_name: str = "ns") -> str:
        """The classic TV-style text report."""
        lines = [
            f"=== timing analysis: {self.netlist_name} ===",
            f"mode      : {self.mode}",
            f"devices   : {self.device_count}   stages: {self.stage_count}",
            f"analysis  : {self.analysis_seconds * 1e3:.1f} ms",
        ]
        if self.cut_arc_count:
            lines.append(
                f"feedback  : {self.cut_arc_count} arc(s) cut "
                "(static storage loops)"
            )
        if self.policy != robust.STRICT:
            lines.append(f"policy    : {self.policy}")
        if self.coverage is not None and not self.coverage.complete:
            lines.append(f"coverage  : {self.coverage.summary()}")
        for diag in self.diagnostics:
            lines.append(f"diag      : {diag}")
        lines.append(self.flow.summary())
        if self.erc_warnings:
            lines.append(f"erc       : {len(self.erc_warnings)} warning(s)")
        if self.mode == "combinational":
            if self.max_delay is not None:
                lines.append(
                    f"max delay : {self.max_delay / time_unit:.3f} {unit_name}"
                )
            for path in self.paths:
                lines.append(path.format(time_unit, unit_name))
        else:
            assert self.clock_verification is not None
            lines.append(self.clock_verification.summary(time_unit, unit_name))
            for path in self.paths:
                lines.append(path.format(time_unit, unit_name))
        return "\n".join(lines)


class TimingAnalyzer:
    """Static timing analyzer for transistor-level nMOS netlists.

    Parameters
    ----------
    netlist:
        The circuit.  Flow hints may be pre-applied; ERC must pass (set
        ``run_erc=False`` only for deliberately partial circuits).
    model:
        RC delay metric, one of :data:`repro.delay.DELAY_MODELS`.
    slope:
        Input-ramp correction model (default: the calibrated one).
    clock:
        Two-phase schema.  If None and the netlist declares clocks with
        phases ``phi1``/``phi2``, a default schema is assumed; clocks with
        other labels are treated as ordinary inputs.
    tech:
        Technology override for the *delay model* -- typically a process
        corner from :meth:`repro.tech.Technology.corner`.  The netlist
        keeps its own technology for structure-level checks (ERC ratio
        rules are corner-invariant: corners scale both sides equally),
        so two analyzers differing only in ``tech`` share identical
        structure and differ only in numeric delays.  Default: the
        netlist's technology.
    workers:
        Arc-extraction fan-out width: a positive int, or ``"auto"`` to
        size the pool from the CPUs actually available.  With more than
        one worker every ``all_arcs`` sweep (combinational and
        per-phase) extracts stages on a persistent ``concurrent.futures``
        pool when the measured crossover heuristic predicts a win
        (device count vs. pool warmth), staying serial otherwise;
        results are bit-identical to serial extraction either way.
    executor:
        Pool flavour: ``"process"`` (fork), ``"thread"``, or ``"auto"``.
    trace:
        Optional :class:`repro.trace.Trace` collecting per-phase timers
        (``erc`` / ``flow`` / ``stages`` / ``extract`` / ``propagate`` /
        ``paths`` / ``constraints``) and work counters.  Defaults to the
        shared no-op :data:`repro.trace.NULL_TRACE` -- zero overhead when
        unused.
    on_error:
        Error policy, one of :data:`repro.robust.ERROR_POLICIES`.
        ``"strict"`` (default) fails fast exactly as before.
        ``"quarantine"`` excises the stages implicated by ERC errors or
        extraction failures and analyzes the rest, reporting
        :class:`~repro.robust.Diagnostic` records and
        :class:`~repro.robust.Coverage` on the result.
        ``"best-effort"`` additionally downgrades recoverable flow/timing
        errors (e.g. a netlist with no primary inputs) to diagnostics on
        a degraded result.

    Thread safety
    -------------
    One analyzer may be shared by several threads: :meth:`analyze`,
    :meth:`notify_changed`, and :meth:`explain` serialize on an internal
    reentrant engine lock, so an analysis always sees either all or none
    of a concurrent edit, never a half-invalidated cache.  The lock is
    what the serve daemon's per-design sessions rely on; it is reentrant
    so ``explain()`` may call ``analyze()`` under it.  Distinct analyzers
    never share mutable state (scenario siblings from
    :meth:`analyze_mcmm` share the parent's lock).
    """

    def __init__(
        self,
        netlist: Netlist,
        *,
        model: str = "elmore",
        slope: SlopeModel | None = None,
        clock: TwoPhaseClock | None = None,
        tech: Technology | None = None,
        max_paths: int = 4096,
        run_erc: bool = True,
        workers: int | str = 1,
        executor: str = "auto",
        trace: Trace | None = None,
        on_error: str = robust.STRICT,
    ):
        self.trace = NULL_TRACE if trace is None else trace
        self.netlist = netlist
        #: Serializes analyze/notify_changed/explain across threads (see
        #: "Thread safety" in the class docstring).  Reentrant.
        self._engine_lock = threading.RLock()
        self.on_error = robust.validate_policy(on_error)
        #: Analyzer-level diagnostics (ERC skips, downgraded flow/timing
        #: errors); stage quarantines live on ``calculator.diagnostics``.
        self.diagnostics: list[robust.Diagnostic] = []
        self._erc_errors: list[Violation] = []
        with self.trace.timer("erc"):
            self.erc_warnings: list[Violation] = self._run_erc(run_erc)
        with self.trace.timer("flow"):
            self.flow_report = self._run_flow()
        with self.trace.timer("stages"):
            self.stage_graph: StageGraph = self._run_stages()
        # One execution of the structural phases (ERC, flow inference,
        # stage decomposition) just happened; MCMM runs share it across
        # scenarios, and this counter is how tests and the bench verify
        # they really did.
        self.trace.incr("structural_runs")
        self.calculator = StageDelayCalculator(
            netlist,
            self.stage_graph,
            model=model,
            slope=slope,
            max_paths=max_paths,
            tech=tech,
            workers=workers,
            executor=executor,
            trace=self.trace,
            on_error=self.on_error,
        )
        if self._erc_errors:
            self._quarantine_erc_errors(self._erc_errors)
        self.workers = self.calculator.workers
        self.tech = self.calculator.tech
        self.clock = clock or self._default_clock()
        self.trace.incr("devices", len(netlist.devices))
        self.trace.incr("stages", len(self.stage_graph))

    # ------------------------------------------------------------------
    # Policy-aware pipeline steps.
    # ------------------------------------------------------------------
    def _run_erc(self, run_erc: bool) -> list[Violation]:
        """Electrical rules under the active policy.

        ``strict`` raises on error-severity violations (via
        :func:`repro.netlist.validate.validate`); the degraded policies
        run :func:`repro.netlist.validate.check` instead, keep the errors
        aside for stage quarantine, and return only the warnings.  A
        *crash* inside ERC (not a rule violation) is wrapped in
        :class:`ElectricalRuleError` under strict and recorded as a
        ``skipped`` diagnostic otherwise.
        """
        if not run_erc:
            return []
        try:
            robust.fault_point("erc", self.netlist)
            if self.on_error == robust.STRICT:
                return validate(self.netlist)
            violations = check(self.netlist)
        except ReproError:
            raise
        except Exception as exc:
            detail = f"{type(exc).__name__}: {exc}"
            if self.on_error == robust.STRICT:
                raise ElectricalRuleError(
                    f"electrical rules check crashed: {detail}"
                ) from exc
            self.diagnostics.append(
                robust.Diagnostic(
                    code="erc-crash",
                    severity="warning",
                    subject="erc",
                    stage=None,
                    action="skipped",
                    message=f"electrical rules check crashed ({detail}); "
                    "continuing without ERC",
                )
            )
            return []
        self._erc_errors = [v for v in violations if v.severity == "error"]
        return [v for v in violations if v.severity == "warning"]

    def _run_flow(self) -> FlowReport:
        """Signal-flow inference, downgradeable under ``best-effort``."""
        try:
            return infer_flow(self.netlist)
        except Exception as exc:
            if isinstance(exc, ReproError) and not isinstance(exc, FlowError):
                raise
            detail = f"{type(exc).__name__}: {exc}"
            if self.on_error == robust.BEST_EFFORT:
                self.diagnostics.append(
                    robust.Diagnostic(
                        code="flow-error",
                        severity="error",
                        subject=self.netlist.name,
                        stage=None,
                        action="downgraded",
                        message=f"signal-flow inference failed ({detail}); "
                        "unresolved devices treated as bidirectional",
                    )
                )
                return FlowReport(total_devices=len(self.netlist.devices))
            if isinstance(exc, FlowError):
                raise
            raise FlowError(
                f"signal-flow inference crashed: {detail}"
            ) from exc

    def _run_stages(self) -> StageGraph:
        """Stage decomposition; crashes become typed :class:`StageError`."""
        try:
            return decompose(self.netlist)
        except ReproError:
            raise
        except Exception as exc:
            raise StageError(
                f"stage decomposition crashed: {type(exc).__name__}: {exc}"
            ) from exc

    def _stages_for_subject(self, subject: str) -> set[int]:
        """Stage indices implicated by an ERC violation subject.

        A device maps through its terminals; a node maps to its owning
        stage when it has one, else (gate-only nodes, e.g. a floating
        gate) to every stage it gates -- those stages' timing depends on
        the broken node.
        """
        nodes: list[str] = []
        if subject in self.netlist.devices:
            dev = self.netlist.device(subject)
            nodes = [dev.source, dev.drain, dev.gate]
        elif subject in self.netlist.nodes:
            nodes = [subject]
        indices: set[int] = set()
        for node in nodes:
            stage = self.stage_graph.stage_of(node)
            if stage is not None:
                indices.add(stage.index)
            else:
                for gated in self.stage_graph.stages_gated_by(node):
                    indices.add(gated.index)
        return indices

    def _quarantine_erc_errors(self, errors: list[Violation]) -> None:
        """Excise the stages implicated by ERC errors (degraded policies).

        An error that maps to no stage (e.g. a dangling output that does
        not exist in the netlist) cannot be excised; it is recorded as a
        ``downgraded`` diagnostic instead so it still reaches the report.
        """
        for violation in errors:
            indices = sorted(self._stages_for_subject(violation.subject))
            if indices:
                for index in indices:
                    self.calculator.quarantine_stage(
                        index,
                        code=violation.code,
                        subject=violation.subject,
                        message=violation.message,
                    )
            else:
                self.diagnostics.append(
                    robust.Diagnostic(
                        code=violation.code,
                        severity="error",
                        subject=violation.subject,
                        stage=None,
                        action="downgraded",
                        message=violation.message,
                    )
                )

    def _default_clock(self) -> TwoPhaseClock | None:
        phases = set(self.netlist.clocks.values())
        if phases == {"phi1", "phi2"}:
            return TwoPhaseClock()
        return None

    def notify_changed(self, device_names) -> None:
        """Invalidate cached timing for edited devices (e.g. after a
        resize), so the next :meth:`analyze` recomputes only the affected
        stages.  Topology changes (added/removed devices or nodes) need a
        fresh analyzer; this hook covers parameter edits only.  Atomic
        with respect to concurrent :meth:`analyze` calls."""
        with self._engine_lock:
            self.calculator.invalidate_devices(device_names)

    # ------------------------------------------------------------------
    def analyze(
        self,
        input_arrivals: dict[str, float] | None = None,
        *,
        top_k: int = 5,
        input_slew: float = DEFAULT_INPUT_SLEW,
        deadline: float | None = None,
    ) -> AnalysisResult:
        """Run the full analysis and return an :class:`AnalysisResult`.

        ``input_arrivals`` maps primary-input names to their availability
        times (seconds); unlisted inputs default to time 0.

        ``deadline`` is an optional wall-clock budget in seconds for this
        call's arc extraction.  When it runs out, behaviour follows the
        error policy: ``strict`` raises
        :class:`~repro.errors.DeadlineError`; ``quarantine`` /
        ``best-effort`` skip the not-yet-extracted stages and return a
        degraded result whose ``diagnostics`` carry a
        ``deadline-exceeded`` record and whose ``coverage`` counts the
        skips.  Deadline skips never persist: the next call starts with
        full coverage again (cached stages are always served, so a warm
        design loses nothing).
        """
        with self._engine_lock:
            started = _time.perf_counter()
            self.calculator.set_deadline(deadline)
            try:
                if self.clock is not None and self.netlist.clocks:
                    result = self._analyze_two_phase(input_arrivals, top_k)
                else:
                    result = self._analyze_combinational(
                        input_arrivals, top_k, input_slew
                    )
                result.analysis_seconds = _time.perf_counter() - started
                result.policy = self.on_error
                result.diagnostics = (
                    list(self.diagnostics)
                    + list(self.calculator.diagnostics)
                    + list(self.calculator.deadline_diagnostics)
                )
                result.coverage = self._coverage()
                return result
            finally:
                self.calculator.deadline = None

    def analyze_mcmm(
        self,
        scenarios,
        input_arrivals: dict[str, float] | None = None,
        *,
        top_k: int = 5,
        input_slew: float = DEFAULT_INPUT_SLEW,
        parametric: bool | None = None,
    ):
        """Analyze the design under several (corner × clock) scenarios.

        The structural phases this analyzer already ran -- ERC, flow
        inference, stage decomposition -- are shared; each scenario only
        re-evaluates the numeric delay terms at its corner (and clock
        schema, if it overrides one).  Every scenario's result is
        byte-identical to a standalone
        ``TimingAnalyzer(netlist, tech=scenario.tech,
        clock=scenario.clock)`` analysis.

        ``parametric`` selects the symbolic sweep path: the delay terms
        are extracted once as analytic recipes
        (:mod:`repro.delay.parametric`) and each scenario merely
        *evaluates* them at its corner instead of re-walking the stage
        trees.  The default (``None``) turns it on automatically when it
        is exact -- Elmore model under the strict error policy.

        Returns a :class:`repro.core.mcmm.McmmResult`; see
        :func:`repro.core.mcmm.analyze_mcmm` for details.
        """
        from .mcmm import analyze_mcmm

        return analyze_mcmm(
            self,
            scenarios,
            input_arrivals,
            top_k=top_k,
            input_slew=input_slew,
            parametric=parametric,
        )

    def _scenario_analyzer(self, scenario, term_source=None) -> "TimingAnalyzer":
        """A sibling analyzer for one MCMM scenario.

        Shares every structural product (netlist, ERC results, flow
        report, stage graph) with this analyzer and retargets only the
        delay calculator -- so building one costs no ERC/flow/stage
        work, and its ``analyze()`` runs the exact same code a
        standalone analyzer at that corner would.

        ``term_source`` (a parametric
        :class:`~repro.delay.stage_delay.StageDelayCalculator`) makes the
        sibling evaluate the source's analytic terms at its corner
        instead of re-extracting; see :mod:`repro.delay.parametric`.
        """
        clone = object.__new__(TimingAnalyzer)
        clone.trace = self.trace
        clone.netlist = self.netlist
        clone._engine_lock = self._engine_lock
        clone.on_error = self.on_error
        clone.diagnostics = list(self.diagnostics)
        clone._erc_errors = self._erc_errors
        clone.erc_warnings = self.erc_warnings
        clone.flow_report = self.flow_report
        clone.stage_graph = self.stage_graph
        clone.calculator = self.calculator.retarget(
            scenario.tech if scenario.tech is not None else self.tech
        )
        clone.calculator._term_source = term_source
        clone.workers = clone.calculator.workers
        clone.tech = clone.calculator.tech
        clone.clock = (
            scenario.clock if scenario.clock is not None else self.clock
        )
        return clone

    def _coverage(self) -> robust.Coverage:
        """Analyzed-vs-quarantined accounting over the stage graph.

        Deadline-skipped stages count as unanalyzed alongside the
        quarantined ones (they were not, after all, analyzed) -- but only
        for the run that skipped them.
        """
        quarantined = (
            self.calculator.quarantined | self.calculator.deadline_skipped
        )
        q_devices: set[str] = set()
        q_nodes: set[str] = set()
        for index in quarantined:
            stage = self.stage_graph[index]
            q_devices.update(stage.device_names)
            q_nodes.update(stage.nodes)
        return robust.Coverage(
            stages_total=len(self.stage_graph),
            stages_analyzed=len(self.stage_graph) - len(quarantined),
            devices_total=len(self.netlist.devices),
            devices_analyzed=len(self.netlist.devices) - len(q_devices),
            nodes_total=len(self.netlist.nodes),
            nodes_analyzed=len(self.netlist.nodes) - len(q_nodes),
        )

    # ------------------------------------------------------------------
    def explain(
        self,
        node: str,
        transition: str | None = None,
        *,
        result: AnalysisResult | None = None,
        sensitivity: bool = False,
    ) -> Explanation:
        """Build the causal chain behind a node's worst arrival time.

        Returns an :class:`~repro.core.provenance.Explanation` whose
        records' delay terms sum to the reported arrival *exactly* (the
        chain is verified hop-by-hop while it is built).  ``transition``
        selects ``"rise"`` or ``"fall"``; the default is the node's worst
        (latest) transition.

        Pass the ``result`` of a previous :meth:`analyze` to avoid
        re-running the analysis.  In two-phase mode the chain is taken
        from the phase in which the node arrives latest, and the
        explanation's ``phase`` attribute names it.

        ``sensitivity=True`` additionally attaches per-parameter arrival
        slopes (the explanation's ``sensitivities``): each technology
        parameter the delay model reads
        (:data:`repro.delay.parametric.PARAMETERS`) is perturbed a few
        percent either way and the endpoint's arrival re-evaluated via a
        parametric MCMM sweep -- one symbolic extraction, two cheap
        evaluations per parameter.  The slopes describe the nominal
        worst path's neighbourhood; at a distant parameter point a
        different path may dominate.

        Raises :class:`TimingError` if the node has no recorded arrival.
        """
        with self._engine_lock:
            explanation = self._explain_locked(node, transition, result)
            if sensitivity:
                explanation = _dc_replace(
                    explanation,
                    sensitivities=self._sensitivities(node, explanation),
                )
            return explanation

    def _sensitivities(self, node: str, explanation: Explanation):
        """Central-difference arrival slopes for every delay parameter.

        One parametric MCMM sweep evaluates the whole plus/minus scenario
        family; the arrival lookup pins the explanation's transition so
        the slopes describe the explained arrival, not whichever
        transition happens to be worst at the perturbed point.
        """
        from ..delay.parametric import (
            PARAMETERS,
            SENSITIVITY_REL_STEP,
            perturbed,
        )
        from .mcmm import Scenario
        from .provenance import SensitivityRecord

        transition = explanation.transition
        active = [
            p for p in PARAMETERS if getattr(self.tech, p) != 0.0
        ]
        scenarios = []
        for param in active:
            for sign, step in (("-", -SENSITIVITY_REL_STEP),
                               ("+", SENSITIVITY_REL_STEP)):
                scenarios.append(
                    Scenario(
                        name=f"{param}{sign}",
                        tech=perturbed(self.tech, param, step),
                    )
                )
        if not scenarios:
            return ()
        mcmm = self.analyze_mcmm(scenarios)
        records = []
        for param in active:
            minus = self._arrival_for(
                mcmm.results[f"{param}-"], node, transition
            )
            plus = self._arrival_for(
                mcmm.results[f"{param}+"], node, transition
            )
            if minus is None or plus is None:
                continue
            records.append(
                SensitivityRecord(
                    parameter=param,
                    nominal=getattr(self.tech, param),
                    sensitivity=(plus - minus) / (2.0 * SENSITIVITY_REL_STEP),
                )
            )
        records.sort(key=lambda rec: (-abs(rec.sensitivity), rec.parameter))
        return tuple(records)

    @staticmethod
    def _arrival_for(
        result: AnalysisResult, node: str, transition: str
    ) -> float | None:
        """The arrival of ``(node, transition)`` in one result -- the
        same worst-over-phases view :meth:`explain` uses."""
        if result.arrivals is not None:
            arrival = result.arrivals.get(node, transition)
            return None if arrival is None else arrival.time
        verification = result.clock_verification
        if verification is None:  # pragma: no cover - defensive
            return None
        best = None
        for phase_result in verification.phases.values():
            arrival = phase_result.arrivals.get(node, transition)
            if arrival is not None and (best is None or arrival.time > best):
                best = arrival.time
        return best

    def _explain_locked(
        self,
        node: str,
        transition: str | None,
        result: AnalysisResult | None,
    ) -> Explanation:
        if result is None:
            result = self.analyze()
        slope = self.calculator.slope
        if result.arrivals is not None:
            missing = (
                result.arrivals.worst(node) is None
                if transition is None
                else result.arrivals.get(node, transition) is None
            )
            if missing:
                self._raise_if_quarantined(node)
            return explain_arrival(result.arrivals, slope, node, transition)

        assert result.clock_verification is not None
        best_phase: str | None = None
        best_time = None
        for phase, phase_result in result.clock_verification.phases.items():
            arrival = (
                phase_result.arrivals.worst(node)
                if transition is None
                else phase_result.arrivals.get(node, transition)
            )
            if arrival is None:
                continue
            if best_time is None or arrival.time > best_time:
                best_phase = phase
                best_time = arrival.time
        if best_phase is None:
            self._raise_if_quarantined(node)
            raise TimingError(
                f"no arrival recorded at {node!r} in any clock phase"
            )
        return explain_arrival(
            result.clock_verification.phases[best_phase].arrivals,
            slope,
            node,
            transition,
            phase=best_phase,
        )

    def _raise_if_quarantined(self, node: str) -> None:
        """Raise a :class:`TimingError` naming the quarantine cause.

        Called when a node has no recorded arrival: if the node belongs
        to a quarantined stage, the error says *why* the stage was
        excised instead of the generic "no arrival" message.
        """
        stage = self.stage_graph.stage_of(node)
        if stage is None or stage.index not in self.calculator.quarantined:
            return
        causes = [
            d.message or d.code
            for d in self.calculator.diagnostics
            if d.stage == stage.index
        ]
        why = "; ".join(causes) if causes else "quarantined"
        raise TimingError(
            f"no arrival at {node!r}: stage {stage.index} was quarantined "
            f"under the {self.on_error!r} policy ({why})"
        )

    # ------------------------------------------------------------------
    def _base_result(self, mode: str) -> AnalysisResult:
        return AnalysisResult(
            mode=mode,
            netlist_name=self.netlist.name,
            device_count=len(self.netlist.devices),
            stage_count=len(self.stage_graph),
            flow=self.flow_report,
            erc_warnings=self.erc_warnings,
        )

    def _analyze_combinational(
        self,
        input_arrivals: dict[str, float] | None,
        top_k: int,
        input_slew: float,
    ) -> AnalysisResult:
        input_arrivals = input_arrivals or {}
        sources: dict[tuple[str, str], float] = {}
        drive_points = set(self.netlist.inputs) | set(self.netlist.clocks)
        if not drive_points:
            if self.on_error != robust.BEST_EFFORT:
                raise TimingError(
                    f"netlist {self.netlist.name!r} declares no primary "
                    "inputs; combinational analysis has no sources"
                )
            if not any(
                d.code == "no-primary-inputs" for d in self.diagnostics
            ):
                self.diagnostics.append(
                    robust.Diagnostic(
                        code="no-primary-inputs",
                        severity="error",
                        subject=self.netlist.name,
                        stage=None,
                        action="downgraded",
                        message="netlist declares no primary inputs; "
                        "arrivals and paths are empty",
                    )
                )
        for name in drive_points:
            t = input_arrivals.get(name, 0.0)
            sources[(name, RISE)] = t
            sources[(name, FALL)] = t

        with self.trace.timer("extract"):
            arcs = self.calculator.all_arcs(active_clocks=None)
            graph = TimingGraph.build(arcs)
        with self.trace.timer("propagate"):
            if sources:
                arrivals = propagate(
                    graph,
                    sources,
                    self.calculator.slope,
                    source_slew=input_slew,
                )
            else:
                # Only reachable under best-effort (no drive points were
                # downgraded to a diagnostic above): nothing to propagate.
                arrivals = ArrivalMap()

        endpoints = set(self.netlist.outputs) or None
        with self.trace.timer("paths"):
            paths = critical_paths(arrivals, endpoints, k=top_k)
        worst = arrivals.max_arrival(endpoints)
        self.trace.incr("arcs", len(arcs))
        self.trace.incr("arrivals", len(arrivals))
        self.trace.incr("cut_arcs", len(graph.cut_arcs))

        result = self._base_result("combinational")
        result.arrivals = arrivals
        result.paths = paths
        result.max_delay = worst.time if worst is not None else 0.0
        result.cut_arc_count = len(graph.cut_arcs)
        return result

    def _analyze_two_phase(
        self,
        input_arrivals: dict[str, float] | None,
        top_k: int,
    ) -> AnalysisResult:
        assert self.clock is not None
        with self.trace.timer("constraints"):
            verification = verify_two_phase(
                self.netlist,
                self.calculator,
                self.clock,
                input_arrivals=input_arrivals,
                top_k=top_k,
            )
        for phase_result in verification.phases.values():
            self.trace.incr("arrivals", len(phase_result.arrivals))
            self.trace.incr("cut_arcs", phase_result.cut_arc_count)
        self.trace.incr("races", len(verification.races))
        result = self._base_result("two-phase")
        result.clock_verification = verification
        worst_phase = max(
            verification.phases.values(), key=lambda p: p.width
        )
        result.paths = (
            [worst_phase.critical] if worst_phase.critical is not None else []
        )
        result.max_delay = worst_phase.width
        result.cut_arc_count = sum(
            p.cut_arc_count for p in verification.phases.values()
        )
        return result
