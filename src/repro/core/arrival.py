"""Worst-case arrival-time propagation.

The static analysis itself: given a timing graph and a set of *sources*
(externally driven transitions with known times), compute for every node and
transition the latest possible arrival, the accompanying slew, and the
predecessor pointer for path reconstruction.  One linear sweep in
topological order -- this is what makes TV's whole-chip analysis take
seconds where simulation takes hours (experiment R-T3).

Transitions are propagated separately for rise and fall:

* an inverting arc maps input-rise -> output-fall (using the arc's fall
  timing) and input-fall -> output-rise;
* a non-inverting arc maps rise -> rise and fall -> fall.

Slope handling: each arc's intrinsic delay is corrected by the configured
:class:`~repro.delay.SlopeModel` using the input slew at the trigger, and
the output slew is derived from the arc's time constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..delay import FALL, RISE, SlopeModel, StageArc
from ..errors import TimingError
from .graph import TimingGraph

__all__ = ["Arrival", "ArrivalMap", "propagate", "DEFAULT_INPUT_SLEW"]

#: Assumed transition time of externally driven sources, seconds.
DEFAULT_INPUT_SLEW = 2e-9


@dataclass(frozen=True)
class Arrival:
    """Worst-case arrival of one transition at one node.

    ``pred`` is the (node, transition) whose change caused this one (None
    for sources); ``arc`` is the stage arc traversed (None for sources).
    """

    node: str
    transition: str
    time: float
    slew: float
    pred: tuple[str, str] | None = None
    arc: StageArc | None = None


class ArrivalMap:
    """Arrivals keyed by (node, transition)."""

    def __init__(self) -> None:
        self._map: dict[tuple[str, str], Arrival] = {}

    def get(self, node: str, transition: str) -> Arrival | None:
        """The recorded arrival, or None if the transition never occurs."""
        return self._map.get((node, transition))

    def set(self, arrival: Arrival) -> None:
        """Record (or overwrite) one arrival."""
        self._map[(arrival.node, arrival.transition)] = arrival

    def worst(self, node: str) -> Arrival | None:
        """The later of the node's rise/fall arrivals."""
        rise = self.get(node, RISE)
        fall = self.get(node, FALL)
        if rise is None:
            return fall
        if fall is None:
            return rise
        return rise if rise.time >= fall.time else fall

    def items(self) -> list[Arrival]:
        """Every recorded arrival (both transitions, all nodes)."""
        return list(self._map.values())

    def nodes(self) -> set[str]:
        """Nodes with at least one recorded arrival."""
        return {node for node, _t in self._map}

    def max_arrival(self, restrict_to: set[str] | None = None) -> Arrival | None:
        """The globally latest arrival (optionally among given nodes)."""
        best: Arrival | None = None
        for arrival in self._map.values():
            if restrict_to is not None and arrival.node not in restrict_to:
                continue
            if best is None or arrival.time > best.time:
                best = arrival
        return best

    def __len__(self) -> int:
        return len(self._map)


def propagate(
    graph: TimingGraph,
    sources: dict[tuple[str, str], float],
    slope: SlopeModel,
    *,
    source_slew: float = DEFAULT_INPUT_SLEW,
) -> ArrivalMap:
    """Propagate worst-case arrivals through the timing graph.

    ``sources`` maps (node, transition) to its externally known time; both
    transitions of a node may be seeded independently (a clock's rise and
    fall differ by the phase width, for example).
    """
    if not sources:
        raise TimingError("arrival propagation needs at least one source")
    arrivals = ArrivalMap()
    for (node, transition), time in sources.items():
        if transition not in (RISE, FALL):
            raise TimingError(f"unknown transition {transition!r}")
        arrivals.set(
            Arrival(node=node, transition=transition, time=time, slew=source_slew)
        )

    # The sweep is the analysis inner loop (every arc, both transitions),
    # so the map and the slope coefficients are accessed directly.  The
    # coefficient fast path applies only to a plain SlopeModel -- a
    # subclass with overridden methods keeps its behaviour.
    amap = arrivals._map
    arcs_from = graph.arcs_from
    plain_slope = type(slope) is SlopeModel
    for node in graph.order:
        arcs = arcs_from.get(node)  # node == arc.trigger
        if not arcs:
            continue
        for transition in (RISE, FALL):
            incoming = amap.get((node, transition))
            if incoming is None:
                continue
            in_time = incoming.time
            in_slew = incoming.slew
            for arc in arcs:
                if arc.inverting:
                    out_transition = FALL if transition == RISE else RISE
                    tracking = False
                else:
                    out_transition = transition
                    tracking = arc.via == "channel"
                timing = arc.rise if out_transition == RISE else arc.fall
                if timing is None:
                    continue
                if plain_slope:
                    alpha = slope.alpha_tracking if tracking else slope.alpha
                    time = in_time + (timing.delay + alpha * in_slew)
                else:
                    time = in_time + slope.delay(
                        timing.delay, in_slew, tracking=tracking
                    )
                existing = amap.get((arc.output, out_transition))
                if existing is not None and existing.time >= time:
                    continue
                if plain_slope:
                    out_slew = slope.gamma * timing.tau + slope.beta * in_slew
                else:
                    out_slew = slope.output_slew(timing.tau, in_slew)
                amap[(arc.output, out_transition)] = Arrival(
                    node=arc.output,
                    transition=out_transition,
                    time=time,
                    slew=out_slew,
                    pred=(node, transition),
                    arc=arc,
                )
    return arrivals


def _invert(transition: str) -> str:
    return FALL if transition == RISE else RISE
