"""Static charge-sharing analysis for dynamic nodes.

A precharged or dynamically stored node holds its value as charge.  When a
pass transistor closes, that charge redistributes over every capacitance
the switch connects; if the connected (uncharged) capacitance is
comparable to the storage node's own, the stored level sags below the gate
threshold and the design fails on silicon while passing logic simulation.
TV-era flows ran exactly this value-independent check over every dynamic
node.

For each dynamic node ``n`` (precharged or storage class), we find the
worst single conduction scenario: the largest total capacitance reachable
from ``n`` through potentially conducting pass switches (respecting
one-hot assertions -- a mux cannot close two legs at once).  The retention
ratio is::

    ratio = C(n) / (C(n) + C(reachable))

A ratio below ``threshold`` (default 0.5: the level can sag past midrail)
is reported.  Precharged nodes whose *sharing partners are precharged
too* (a Manchester chain: every chain node is precharged high) share
charge at the same potential and are exempt -- exactly the reasoning the
methodology texts gave.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist import DeviceKind, Netlist
from ..stages import NodeClass, StageGraph, classify_nodes, decompose

__all__ = ["ChargeHazard", "charge_sharing_report"]


@dataclass(frozen=True)
class ChargeHazard:
    """One dynamic node at risk of charge sharing."""

    node: str
    node_class: str
    c_store: float
    c_shared: float
    via: tuple[str, ...]  # the switches whose closing causes the hazard

    @property
    def ratio(self) -> float:
        return self.c_store / (self.c_store + self.c_shared)

    def __str__(self) -> str:
        return (
            f"charge sharing at {self.node} ({self.node_class}): "
            f"{self.c_store * 1e15:.1f} fF holds against "
            f"{self.c_shared * 1e15:.1f} fF through "
            f"{', '.join(self.via)} (retention {self.ratio:.2f})"
        )


def charge_sharing_report(
    netlist: Netlist,
    graph: StageGraph | None = None,
    *,
    threshold: float = 0.5,
) -> list[ChargeHazard]:
    """Check every dynamic node; return the hazards below ``threshold``."""
    graph = graph or decompose(netlist)
    classes = classify_nodes(netlist)
    dynamic = {
        name
        for name, cls in classes.items()
        if cls in (NodeClass.PRECHARGED, NodeClass.STORAGE)
    }
    hazards: list[ChargeHazard] = []
    for node in sorted(dynamic):
        hazard = _check_node(netlist, classes, dynamic, node, threshold)
        if hazard is not None:
            hazards.append(hazard)
    return hazards


def _check_node(
    netlist: Netlist,
    classes: dict,
    dynamic: set[str],
    node: str,
    threshold: float,
) -> ChargeHazard | None:
    c_store = netlist.node_capacitance(node)

    # Worst single scenario: walk out through pass switches, accumulating
    # the capacitance of nodes that are NOT themselves dynamic-high
    # partners and NOT statically driven (a driven node restores, it does
    # not steal charge).  One-hot groups limit each group to one switch.
    best_shared = 0.0
    best_via: tuple[str, ...] = ()

    frontier = [(node, (), frozenset())]
    seen_paths = 0
    while frontier and seen_paths < 2048:
        current, via, groups = frontier.pop()
        seen_paths += 1
        for dev in netlist.channel_devices(current):
            if dev.kind is not DeviceKind.ENH:
                continue
            other = dev.other_channel(current)
            if netlist.is_rail(other):
                continue  # a rail path is drive, not sharing
            if dev.name in via:
                continue
            gate_class = classes.get(dev.gate)
            if gate_class is NodeClass.RAIL:
                continue
            group = netlist.exclusive_group_of(dev.gate)
            if group is not None and group in groups:
                continue
            if _is_driven(netlist, classes, other):
                continue  # restoring node: no hazard through here
            new_via = via + (dev.name,)
            new_groups = groups | ({group} if group is not None else set())
            shared_here = (
                0.0 if other in dynamic else netlist.node_capacitance(other)
            )
            total = sum(
                0.0 if n in dynamic else netlist.node_capacitance(n)
                for n in _nodes_of(new_via, netlist, node)
            )
            if total > best_shared:
                best_shared = total
                best_via = new_via
            if len(new_via) < 4:  # sharing beyond a few hops is negligible
                frontier.append((other, new_via, new_groups))

    if best_shared == 0.0:
        return None
    ratio = c_store / (c_store + best_shared)
    if ratio >= threshold:
        return None
    return ChargeHazard(
        node=node,
        node_class=str(classes[node]),
        c_store=c_store,
        c_shared=best_shared,
        via=best_via,
    )


def _nodes_of(via: tuple[str, ...], netlist: Netlist, origin: str) -> set[str]:
    """Nodes (excluding the origin) spanned by a switch path."""
    nodes: set[str] = set()
    for name in via:
        dev = netlist.device(name)
        nodes.update(dev.channel_nodes)
    nodes.discard(origin)
    nodes.discard(netlist.vdd)
    nodes.discard(netlist.gnd)
    return nodes


def _is_driven(netlist: Netlist, classes: dict, node: str) -> bool:
    cls = classes.get(node)
    return cls in (
        NodeClass.GATE_OUTPUT,
        NodeClass.INPUT,
        NodeClass.CLOCK,
        NodeClass.RAIL,
    )
