"""Two-phase clock verification.

For a two-phase non-overlapping design, TV answered three questions the
designers could not get from simulation without exhaustive vectors:

1. **How wide must each phase be?**  Everything that moves during phi-k --
   launched by the phase's clock edge or flowing out of the previous
   phase's latches -- must settle before phi-k falls.  The minimum width of
   the phase is the latest arrival at any node captured during the phase.
2. **What is the minimum cycle time?**  Both minimum widths plus the two
   non-overlap gaps.
3. **Are there races?**  A signal must never cross two latches of the *same*
   phase in one traversal (it would race through both while the phase is
   high).  We check this structurally: reachability from a phase's storage
   nodes back into another latch of the same phase, both across stages
   (through the timing graph) and within one stage (through the conduction
   network).

Per-phase analysis re-extracts timing arcs with only that phase's clocks
active, so conduction through the other phase's latches is cut -- this is
what makes a two-phase pipeline acyclic phase by phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clocks import TwoPhaseClock
from ..delay import FALL, RISE, StageDelayCalculator
from ..errors import ClockingError
from ..netlist import DeviceKind, Netlist, Transistor
from .arrival import ArrivalMap, propagate
from .graph import TimingGraph
from .paths import TimingPath, critical_paths

__all__ = [
    "PhaseResult",
    "RaceViolation",
    "ClockVerification",
    "latch_devices",
    "storage_nodes_of_phase",
    "verify_two_phase",
]


@dataclass(frozen=True)
class RaceViolation:
    """Signal can cross two same-phase latches in one phase."""

    phase: str
    from_node: str
    to_node: str
    kind: str  # "cross-stage" or "same-stage"

    def __str__(self) -> str:
        return (
            f"race ({self.kind}): {self.from_node} -> {self.to_node} "
            f"through two {self.phase} latches"
        )


@dataclass
class PhaseResult:
    """Analysis of one clock phase."""

    phase: str
    arrivals: ArrivalMap
    width: float
    storage_written: frozenset[str]
    critical: TimingPath | None
    cut_arc_count: int = 0

    def violations_at_width(self, width: float) -> list[TimingPath]:
        """Capture-set arrivals that do not fit in a given phase width."""
        late = []
        for path in critical_paths(
            self.arrivals, set(self.storage_written) or None, k=10**9
        ):
            if path.arrival > width:
                late.append(path)
        return late


@dataclass
class ClockVerification:
    """Complete two-phase verification outcome.

    ``overlap_margins`` (one per phase direction) give the maximum clock
    overlap the design tolerates before data races through two latches --
    see :mod:`repro.core.mindelay`.
    """

    clock: TwoPhaseClock
    phases: dict[str, PhaseResult] = field(default_factory=dict)
    races: list[RaceViolation] = field(default_factory=list)
    overlap_margins: list = field(default_factory=list)

    @property
    def min_cycle(self) -> float:
        widths = [self.phases[p].width for p in self.clock.phases]
        return self.clock.cycle_time(*widths)

    def summary(self, time_unit: float = 1e-9, unit_name: str = "ns") -> str:
        """Human-readable verification report (widths, cycle, races)."""
        lines = ["two-phase clock verification"]
        for phase in self.clock.phases:
            result = self.phases[phase]
            lines.append(
                f"  min width {phase}: "
                f"{result.width / time_unit:.3f} {unit_name} "
                f"({len(result.storage_written)} capture nodes)"
            )
        lines.append(
            f"  non-overlap gap: "
            f"{self.clock.nonoverlap / time_unit:.3f} {unit_name} (x2)"
        )
        lines.append(
            f"  min cycle time : {self.min_cycle / time_unit:.3f} {unit_name}"
        )
        if self.races:
            lines.append(f"  RACES: {len(self.races)}")
            lines.extend(f"    {race}" for race in self.races)
        else:
            lines.append("  races: none")
        for margin in self.overlap_margins:
            lines.append(f"  {margin.describe()}")
        return "\n".join(lines)


def qualified_low_nodes(
    netlist: Netlist, clock: TwoPhaseClock, phase: str
) -> frozenset[str]:
    """Control nodes provably low while ``phase`` is high.

    TV's *clock qualification* analysis: with the phase's clocks at 1, the
    opposite phase at 0, and every data input unknown, any node that
    settles to a definite 0 is a qualified clock that cannot enable its
    switches during this phase (a read word line ``dec AND phi2`` during
    phi1, for example).  Computed with the three-valued switch-level
    simulator, so only *provable* constants qualify.  Falls back to the
    empty set if the circuit does not settle (oscillating feedback).
    """
    from ..sim.switchsim import SwitchSim  # local import: avoid cycle

    sim = SwitchSim(netlist)
    assignments: dict[str, object] = {}
    for node, node_phase in netlist.clocks.items():
        assignments[node] = 1 if node_phase == phase else 0
    try:
        sim.set_inputs(assignments)
        sim.settle()
    except Exception:
        return frozenset()
    low = frozenset(
        name
        for name in netlist.nodes
        if sim.value(name) == 0
        and netlist.gate_loads(name)
        and not netlist.is_rail(name)
        and name not in netlist.clocks
    )
    return low


def latch_devices(netlist: Netlist, phase_clocks: frozenset[str]) -> list[Transistor]:
    """Clock-gated pass switches gated by the given clocks."""
    result = []
    for dev in netlist.devices.values():
        if dev.kind is not DeviceKind.ENH:
            continue
        if dev.gate not in phase_clocks:
            continue
        if netlist.vdd in dev.channel_nodes:
            continue  # precharge device, not a latch
        if netlist.gnd in dev.channel_nodes:
            continue  # qualified pull-down, not a latch
        result.append(dev)
    return result


def _receiving_terminal(netlist: Netlist, dev: Transistor) -> str:
    """The channel terminal a latch writes (data flows into it)."""
    if dev.flows_into(dev.source) and not dev.flows_into(dev.drain):
        return dev.source
    if dev.flows_into(dev.drain) and not dev.flows_into(dev.source):
        return dev.drain
    # Unresolved/bidirectional: the non-boundary, non-driven side.
    for terminal in dev.channel_nodes:
        if not netlist.is_boundary(terminal) and not netlist.has_pullup(terminal):
            return terminal
    return dev.drain


def storage_nodes_of_phase(
    netlist: Netlist, clock: TwoPhaseClock, phase: str
) -> frozenset[str]:
    """Nodes written by the latches of ``phase``."""
    clocks = clock.clock_nodes(netlist, phase)
    return frozenset(
        _receiving_terminal(netlist, dev)
        for dev in latch_devices(netlist, clocks)
    )


def verify_two_phase(
    netlist: Netlist,
    calculator: StageDelayCalculator,
    clock: TwoPhaseClock,
    *,
    input_arrivals: dict[str, float] | None = None,
    top_k: int = 5,
) -> ClockVerification:
    """Run the full two-phase verification (see module docstring)."""
    clock.check(netlist)
    input_arrivals = input_arrivals or {}
    for name in input_arrivals:
        if name not in netlist.inputs:
            raise ClockingError(
                f"arrival given for {name!r}, which is not a primary input"
            )

    verification = ClockVerification(clock=clock)
    storage = {
        phase: storage_nodes_of_phase(netlist, clock, phase)
        for phase in clock.phases
    }

    for phase in clock.phases:
        active = clock.clock_nodes(netlist, phase)
        open_gates = qualified_low_nodes(netlist, clock, phase)
        arcs = calculator.all_arcs(active_clocks=active, open_gates=open_gates)
        graph = TimingGraph.build(arcs)

        sources: dict[tuple[str, str], float] = {}
        for clk in active:
            sources[(clk, RISE)] = 0.0
        for node in storage[clock.other(phase)]:
            sources.setdefault((node, RISE), 0.0)
            sources.setdefault((node, FALL), 0.0)
        for name in netlist.inputs:
            time = input_arrivals.get(name, 0.0)
            sources.setdefault((name, RISE), time)
            sources.setdefault((name, FALL), time)

        arrivals = propagate(graph, sources, calculator.slope)

        # Everything launched during the phase must settle before the phase
        # ends -- including nodes written through *qualified* switches
        # (word-line-gated cells), which are not raw clock latches.  The
        # minimum width is therefore the latest arrival anywhere.
        worst = arrivals.max_arrival(None)
        width = worst.time if worst is not None else 0.0
        top = critical_paths(arrivals, None, k=top_k)

        verification.phases[phase] = PhaseResult(
            phase=phase,
            arrivals=arrivals,
            width=width,
            storage_written=storage[phase],
            critical=top[0] if top else None,
            cut_arc_count=len(graph.cut_arcs),
        )
        verification.races.extend(
            _find_races(netlist, calculator, graph, clock, phase, storage[phase])
        )

    from .mindelay import cross_phase_margins  # local import: avoid cycle

    verification.overlap_margins = cross_phase_margins(
        netlist, calculator, clock
    )
    return verification


def _find_races(
    netlist: Netlist,
    calculator: StageDelayCalculator,
    graph: TimingGraph,
    clock: TwoPhaseClock,
    phase: str,
    phase_storage: frozenset[str],
) -> list[RaceViolation]:
    races: list[RaceViolation] = []
    clocks = clock.clock_nodes(netlist, phase)
    latches = latch_devices(netlist, clocks)
    data_sides = {}
    for dev in latches:
        receiving = _receiving_terminal(netlist, dev)
        data_sides[dev.other_channel(receiving)] = receiving

    # Cross-stage: from a freshly written storage node, can the timing
    # graph (with this phase active) reach the data side of another latch
    # of the same phase?
    for start in phase_storage:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for arc in graph.arcs_from.get(node, ()):
                target = arc.output
                if target in seen:
                    continue
                seen.add(target)
                if target in phase_storage and target != start:
                    races.append(
                        RaceViolation(phase, start, target, "cross-stage")
                    )
                frontier.append(target)

    # Same-stage: two latches of the phase on one conduction path.  The
    # receiving node of one latch reaching the data side of another through
    # the phase-active pass network means both are transparent together.
    for stage in calculator.graph:
        member_latches = [
            d for d in latches if d.name in set(stage.device_names)
        ]
        if len(member_latches) < 2:
            continue
        edges = calculator._pass_edges(
            stage, calculator.graph.devices_of(stage), RISE, frozenset(clocks)
        )
        adjacency: dict[str, set[str]] = {}
        for a, b, _r, _n in edges:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        for dev in member_latches:
            start = _receiving_terminal(netlist, dev)
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in adjacency.get(node, ()):
                    if neighbor in seen:
                        continue
                    seen.add(neighbor)
                    frontier.append(neighbor)
            for other in member_latches:
                if other.name == dev.name:
                    continue
                if _receiving_terminal(netlist, other) in seen - {start}:
                    races.append(
                        RaceViolation(
                            phase,
                            start,
                            _receiving_terminal(netlist, other),
                            "same-stage",
                        )
                    )

    # Deduplicate.
    unique: dict[tuple[str, str, str], RaceViolation] = {}
    for race in races:
        unique.setdefault((race.phase, race.from_node, race.to_node), race)
    return list(unique.values())
