"""Timing graph construction.

The timing graph's vertices are circuit nodes and its edges are the stage
timing arcs extracted by :class:`repro.delay.StageDelayCalculator`.  Static
analysis needs a DAG; real nMOS netlists contain structural feedback
(cross-coupled static latches, bus keepers), so construction condenses
strongly connected components and removes a minimal-by-construction set of
feedback edges, which are recorded on the graph for reporting -- TV likewise
reported the feedback paths it cut rather than silently mis-analyzing them.

The graph is a plain insertion-ordered adjacency dict with a Kahn
topological sort: building it is on the analyze() hot path (experiment
R-T3 / the ``repro/bench/perf.py`` harness), so it avoids general-purpose
graph-library overhead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..delay import StageArc
from ..errors import TimingError

__all__ = ["TimingGraph"]


@dataclass
class TimingGraph:
    """A leveled timing graph over circuit nodes.

    Attributes
    ----------
    arcs_from:
        Adjacency: node name -> outgoing :class:`StageArc` list (feedback
        arcs removed).
    order:
        Topological order of every node that appears in some arc.
    cut_arcs:
        Arcs removed to break structural feedback loops.
    """

    arcs_from: dict[str, list[StageArc]] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    cut_arcs: list[StageArc] = field(default_factory=list)

    @classmethod
    def build(cls, arcs: list[StageArc]) -> "TimingGraph":
        """Assemble a DAG from timing arcs, cutting feedback edges."""
        # Insertion-ordered adjacency; inner dicts act as ordered edge sets.
        successors: dict[str, dict[str, None]] = {}
        arc_table: dict[tuple[str, str], list[StageArc]] = {}
        for arc in arcs:
            if arc.trigger == arc.output:
                # A self-arc can only arise from degenerate feedback inside
                # one stage; it carries no timing information for a static
                # pass and would break topological ordering.
                continue
            key = (arc.trigger, arc.output)
            existing = arc_table.get(key)
            if existing is None:
                arc_table[key] = [arc]
                successors.setdefault(arc.trigger, {})[arc.output] = None
            else:
                existing.append(arc)
        nodes: dict[str, None] = {}
        for arc in arcs:
            nodes[arc.trigger] = None
            nodes[arc.output] = None

        cut_arcs: list[StageArc] = []
        for edge in _feedback_edges(nodes, successors):
            cut_arcs.extend(arc_table.pop(edge, []))
            successors[edge[0]].pop(edge[1], None)

        graph = cls(cut_arcs=cut_arcs)
        graph.order = _topological_order(nodes, successors)
        for (trigger, _output), arc_list in arc_table.items():
            graph.arcs_from.setdefault(trigger, []).extend(arc_list)
        return graph

    @property
    def nodes(self) -> list[str]:
        return list(self.order)

    def arc_count(self) -> int:
        """Number of arcs surviving in the DAG (cut arcs excluded)."""
        return sum(len(v) for v in self.arcs_from.values())


def _feedback_edges(
    nodes: dict[str, None], successors: dict[str, dict[str, None]]
) -> list[tuple[str, str]]:
    """Edges whose removal acyclifies the graph (DFS back edges).

    A depth-first search from every root classifies back edges; removing
    exactly those acyclifies the graph.  The set is not guaranteed minimum
    (that problem is NP-hard) but is deterministic and small in practice:
    one edge per cross-coupled latch loop.
    """
    back_edges: list[tuple[str, str]] = []
    visited: set[str] = set()
    on_stack: set[str] = set()

    def visit(start: str) -> None:
        stack: list[tuple[str, iter]] = [
            (start, iter(successors.get(start, ())))
        ]
        visited.add(start)
        on_stack.add(start)
        while stack:
            node, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                if succ in on_stack:
                    back_edges.append((node, succ))
                elif succ not in visited:
                    visited.add(succ)
                    on_stack.add(succ)
                    stack.append((succ, iter(successors.get(succ, ()))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                on_stack.discard(node)

    for node in sorted(nodes):
        if node not in visited:
            visit(node)
    return back_edges


def _topological_order(
    nodes: dict[str, None], successors: dict[str, dict[str, None]]
) -> list[str]:
    """Kahn's algorithm over the insertion-ordered adjacency."""
    indegree = dict.fromkeys(nodes, 0)
    for succ_set in successors.values():
        for succ in succ_set:
            indegree[succ] += 1
    ready = deque(name for name in nodes if indegree[name] == 0)
    order: list[str] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for succ in successors.get(node, ()):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(nodes):  # pragma: no cover - cutting guarantees DAG
        raise TimingError("internal error: feedback cutting left a cycle")
    return order
