"""Multi-corner multi-mode (MCMM) analysis.

1983 signoff ran the same design three times -- slow, typical, and fast
silicon -- and compared the reports by hand.  This module promotes that
loop to a first-class engine mode: a :class:`Scenario` is one
``(technology corner x clock mode)`` combination, and
:func:`analyze_mcmm` evaluates a netlist under many scenarios in a
single run, sharing everything that does not depend on the corner.

The sharing exploits a structural fact of the pipeline: ERC, signal-flow
inference, stage decomposition, and the per-device structural facts are
functions of the netlist *geometry* only, while a corner rescales
resistances and capacitances uniformly.  So the structural phases run
once (on the :class:`~repro.core.analyzer.TimingAnalyzer` that hosts the
MCMM run) and each scenario re-evaluates only the numeric delay terms,
via :meth:`StageDelayCalculator.retarget`.  When extraction is pooled,
scenarios fan out across the *same* persistent worker pool -- tasks
carry the corner, and workers retarget their fork-inherited snapshot --
instead of forking one pool per corner.

The correctness anchor is **parity**: every scenario's
:class:`~repro.core.analyzer.AnalysisResult` is byte-identical
(``to_json``) to a standalone
``TimingAnalyzer(netlist, tech=scenario.tech, clock=scenario.clock)``
analysis, because the retargeted calculator runs the identical
extraction code on the identical netlist.

Typical use::

    from repro import TimingAnalyzer, Technology
    from repro.core.mcmm import corner_scenarios

    tv = TimingAnalyzer(netlist)
    mcmm = tv.analyze_mcmm(corner_scenarios(netlist.tech))
    print(mcmm.report())
    worst = mcmm.dominant_scenario()        # usually "slow"
    corner = mcmm.dominant_corner("alu_out")
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace

from .. import robust
from ..clocks import TwoPhaseClock
from ..errors import TimingError
from ..tech import Technology
from .provenance import Explanation

__all__ = [
    "Scenario",
    "McmmResult",
    "analyze_mcmm",
    "corner_scenarios",
    "CORNER_NAMES",
]

#: The classic corner labels accepted as scenario shorthand.
CORNER_NAMES = ("slow", "typ", "fast")


@dataclass(frozen=True)
class Scenario:
    """One MCMM scenario: a technology corner crossed with a clock mode.

    ``tech=None`` keeps the hosting analyzer's technology; ``clock=None``
    keeps its clock schema.  Either (or both) may be overridden, so a
    scenario set can sweep corners, clock modes, or the full cross
    product.
    """

    name: str
    tech: Technology | None = None
    clock: TwoPhaseClock | None = None


def corner_scenarios(
    base: Technology | None = None,
    *,
    clock: TwoPhaseClock | None = None,
) -> list[Scenario]:
    """The classic three-scenario set: slow, typ, and fast corners of
    ``base`` (default NMOS4), optionally all under one clock override."""
    return [
        Scenario(name=name, tech=tech, clock=clock)
        for name, tech in Technology.corners(base).items()
    ]


def _coerce_scenario(spec, analyzer) -> Scenario:
    """Accept a :class:`Scenario` or a bare corner-name shorthand."""
    if isinstance(spec, Scenario):
        return spec
    if isinstance(spec, str):
        if spec not in CORNER_NAMES:
            raise TimingError(
                f"unknown corner shorthand {spec!r}: choose from "
                f"{'/'.join(CORNER_NAMES)} or pass a Scenario"
            )
        return Scenario(name=spec, tech=analyzer.tech.corner(spec))
    raise TimingError(
        f"scenario must be a Scenario or a corner name, got {spec!r}"
    )


@dataclass
class McmmResult:
    """Everything one MCMM run produced.

    ``results`` maps scenario name to that scenario's full
    :class:`~repro.core.analyzer.AnalysisResult`, in scenario order;
    each is byte-identical to a standalone single-scenario analysis.
    The merge views (:meth:`dominant_scenario`, :meth:`worst_arrivals`,
    :meth:`dominant_corner`) answer the cross-scenario questions, and
    :meth:`to_json` emits the dominant scenario's report extended with
    the ``mcmm`` section of the versioned schema.
    """

    netlist_name: str
    scenarios: list[Scenario]
    results: dict = field(default_factory=dict)
    analysis_seconds: float = 0.0
    #: Per-scenario sibling analyzers, kept for :meth:`explain`.
    _analyzers: dict = field(default_factory=dict, repr=False)

    def result(self, scenario: str):
        """The :class:`AnalysisResult` of one scenario, by name."""
        try:
            return self.results[scenario]
        except KeyError:
            raise TimingError(
                f"unknown scenario {scenario!r}; ran "
                f"{[s.name for s in self.scenarios]}"
            ) from None

    def dominant_scenario(self) -> str:
        """The scenario limiting the design: worst max-delay (two-phase:
        worst minimum cycle).  Ties keep scenario order."""
        best_name = None
        best_key = None
        for scen in self.scenarios:
            result = self.results[scen.name]
            key = (
                result.min_cycle
                if result.min_cycle is not None
                else result.max_delay
            )
            if key is None:
                continue
            if best_key is None or key > best_key:
                best_name, best_key = scen.name, key
        if best_name is None:
            return self.scenarios[0].name
        return best_name

    def worst_arrivals(self) -> dict:
        """``{node: (arrival, scenario name)}`` -- each node's worst
        arrival across every scenario (two-phase: worst over phases,
        matching ``explain``).  Ties keep scenario order."""
        merged: dict[str, tuple[float, str]] = {}
        for scen in self.scenarios:
            for node, time in _node_arrivals(self.results[scen.name]).items():
                held = merged.get(node)
                if held is None or time > held[0]:
                    merged[node] = (time, scen.name)
        return merged

    def dominant_corner(self, node: str) -> str:
        """The scenario in which ``node`` arrives latest."""
        held = self.worst_arrivals().get(node)
        if held is None:
            raise TimingError(
                f"no arrival recorded at {node!r} in any scenario"
            )
        return held[1]

    def explain(
        self,
        node: str,
        transition: str | None = None,
        *,
        sensitivity: bool = False,
    ) -> Explanation:
        """The causal chain behind ``node``'s worst arrival, taken from
        its dominant scenario; the explanation's ``scenario`` attribute
        names that scenario.  ``sensitivity=True`` attaches per-parameter
        arrival slopes around that scenario's corner (see
        :meth:`TimingAnalyzer.explain`)."""
        name = self.dominant_corner(node)
        explanation = self._analyzers[name].explain(
            node,
            transition,
            result=self.results[name],
            sensitivity=sensitivity,
        )
        return replace(explanation, scenario=name)

    def _merged_paths(self) -> list[dict]:
        """Critical-path endpoints across scenarios with their dominant
        scenario, worst first."""
        endpoints: dict[str, tuple[float, str]] = {}
        for scen in self.scenarios:
            for path in self.results[scen.name].paths:
                held = endpoints.get(path.endpoint)
                if held is None or path.arrival > held[0]:
                    endpoints[path.endpoint] = (path.arrival, scen.name)
        rows = [
            {"endpoint": endpoint, "arrival": arrival, "scenario": name}
            for endpoint, (arrival, name) in endpoints.items()
        ]
        rows.sort(key=lambda row: (-row["arrival"], row["endpoint"]))
        return rows

    def to_json(self, *, include_wall_time: bool = False) -> dict:
        """The merged MCMM report: the dominant scenario's report plus
        the ``mcmm`` section (schema >= 1.2.0).

        Deterministic by default, like
        :meth:`AnalysisResult.to_json`; ``include_wall_time=True`` adds
        the nondeterministic per-scenario and overall timings.
        """
        dominant = self.dominant_scenario()
        payload = self.results[dominant].to_json(
            include_wall_time=include_wall_time
        )
        scenario_rows = []
        for scen in self.scenarios:
            result = self.results[scen.name]
            row = {
                "name": scen.name,
                "technology": (
                    scen.tech.name if scen.tech is not None else None
                ),
                "clock": (
                    None
                    if scen.clock is None
                    else {
                        "phase1": scen.clock.phase1,
                        "phase2": scen.clock.phase2,
                        "nonoverlap": scen.clock.nonoverlap,
                    }
                ),
                "mode": result.mode,
                "max_delay": result.max_delay,
                "min_cycle": result.min_cycle,
                "race_count": (
                    len(result.clock_verification.races)
                    if result.clock_verification is not None
                    else 0
                ),
            }
            if include_wall_time:
                row["analysis_seconds"] = result.analysis_seconds
            scenario_rows.append(row)
        payload["mcmm"] = {
            "scenario_count": len(self.scenarios),
            "dominant": dominant,
            "scenarios": scenario_rows,
            "nodes": [
                {"node": node, "arrival": arrival, "scenario": name}
                for node, (arrival, name) in sorted(
                    self.worst_arrivals().items()
                )
            ],
            "paths": self._merged_paths(),
        }
        if include_wall_time:
            payload["mcmm"]["analysis_seconds"] = self.analysis_seconds
        return payload

    def report(self, time_unit: float = 1e-9, unit_name: str = "ns") -> str:
        """Cross-scenario text report: one line per scenario, dominant
        scenario flagged, then the dominant corner of each critical
        endpoint."""
        dominant = self.dominant_scenario()
        lines = [
            f"=== MCMM timing analysis: {self.netlist_name} ===",
            f"scenarios : {len(self.scenarios)}   dominant: {dominant}",
        ]
        for scen in self.scenarios:
            result = self.results[scen.name]
            cycle = result.min_cycle
            metric = (
                f"min cycle {cycle / time_unit:.3f} {unit_name}"
                if cycle is not None
                else f"max delay {(result.max_delay or 0.0) / time_unit:.3f} "
                f"{unit_name}"
            )
            races = (
                f"   races: {len(result.clock_verification.races)}"
                if result.clock_verification is not None
                else ""
            )
            marker = " <- dominant" if scen.name == dominant else ""
            tech_name = scen.tech.name if scen.tech is not None else "(base)"
            lines.append(
                f"  {scen.name:<8} {tech_name:<16} {metric}{races}{marker}"
            )
        merged = self._merged_paths()
        if merged:
            lines.append("critical endpoints across scenarios:")
            for row in merged:
                lines.append(
                    f"  {row['endpoint']:<16} "
                    f"{row['arrival'] / time_unit:.3f} {unit_name}  "
                    f"worst in {row['scenario']}"
                )
        return "\n".join(lines)


def _node_arrivals(result) -> dict[str, float]:
    """Worst arrival per node of one scenario's result (two-phase: worst
    over phases, the same view ``TimingAnalyzer.explain`` uses)."""
    out: dict[str, float] = {}
    if result.arrivals is not None:
        for node in result.arrivals.nodes():
            out[node] = result.arrivals.worst(node).time
        return out
    verification = result.clock_verification
    if verification is None:
        return out
    for phase_result in verification.phases.values():
        arrivals = phase_result.arrivals
        for node in arrivals.nodes():
            time = arrivals.worst(node).time
            if node not in out or time > out[node]:
                out[node] = time
    return out


def analyze_mcmm(
    analyzer,
    scenarios,
    input_arrivals: dict[str, float] | None = None,
    *,
    top_k: int = 5,
    input_slew: float | None = None,
    parametric: bool | None = None,
) -> McmmResult:
    """Analyze ``analyzer``'s netlist under every scenario in one run.

    ``analyzer`` is a fully constructed
    :class:`~repro.core.analyzer.TimingAnalyzer`; its ERC results, flow
    report, and stage graph are shared by every scenario (they are
    corner-invariant), and each scenario gets a sibling analyzer whose
    delay calculator is retargeted to the scenario's corner.  Scenario
    evaluation order is the given order, and each scenario's result is
    byte-identical to a standalone analysis at that corner and clock.

    ``scenarios`` is an iterable of :class:`Scenario` (or bare corner
    names ``"slow"``/``"typ"``/``"fast"`` as shorthand for corners of
    the analyzer's technology); names must be unique.

    ``parametric`` selects the symbolic sweep: the hosting analyzer's
    calculator extracts each arc once as an analytic term over the
    technology parameter vector (:mod:`repro.delay.parametric`), and
    every scenario *evaluates* the terms at its corner instead of
    re-walking the stage trees -- N corners cost one structural
    extraction plus N evaluation passes.  ``None`` (the default)
    enables it exactly when it is bit-exact: the Elmore delay model
    under the strict error policy (the slope/lumped variants and the
    quarantine paths never build terms).  Forcing ``parametric=True``
    outside that envelope silently falls back to concrete extraction
    per scenario (term evaluation returns no arcs).

    Trace counters: ``mcmm_scenarios`` counts evaluated scenarios while
    ``structural_runs`` stays at the hosting analyzer's single
    construction -- the observable proof that the structural phases ran
    once for the whole sweep; ``parametric_stage_evals`` counts stages
    served by term evaluation.
    """
    from .arrival import DEFAULT_INPUT_SLEW

    if input_slew is None:
        input_slew = DEFAULT_INPUT_SLEW
    started = _time.perf_counter()
    coerced = [_coerce_scenario(spec, analyzer) for spec in scenarios]
    if not coerced:
        raise TimingError("analyze_mcmm needs at least one scenario")
    names = [scen.name for scen in coerced]
    if len(set(names)) != len(names):
        raise TimingError(f"duplicate scenario names in {names}")
    if parametric is None:
        parametric = (
            analyzer.calculator.model == "elmore"
            and analyzer.on_error == robust.STRICT
        )
    term_source = (
        analyzer.calculator.parametric_source() if parametric else None
    )
    mcmm = McmmResult(
        netlist_name=analyzer.netlist.name, scenarios=coerced
    )
    for scen in coerced:
        sibling = analyzer._scenario_analyzer(scen, term_source=term_source)
        analyzer.trace.incr("mcmm_scenarios")
        mcmm.results[scen.name] = sibling.analyze(
            input_arrivals, top_k=top_k, input_slew=input_slew
        )
        mcmm._analyzers[scen.name] = sibling
    mcmm.analysis_seconds = _time.perf_counter() - started
    return mcmm
