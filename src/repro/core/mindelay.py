"""Minimum-delay (contamination) analysis and clock-overlap margins.

The worst-case arrivals answer "how slow can the clock be?".  The dual
question -- "how *fast* can a signal get somewhere it shouldn't?" -- needs
earliest arrivals.  Two-phase non-overlapping clocking is race-immune only
while the non-overlap actually holds; with clock skew the phases can
overlap, and data can then shoot through a phi1 latch, the logic between,
and a still-transparent phi2 latch.  The design is safe as long as every
cross-phase latch-to-latch path is *slower* than the worst possible
overlap.

:func:`propagate_min` mirrors the worst-case engine with min-relaxation
and no slope penalty (the fastest corner).  :func:`cross_phase_margins`
reports, per phase, the fastest path from that phase's storage nodes to
the data side of the opposite phase's latches -- the **maximum clock
overlap the design tolerates**.  TV's descendants shipped exactly this
check; the non-overlap generator was trimmed against it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clocks import TwoPhaseClock
from ..delay import FALL, RISE, StageDelayCalculator
from ..netlist import Netlist
from .arrival import Arrival, ArrivalMap
from .constraints import latch_devices, storage_nodes_of_phase
from .graph import TimingGraph

__all__ = ["propagate_min", "OverlapMargin", "cross_phase_margins"]


def propagate_min(
    graph: TimingGraph,
    sources: dict[tuple[str, str], float],
) -> ArrivalMap:
    """Earliest-arrival propagation (contamination delays).

    Takes the minimum over incoming arcs and uses intrinsic arc delays
    with no slope penalty -- the fastest consistent corner.
    """
    arrivals = ArrivalMap()
    for (node, transition), time in sources.items():
        existing = arrivals.get(node, transition)
        if existing is None or time < existing.time:
            arrivals.set(
                Arrival(node=node, transition=transition, time=time, slew=0.0)
            )

    for node in graph.order:
        for transition in (RISE, FALL):
            incoming = arrivals.get(node, transition)
            if incoming is None:
                continue
            for arc in graph.arcs_from.get(node, ()):
                out_transition = (
                    (FALL if transition == RISE else RISE)
                    if arc.inverting
                    else transition
                )
                timing = arc.timing(out_transition)
                if timing is None:
                    continue
                time = incoming.time + timing.delay
                existing = arrivals.get(arc.output, out_transition)
                if existing is not None and existing.time <= time:
                    continue
                arrivals.set(
                    Arrival(
                        node=arc.output,
                        transition=out_transition,
                        time=time,
                        slew=0.0,
                        pred=(node, transition),
                        arc=arc,
                    )
                )
    return arrivals


@dataclass(frozen=True)
class OverlapMargin:
    """Fastest cross-phase path launched from one phase's storage.

    ``margin`` is the minimum contamination delay from a ``from_phase``
    storage node to the data side of any ``to_phase`` latch: the maximum
    clock overlap (skew eating into the non-overlap gap) the design
    survives in that direction.  ``None`` path means no cross-phase path
    exists (unbounded margin).
    """

    from_phase: str
    to_phase: str
    margin: float | None
    from_node: str | None = None
    to_node: str | None = None

    def describe(self) -> str:
        """One-line human-readable statement of the margin."""
        if self.margin is None:
            return (
                f"{self.from_phase}->{self.to_phase}: no cross-phase path "
                "(unbounded overlap margin)"
            )
        return (
            f"{self.from_phase}->{self.to_phase}: fastest path "
            f"{self.from_node} -> {self.to_node} = "
            f"{self.margin * 1e9:.3f} ns of tolerated overlap"
        )


def cross_phase_margins(
    netlist: Netlist,
    calculator: StageDelayCalculator,
    clock: TwoPhaseClock,
) -> list[OverlapMargin]:
    """Per direction, the fastest storage-to-opposite-latch path.

    Computed on the everything-transparent graph (all clocked switches
    closed): during an overlap, both phases' latches conduct, which is
    exactly the hazard scenario.
    """
    arcs = calculator.all_arcs(active_clocks=None)
    graph = TimingGraph.build(arcs)
    margins: list[OverlapMargin] = []
    for phase in clock.phases:
        other = clock.other(phase)
        launch = storage_nodes_of_phase(netlist, clock, phase)
        capture_inputs: dict[str, str] = {}
        other_clocks = clock.clock_nodes(netlist, other)
        for dev in latch_devices(netlist, other_clocks):
            for terminal in dev.channel_nodes:
                capture_inputs.setdefault(terminal, dev.name)

        if not launch or not capture_inputs:
            margins.append(OverlapMargin(phase, other, None))
            continue

        sources = {}
        for node in launch:
            sources[(node, RISE)] = 0.0
            sources[(node, FALL)] = 0.0
        arrivals = propagate_min(graph, sources)

        best: Arrival | None = None
        for target in capture_inputs:
            for transition in (RISE, FALL):
                arrival = arrivals.get(target, transition)
                if arrival is None or arrival.pred is None:
                    continue  # sources themselves don't count
                if best is None or arrival.time < best.time:
                    best = arrival
        if best is None:
            margins.append(OverlapMargin(phase, other, None))
        else:
            origin = best
            while origin.pred is not None:
                nxt = arrivals.get(*origin.pred)
                if nxt is None:
                    break
                origin = nxt
            margins.append(
                OverlapMargin(
                    from_phase=phase,
                    to_phase=other,
                    margin=best.time,
                    from_node=origin.node,
                    to_node=best.node,
                )
            )
    return margins
