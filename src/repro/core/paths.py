"""Critical-path extraction and ranking.

After arrival propagation, the critical path to any endpoint is recovered by
walking predecessor pointers.  :func:`critical_paths` ranks endpoints by
arrival time and reconstructs the top-k paths -- the report format TV
printed for the MIPS designers (experiment R-T2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .arrival import Arrival, ArrivalMap

__all__ = ["PathStep", "TimingPath", "critical_paths", "trace_path"]


@dataclass(frozen=True)
class PathStep:
    """One hop of a timing path."""

    node: str
    transition: str
    time: float
    slew: float
    stage_index: int | None  # None for the source step
    via: str | None  # "gate" / "channel" / None
    devices: tuple[str, ...]  # devices of the worst RC path of this hop


@dataclass(frozen=True)
class TimingPath:
    """A reconstructed worst-case path ending at ``endpoint``."""

    endpoint: str
    transition: str
    arrival: float
    steps: tuple[PathStep, ...]

    @property
    def startpoint(self) -> str:
        return self.steps[0].node

    @property
    def length(self) -> int:
        """Number of stage traversals."""
        return len(self.steps) - 1

    def format(self, time_unit: float = 1e-9, unit_name: str = "ns") -> str:
        """Human-readable path listing."""
        lines = [
            f"path to {self.endpoint} ({self.transition}): "
            f"{self.arrival / time_unit:.3f} {unit_name}, "
            f"{self.length} stages"
        ]
        for step in self.steps:
            via = f" via {step.via}" if step.via else " (source)"
            devices = f" [{', '.join(step.devices)}]" if step.devices else ""
            lines.append(
                f"  {step.time / time_unit:8.3f} {unit_name}  "
                f"{step.node} {step.transition}{via}{devices}"
            )
        return "\n".join(lines)


def trace_path(arrivals: ArrivalMap, endpoint: str, transition: str) -> TimingPath:
    """Reconstruct the worst path to one (endpoint, transition)."""
    arrival = arrivals.get(endpoint, transition)
    if arrival is None:
        raise KeyError(f"no arrival recorded at {endpoint!r} ({transition})")
    steps: list[PathStep] = []
    current: Arrival | None = arrival
    guard = 0
    while current is not None:
        guard += 1
        if guard > 100_000:  # pragma: no cover - corrupt pred chain
            raise RuntimeError("predecessor chain does not terminate")
        timing = None
        if current.arc is not None:
            timing = current.arc.timing(current.transition)
        steps.append(
            PathStep(
                node=current.node,
                transition=current.transition,
                time=current.time,
                slew=current.slew,
                stage_index=(
                    current.arc.stage_index if current.arc is not None else None
                ),
                via=current.arc.via if current.arc is not None else None,
                devices=timing.path if timing is not None else (),
            )
        )
        current = (
            arrivals.get(*current.pred) if current.pred is not None else None
        )
    steps.reverse()
    return TimingPath(
        endpoint=endpoint,
        transition=transition,
        arrival=arrival.time,
        steps=tuple(steps),
    )


def critical_paths(
    arrivals: ArrivalMap,
    endpoints: set[str] | None = None,
    k: int = 5,
) -> list[TimingPath]:
    """The ``k`` latest-arriving endpoint transitions, as full paths.

    ``endpoints`` restricts the candidates (e.g. to primary outputs and
    storage nodes); None considers every node with an arrival.  At most one
    path (the later transition) is reported per endpoint node.
    """
    per_node: dict[str, Arrival] = {}
    for arrival in arrivals.items():
        if endpoints is not None and arrival.node not in endpoints:
            continue
        best = per_node.get(arrival.node)
        if best is None or arrival.time > best.time:
            per_node[arrival.node] = arrival
    ranked = sorted(per_node.values(), key=lambda a: a.time, reverse=True)
    return [trace_path(arrivals, a.node, a.transition) for a in ranked[:k]]
