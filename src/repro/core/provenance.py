"""Arrival-time provenance: *why* is this node late?

TV's value to the MIPS designers was not just the worst-case number but
the explanation -- which stage, which arc family, which RC term made a
path critical.  This module reconstructs that explanation for any
recorded arrival as a chain of :class:`ProvenanceRecord`\\ s, each carrying
the stage index, the arc family, and the delay-model terms (intrinsic RC
delay, slope correction, input slew) of one hop.

The records are *exact*: each hop's contribution is recomputed with the
same expressions, in the same association order, as
:func:`repro.core.arrival.propagate` used, and the chain is verified
hop-by-hop against the stored arrival times while it is built.  The sum
of the delay terms therefore equals the reported arrival time to the last
bit -- asserted here, re-asserted in ``tests/test_provenance.py`` for
every circuit generator.  If the two computations ever disagree (a
refactor changed one side), building the explanation raises
:class:`~repro.errors.TimingError` instead of reporting fiction.

Arc families (``kind``):

``source``
    Externally seeded transition (primary input, clock edge, or a storage
    node written by the previous phase); contributes its seed time.
``gate``
    Inverting gate arc: a gate input switched and the ratioed stage pulled
    the output the other way.
``transfer``
    Non-inverting gate-triggered transfer: clocked pass switch, precharge,
    depletion follower, or mux/shifter select re-routing the output.
``channel``
    Signal injected at an externally driven boundary node of the stage's
    pass network (tracking arc: reduced slope penalty).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..delay import SlopeModel
from ..errors import TimingError
from .arrival import ArrivalMap

__all__ = [
    "ProvenanceRecord",
    "SensitivityRecord",
    "Explanation",
    "explain_arrival",
]

#: Every ``ProvenanceRecord.kind`` value, in pipeline order.
ARC_FAMILIES = ("source", "gate", "transfer", "channel")


@dataclass(frozen=True)
class ProvenanceRecord:
    """One hop of the causal chain behind an arrival time.

    ``time`` is the cumulative arrival after this hop; ``delta`` is the
    hop's exact contribution (``intrinsic_delay`` + slope correction for
    the plain model), so ``prev.time + delta == time`` bit-for-bit.  For
    the source record ``delta`` is the seed time itself and the arc
    fields are None.
    """

    node: str
    transition: str
    time: float
    slew: float
    kind: str  # one of ARC_FAMILIES
    delta: float
    stage_index: int | None = None
    trigger: str | None = None
    inverting: bool | None = None
    intrinsic_delay: float = 0.0
    slope_delay: float = 0.0
    input_slew: float = 0.0
    tau: float = 0.0
    devices: tuple[str, ...] = ()
    truncated: bool = False

    def to_json(self) -> dict:
        """JSON-serializable form (schema: see ``repro.core.report``)."""
        return {
            "node": self.node,
            "transition": self.transition,
            "time": self.time,
            "slew": self.slew,
            "kind": self.kind,
            "delta": self.delta,
            "stage": self.stage_index,
            "trigger": self.trigger,
            "inverting": self.inverting,
            "intrinsic_delay": self.intrinsic_delay,
            "slope_delay": self.slope_delay,
            "input_slew": self.input_slew,
            "tau": self.tau,
            "devices": list(self.devices),
            "truncated": self.truncated,
        }


@dataclass(frozen=True)
class SensitivityRecord:
    """One parameter's leverage on an explained arrival.

    ``sensitivity`` is the central-difference slope of the endpoint's
    arrival with respect to a *relative* change of the parameter, in
    seconds per unit relative change: a sensitivity of ``2e-9`` means a
    +1% parameter move adds ~0.02 ns to the arrival.  Expressing it per
    relative change makes parameters with different units (ohms/square,
    farads, dimensionless derates) directly comparable -- the ranking
    answers "which parameter moves this path most?".
    """

    parameter: str
    nominal: float
    sensitivity: float

    def to_json(self) -> dict:
        """JSON-serializable form (schema: see ``repro.core.report``)."""
        return {
            "parameter": self.parameter,
            "nominal": self.nominal,
            "sensitivity": self.sensitivity,
        }


@dataclass(frozen=True)
class Explanation:
    """The full causal chain for one (endpoint, transition) arrival.

    ``phase`` names the clock phase the chain was computed under
    (None for combinational analysis); ``scenario`` names the MCMM
    scenario it came from (None for single-scenario analysis).
    ``sensitivities`` is populated only when the explanation was built
    with ``sensitivity=True``: per-parameter arrival slopes of this
    endpoint, largest magnitude first (see
    :class:`SensitivityRecord` and :data:`repro.delay.parametric.PARAMETERS`).
    """

    endpoint: str
    transition: str
    arrival: float
    records: tuple[ProvenanceRecord, ...]
    phase: str | None = None
    scenario: str | None = None
    sensitivities: tuple[SensitivityRecord, ...] | None = None

    @property
    def total(self) -> float:
        """Sum of the records' delay terms, in propagation order.

        Accumulated exactly as :func:`~repro.core.arrival.propagate` did,
        so it equals :attr:`arrival` bit-for-bit (the package's core
        explainability invariant).
        """
        time = 0.0
        first = True
        for record in self.records:
            time = record.delta if first else time + record.delta
            first = False
        return time

    @property
    def startpoint(self) -> str:
        """The source node the chain starts from."""
        return self.records[0].node

    def verify(self) -> bool:
        """True iff the delay terms reproduce the arrival exactly."""
        return self.total == self.arrival

    def format(self, time_unit: float = 1e-9, unit_name: str = "ns") -> str:
        """Human-readable causal chain, one hop per line."""
        header = f"explain {self.endpoint} ({self.transition})"
        if self.phase is not None:
            header += f" during {self.phase}"
        if self.scenario is not None:
            header += f" in scenario {self.scenario}"
        lines = [
            f"{header}: {self.arrival / time_unit:.3f} {unit_name}, "
            f"{len(self.records) - 1} hop(s)"
        ]
        for record in self.records:
            if record.kind == "source":
                detail = "source"
            else:
                detail = (
                    f"{record.kind} stage {record.stage_index} "
                    f"from {record.trigger}"
                )
            terms = (
                f"+{record.intrinsic_delay / time_unit:.3f} rc "
                f"+{record.slope_delay / time_unit:.3f} slope"
                if record.kind != "source"
                else f"seed {record.delta / time_unit:+.3f}"
            )
            devices = (
                f" [{', '.join(record.devices)}]" if record.devices else ""
            )
            flag = " (truncated)" if record.truncated else ""
            lines.append(
                f"  {record.time / time_unit:8.3f} {unit_name}  "
                f"{record.node} {record.transition:<4} {detail} "
                f"({terms}){devices}{flag}"
            )
        lines.append(
            f"  sum of terms = {self.total / time_unit:.3f} {unit_name} "
            f"({'exact' if self.verify() else 'MISMATCH'})"
        )
        if self.sensitivities is not None:
            lines.append("sensitivities (d arrival / d relative change):")
            for rec in self.sensitivities:
                lines.append(
                    f"  {rec.parameter:<20} "
                    f"{rec.sensitivity / time_unit:+8.4f} {unit_name}/1.0  "
                    f"(nominal {rec.nominal:g})"
                )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-serializable form (schema: see ``repro.core.report``)."""
        return {
            "endpoint": self.endpoint,
            "transition": self.transition,
            "arrival": self.arrival,
            "phase": self.phase,
            "scenario": self.scenario,
            "exact": self.verify(),
            "records": [record.to_json() for record in self.records],
            "sensitivities": (
                None
                if self.sensitivities is None
                else [rec.to_json() for rec in self.sensitivities]
            ),
        }


def explain_arrival(
    arrivals: ArrivalMap,
    slope: SlopeModel,
    endpoint: str,
    transition: str | None = None,
    *,
    phase: str | None = None,
) -> Explanation:
    """Build the provenance chain for one arrival.

    ``slope`` must be the model the analysis ran with (the analyzer passes
    its own); ``transition`` defaults to the endpoint's *worst* (latest)
    transition.  Raises :class:`TimingError` if the node has no recorded
    arrival, or if the recomputed chain fails to reproduce the stored
    times exactly (which would mean the provenance and propagation code
    paths have diverged -- a bug, never user error).
    """
    if transition is None:
        worst = arrivals.worst(endpoint)
        if worst is None:
            raise TimingError(f"no arrival recorded at {endpoint!r}")
        transition = worst.transition
    arrival = arrivals.get(endpoint, transition)
    if arrival is None:
        raise TimingError(
            f"no arrival recorded at {endpoint!r} ({transition})"
        )

    plain_slope = type(slope) is SlopeModel
    chain = []
    current = arrival
    guard = 0
    while current is not None:
        guard += 1
        if guard > 100_000:  # pragma: no cover - corrupt pred chain
            raise TimingError("predecessor chain does not terminate")
        chain.append(current)
        current = (
            arrivals.get(*current.pred) if current.pred is not None else None
        )
    chain.reverse()

    records: list[ProvenanceRecord] = []
    source = chain[0]
    records.append(
        ProvenanceRecord(
            node=source.node,
            transition=source.transition,
            time=source.time,
            slew=source.slew,
            kind="source",
            delta=source.time,
            input_slew=source.slew,
        )
    )
    for pred, step in zip(chain, chain[1:]):
        arc = step.arc
        if arc is None:  # pragma: no cover - non-source without an arc
            raise TimingError(
                f"arrival at {step.node!r} has a predecessor but no arc"
            )
        timing = arc.timing(step.transition)
        if timing is None:  # pragma: no cover - arc cannot have fired
            raise TimingError(
                f"arc {arc.trigger}->{arc.output} has no "
                f"{step.transition} timing"
            )
        # Recompute the hop's contribution with the exact expressions (and
        # association order) of arrival.propagate -- this is what makes the
        # terms sum to the reported arrival bit-for-bit.
        tracking = False if arc.inverting else arc.via == "channel"
        in_time = pred.time
        in_slew = pred.slew
        if plain_slope:
            alpha = slope.alpha_tracking if tracking else slope.alpha
            slope_delay = alpha * in_slew
            delta = timing.delay + slope_delay
        else:
            delta = slope.delay(timing.delay, in_slew, tracking=tracking)
            slope_delay = delta - timing.delay
        if in_time + delta != step.time:  # pragma: no cover - divergence bug
            raise TimingError(
                f"provenance mismatch at {step.node!r} ({step.transition}): "
                f"recomputed {in_time + delta!r}, stored {step.time!r}; "
                "provenance and propagation have diverged"
            )
        if arc.inverting:
            kind = "gate"
        elif arc.via == "channel":
            kind = "channel"
        else:
            kind = "transfer"
        records.append(
            ProvenanceRecord(
                node=step.node,
                transition=step.transition,
                time=step.time,
                slew=step.slew,
                kind=kind,
                delta=delta,
                stage_index=arc.stage_index,
                trigger=arc.trigger,
                inverting=arc.inverting,
                intrinsic_delay=timing.delay,
                slope_delay=slope_delay,
                input_slew=in_slew,
                tau=timing.tau,
                devices=timing.path,
                truncated=timing.truncated,
            )
        )
    explanation = Explanation(
        endpoint=endpoint,
        transition=transition,
        arrival=arrival.time,
        records=tuple(records),
        phase=phase,
    )
    if not explanation.verify():  # pragma: no cover - divergence bug
        raise TimingError(
            f"provenance terms for {endpoint!r} sum to "
            f"{explanation.total!r}, report says {arrival.time!r}"
        )
    return explanation
