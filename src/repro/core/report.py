"""Report formatting helpers shared by the analyzer, examples, and benches."""

from __future__ import annotations

from ..netlist import Netlist
from ..stages import StageGraph, archetype_census
from .analyzer import AnalysisResult
from .arrival import ArrivalMap

__all__ = [
    "format_ns",
    "design_fingerprint",
    "slack_histogram",
    "format_table",
]


def format_ns(seconds: float, digits: int = 3) -> str:
    """Render a time in nanoseconds."""
    return f"{seconds * 1e9:.{digits}f} ns"


def design_fingerprint(netlist: Netlist, graph: StageGraph) -> str:
    """One-paragraph structural summary of a design."""
    stats = netlist.stats()
    census = archetype_census(netlist, graph)
    census_text = ", ".join(
        f"{kind}: {count}" for kind, count in census.items() if count
    )
    return (
        f"{netlist.name}: {stats['devices']} devices "
        f"({stats['enh']} enh / {stats['dep']} dep), "
        f"{stats['nodes']} nodes, {len(graph)} stages "
        f"[{census_text}], "
        f"{stats['inputs']} inputs, {stats['outputs']} outputs, "
        f"{stats['clocks']} clocks"
    )


def slack_histogram(
    arrivals: ArrivalMap,
    bins: int = 10,
) -> list[tuple[float, float, int]]:
    """Histogram of node arrival times: ``(low, high, count)`` per bin.

    The "timing profile" figure of a chip (experiment R-F1): most nodes
    settle early, a thin tail defines the critical region.
    """
    times = sorted(
        {a.node: a.time for a in arrivals.items() if a.pred is not None}.values()
    )
    if not times:
        return []
    low, high = times[0], times[-1]
    if high == low:
        return [(low, high, len(times))]
    width = (high - low) / bins
    counts = [0] * bins
    for t in times:
        idx = min(int((t - low) / width), bins - 1)
        counts[idx] += 1
    return [
        (low + i * width, low + (i + 1) * width, counts[i]) for i in range(bins)
    ]


def format_table(
    headers: list[str],
    rows: list[list[str]],
    *,
    title: str | None = None,
) -> str:
    """Plain-text aligned table (used by benches to print paper tables)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
