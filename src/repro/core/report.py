"""Reports: the versioned JSON schema, its validator, and text helpers.

Until this layer existed the analyzer's only output was an 87-line opaque
text report.  This module defines the machine-readable contract:

* :data:`REPORT_SCHEMA` -- a versioned JSON-Schema(-subset) document
  describing every field a timing report may carry;
* :func:`result_to_json` -- serialize an
  :class:`~repro.core.analyzer.AnalysisResult` to that schema
  (deterministic: byte-identical between serial and parallel runs);
* :func:`validate_report` -- dependency-free structural validation
  against the schema (raises :class:`~repro.errors.ReportSchemaError`);
* :func:`schema_markdown` -- render the schema as the reference page
  checked in at ``docs/report-schema.md`` (the doc is *generated from*
  the schema; a test asserts the two never drift).

Schema versioning follows semver: a field addition bumps the minor
version, a meaning/type change bumps the major version.  Consumers should
accept any report whose major version they know.

The classic text helpers (:func:`format_ns`, :func:`design_fingerprint`,
:func:`slack_histogram`, :func:`format_table`) live here too, shared by
the analyzer, examples, and benches.

Regenerate the schema reference with::

    PYTHONPATH=src python -m repro.core.report > docs/report-schema.md
"""

from __future__ import annotations

import json
import os
import tempfile

from ..errors import ReportSchemaError
from ..netlist import Netlist
from ..stages import StageGraph, archetype_census
from .arrival import ArrivalMap

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "REPORT_SCHEMA",
    "result_to_json",
    "validate_report",
    "schema_markdown",
    "format_ns",
    "design_fingerprint",
    "slack_histogram",
    "format_table",
    "atomic_write_text",
    "atomic_write_json",
]

#: Version of the JSON report contract (semver).
#: 1.1.0 added the ``diagnostics`` section (error policy, typed
#: diagnostic records, and quarantine coverage).
#: 1.2.0 added the optional ``mcmm`` section (multi-corner multi-mode
#: merge: per-scenario outcomes, worst arrival per node, dominant
#: scenario per critical endpoint) and the ``scenario`` field of
#: ``explanation``.
#: 1.3.0 added the ``sensitivities`` field of ``explanation``
#: (per-parameter arrival slopes from the parametric delay layer,
#: populated by ``repro explain --sensitivity``).
REPORT_SCHEMA_VERSION = "1.3.0"

_STEP_SCHEMA = {
    "type": "object",
    "description": "One hop of a timing path.",
    "required": ["node", "transition", "time", "slew", "stage", "via",
                 "devices"],
    "additionalProperties": False,
    "properties": {
        "node": {"type": "string", "description": "Circuit node name."},
        "transition": {
            "enum": ["rise", "fall"],
            "description": "Direction of the transition at this node.",
        },
        "time": {
            "type": "number",
            "description": "Cumulative arrival time at this node, seconds.",
        },
        "slew": {
            "type": "number",
            "description": "Transition time (slew) at this node, seconds.",
        },
        "stage": {
            "type": ["integer", "null"],
            "description": "Index of the stage traversed (null for the "
                           "source step).",
        },
        "via": {
            "enum": ["gate", "channel", None],
            "description": "How the stage was entered: a gate input, a "
                           "channel boundary, or null for the source step.",
        },
        "devices": {
            "type": "array",
            "items": {"type": "string"},
            "description": "Devices on the worst RC path of this hop.",
        },
    },
}

_PATH_SCHEMA = {
    "type": "object",
    "description": "A reconstructed worst-case timing path.",
    "required": ["endpoint", "transition", "arrival", "steps"],
    "additionalProperties": False,
    "properties": {
        "endpoint": {"type": "string", "description": "Path endpoint node."},
        "transition": {
            "enum": ["rise", "fall"],
            "description": "Endpoint transition direction.",
        },
        "arrival": {
            "type": "number",
            "description": "Worst-case arrival at the endpoint, seconds.",
        },
        "steps": {
            "type": "array",
            "items": {"$ref": "#/$defs/step"},
            "description": "Hops from startpoint to endpoint, in order.",
        },
    },
}

_PROVENANCE_RECORD_SCHEMA = {
    "type": "object",
    "description": "One hop of an arrival-time provenance chain "
                   "(see repro.core.provenance).",
    "required": ["node", "transition", "time", "slew", "kind", "delta",
                 "stage", "trigger", "inverting", "intrinsic_delay",
                 "slope_delay", "input_slew", "tau", "devices", "truncated"],
    "additionalProperties": False,
    "properties": {
        "node": {"type": "string", "description": "Circuit node name."},
        "transition": {
            "enum": ["rise", "fall"],
            "description": "Direction of the transition at this node.",
        },
        "time": {
            "type": "number",
            "description": "Cumulative arrival after this hop, seconds.",
        },
        "slew": {
            "type": "number",
            "description": "Output slew after this hop, seconds.",
        },
        "kind": {
            "enum": ["source", "gate", "transfer", "channel"],
            "description": "Arc family: externally seeded source, "
                           "inverting gate arc, non-inverting transfer "
                           "(clocked switch / precharge / follower / "
                           "select), or channel injection.",
        },
        "delta": {
            "type": "number",
            "description": "Exact contribution of this hop, seconds; the "
                           "deltas sum to the reported arrival "
                           "bit-for-bit.",
        },
        "stage": {
            "type": ["integer", "null"],
            "description": "Stage index (null for the source record).",
        },
        "trigger": {
            "type": ["string", "null"],
            "description": "Node whose transition triggered the arc "
                           "(null for the source record).",
        },
        "inverting": {
            "type": ["boolean", "null"],
            "description": "Whether the arc inverts (null for the source "
                           "record).",
        },
        "intrinsic_delay": {
            "type": "number",
            "description": "RC (delay-model) term of the hop, seconds.",
        },
        "slope_delay": {
            "type": "number",
            "description": "Input-slope correction term of the hop, "
                           "seconds.",
        },
        "input_slew": {
            "type": "number",
            "description": "Slew of the triggering transition, seconds.",
        },
        "tau": {
            "type": "number",
            "description": "Elmore time constant of the hop's RC tree, "
                           "seconds.",
        },
        "devices": {
            "type": "array",
            "items": {"type": "string"},
            "description": "Devices on the worst RC path of this hop.",
        },
        "truncated": {
            "type": "boolean",
            "description": "True if path enumeration hit its cap while "
                           "computing this hop (the delay is then a "
                           "lower bound).",
        },
    },
}

_EXPLANATION_SCHEMA = {
    "type": "object",
    "description": "A full provenance chain for one endpoint arrival "
                   "(the payload of `repro explain --json`).",
    "required": ["endpoint", "transition", "arrival", "phase", "scenario",
                 "exact", "records", "sensitivities"],
    "additionalProperties": False,
    "properties": {
        "endpoint": {"type": "string", "description": "Explained node."},
        "transition": {
            "enum": ["rise", "fall"],
            "description": "Explained transition direction.",
        },
        "arrival": {
            "type": "number",
            "description": "Reported worst-case arrival, seconds.",
        },
        "phase": {
            "type": ["string", "null"],
            "description": "Clock phase the chain was computed under "
                           "(null for combinational analysis).",
        },
        "scenario": {
            "type": ["string", "null"],
            "description": "MCMM scenario the chain came from (null for "
                           "single-scenario analysis).  Added in 1.2.0.",
        },
        "exact": {
            "type": "boolean",
            "description": "True iff the record deltas sum to `arrival` "
                           "exactly (always true in a healthy build).",
        },
        "records": {
            "type": "array",
            "items": {"$ref": "#/$defs/provenance_record"},
            "description": "Causal chain from source to endpoint.",
        },
        "sensitivities": {
            "type": ["array", "null"],
            "items": {"$ref": "#/$defs/sensitivity_record"},
            "description": "Per-parameter arrival slopes of this "
                           "endpoint, largest magnitude first (null "
                           "unless the explanation was built with "
                           "sensitivity=True).  Added in 1.3.0.",
        },
    },
}

_SENSITIVITY_RECORD_SCHEMA = {
    "type": "object",
    "description": "One technology parameter's leverage on an explained "
                   "arrival (central-difference estimate from the "
                   "parametric delay layer).",
    "required": ["parameter", "nominal", "sensitivity"],
    "additionalProperties": False,
    "properties": {
        "parameter": {
            "type": "string",
            "description": "Technology field name (one of "
                           "repro.delay.parametric.PARAMETERS).",
        },
        "nominal": {
            "type": "number",
            "description": "The parameter's value at the analyzed corner.",
        },
        "sensitivity": {
            "type": "number",
            "description": "d(arrival)/d(relative parameter change), "
                           "seconds per unit relative change: +2e-9 "
                           "means a +1% parameter move adds ~0.02 ns.",
        },
    },
}

_PHASE_SCHEMA = {
    "type": "object",
    "description": "Per-phase results of two-phase clock verification.",
    "required": ["phase", "width", "capture_nodes", "cut_arc_count",
                 "critical"],
    "additionalProperties": False,
    "properties": {
        "phase": {"type": "string", "description": "Phase label."},
        "width": {
            "type": "number",
            "description": "Minimum width of the phase, seconds.",
        },
        "capture_nodes": {
            "type": "array",
            "items": {"type": "string"},
            "description": "Storage nodes written during the phase "
                           "(sorted).",
        },
        "cut_arc_count": {
            "type": "integer",
            "description": "Feedback arcs cut in this phase's timing "
                           "graph.",
        },
        "critical": {
            "anyOf": [{"$ref": "#/$defs/path"}, {"type": "null"}],
            "description": "The phase's critical path (null if the phase "
                           "launches nothing).",
        },
    },
}

_CLOCK_SCHEMA = {
    "type": "object",
    "description": "Two-phase clock verification outcome.",
    "required": ["phase1", "phase2", "nonoverlap", "min_cycle", "phases",
                 "races", "overlap_margins"],
    "additionalProperties": False,
    "properties": {
        "phase1": {"type": "string", "description": "First phase label."},
        "phase2": {"type": "string", "description": "Second phase label."},
        "nonoverlap": {
            "type": "number",
            "description": "Dead time between phases, seconds.",
        },
        "min_cycle": {
            "type": "number",
            "description": "Minimum cycle time, seconds.",
        },
        "phases": {
            "type": "array",
            "items": {"$ref": "#/$defs/phase"},
            "description": "Per-phase results, in schema phase order.",
        },
        "races": {
            "type": "array",
            "items": {"$ref": "#/$defs/race"},
            "description": "Same-phase race violations found.",
        },
        "overlap_margins": {
            "type": "array",
            "items": {"$ref": "#/$defs/overlap_margin"},
            "description": "Tolerated clock overlap per phase direction.",
        },
    },
}

_RACE_SCHEMA = {
    "type": "object",
    "description": "A signal that can cross two same-phase latches in one "
                   "phase.",
    "required": ["phase", "from_node", "to_node", "kind"],
    "additionalProperties": False,
    "properties": {
        "phase": {"type": "string", "description": "Racing phase label."},
        "from_node": {"type": "string", "description": "Launching node."},
        "to_node": {"type": "string", "description": "Captured node."},
        "kind": {
            "enum": ["cross-stage", "same-stage"],
            "description": "Whether the race crosses stages or stays "
                           "within one conduction network.",
        },
    },
}

_OVERLAP_MARGIN_SCHEMA = {
    "type": "object",
    "description": "Maximum clock overlap the design tolerates in one "
                   "phase direction.",
    "required": ["from_phase", "to_phase", "margin", "from_node", "to_node"],
    "additionalProperties": False,
    "properties": {
        "from_phase": {"type": "string", "description": "Launching phase."},
        "to_phase": {"type": "string", "description": "Capturing phase."},
        "margin": {
            "type": ["number", "null"],
            "description": "Tolerated overlap, seconds (null: no "
                           "cross-phase path, unbounded margin).",
        },
        "from_node": {
            "type": ["string", "null"],
            "description": "Start of the fastest cross-phase path.",
        },
        "to_node": {
            "type": ["string", "null"],
            "description": "End of the fastest cross-phase path.",
        },
    },
}

_ERC_WARNING_SCHEMA = {
    "type": "object",
    "description": "One electrical-rules warning carried by the analysis.",
    "required": ["code", "severity", "subject", "message"],
    "additionalProperties": False,
    "properties": {
        "code": {"type": "string", "description": "Rule identifier."},
        "severity": {
            "enum": ["error", "warning"],
            "description": "Violation severity.",
        },
        "subject": {
            "type": "string",
            "description": "Node or device at fault.",
        },
        "message": {"type": "string", "description": "Human-readable "
                                                     "detail."},
    },
}

_DIAGNOSTIC_SCHEMA = {
    "type": "object",
    "description": "One typed record of a failure tolerated by a degraded "
                   "error policy (see repro.robust).",
    "required": ["code", "severity", "subject", "stage", "action",
                 "message"],
    "additionalProperties": False,
    "properties": {
        "code": {
            "type": "string",
            "description": "Failure class: an ERC rule code (e.g. "
                           "\"ratio\") or a pipeline code (e.g. "
                           "\"extraction-failure\", \"erc-crash\", "
                           "\"no-primary-inputs\").",
        },
        "severity": {
            "enum": ["error", "warning"],
            "description": "Severity of the underlying failure.",
        },
        "subject": {
            "type": "string",
            "description": "Node, device, or pipeline step at fault.",
        },
        "stage": {
            "type": ["integer", "null"],
            "description": "Implicated stage index (null when the failure "
                           "is not attributable to one stage).",
        },
        "action": {
            "enum": ["quarantined", "downgraded", "skipped"],
            "description": "What the analyzer did: excised the stage, "
                           "downgraded a fatal error to this record, or "
                           "skipped a pipeline step.",
        },
        "message": {
            "type": "string",
            "description": "Human-readable detail.",
        },
    },
}

_COVERAGE_SCHEMA = {
    "type": "object",
    "description": "Analyzed-vs-quarantined accounting of one run; "
                   "`complete` is true iff nothing was quarantined.",
    "required": ["complete", "stages_total", "stages_analyzed",
                 "stages_quarantined", "devices_total", "devices_analyzed",
                 "devices_quarantined", "nodes_total", "nodes_analyzed",
                 "nodes_quarantined"],
    "additionalProperties": False,
    "properties": {
        "complete": {
            "type": "boolean",
            "description": "True iff every stage was analyzed.",
        },
        "stages_total": {
            "type": "integer",
            "description": "Stages in the decomposition.",
        },
        "stages_analyzed": {
            "type": "integer",
            "description": "Stages that contributed timing arcs.",
        },
        "stages_quarantined": {
            "type": "integer",
            "description": "Stages excised from the analysis.",
        },
        "devices_total": {
            "type": "integer",
            "description": "Devices in the netlist.",
        },
        "devices_analyzed": {
            "type": "integer",
            "description": "Devices of analyzed stages.",
        },
        "devices_quarantined": {
            "type": "integer",
            "description": "Devices of quarantined stages.",
        },
        "nodes_total": {
            "type": "integer",
            "description": "Nodes in the netlist (including boundary "
                           "nodes, which belong to no stage).",
        },
        "nodes_analyzed": {
            "type": "integer",
            "description": "Nodes outside quarantined stages.",
        },
        "nodes_quarantined": {
            "type": "integer",
            "description": "Internal nodes of quarantined stages.",
        },
    },
}

_DIAGNOSTICS_SECTION_SCHEMA = {
    "type": "object",
    "description": "Degraded-mode accounting: the error policy the run "
                   "executed under, every tolerated failure, and what "
                   "fraction of the design the results cover.  Under the "
                   "default strict policy `records` is empty and "
                   "`coverage.complete` is true.",
    "required": ["policy", "records", "coverage"],
    "additionalProperties": False,
    "properties": {
        "policy": {
            "enum": ["strict", "quarantine", "best-effort"],
            "description": "Error policy of the run.",
        },
        "records": {
            "type": "array",
            "items": {"$ref": "#/$defs/diagnostic"},
            "description": "Tolerated failures, in pipeline order.",
        },
        "coverage": {
            "anyOf": [{"$ref": "#/$defs/coverage"}, {"type": "null"}],
            "description": "Quarantine accounting (null only for "
                           "hand-built results that never ran analyze()).",
        },
    },
}

_MCMM_SCENARIO_SCHEMA = {
    "type": "object",
    "description": "Outcome of one MCMM scenario (corner x clock mode).",
    "required": ["name", "technology", "clock", "mode", "max_delay",
                 "min_cycle", "race_count"],
    "additionalProperties": False,
    "properties": {
        "name": {"type": "string", "description": "Scenario name."},
        "technology": {
            "type": ["string", "null"],
            "description": "Name of the scenario's technology corner "
                           "(null: the analyzer's base technology).",
        },
        "clock": {
            "type": ["object", "null"],
            "description": "Scenario clock override (null: the "
                           "analyzer's schema).",
            "required": ["phase1", "phase2", "nonoverlap"],
            "additionalProperties": False,
            "properties": {
                "phase1": {"type": "string",
                           "description": "First phase label."},
                "phase2": {"type": "string",
                           "description": "Second phase label."},
                "nonoverlap": {"type": "number",
                               "description": "Dead time between phases, "
                                              "seconds."},
            },
        },
        "mode": {
            "enum": ["combinational", "two-phase"],
            "description": "Analysis mode of this scenario.",
        },
        "max_delay": {
            "type": ["number", "null"],
            "description": "Scenario worst delay (see top-level "
                           "max_delay), seconds.",
        },
        "min_cycle": {
            "type": ["number", "null"],
            "description": "Scenario minimum cycle time (two-phase "
                           "mode; null otherwise), seconds.",
        },
        "race_count": {
            "type": "integer",
            "description": "Races found in this scenario (0 in "
                           "combinational mode).",
        },
        "analysis_seconds": {
            "type": "number",
            "description": "Wall-clock scenario time. OPTIONAL -- only "
                           "with include_wall_time=True.",
        },
    },
}

_MCMM_NODE_SCHEMA = {
    "type": "object",
    "description": "Worst arrival of one node across every scenario.",
    "required": ["node", "arrival", "scenario"],
    "additionalProperties": False,
    "properties": {
        "node": {"type": "string", "description": "Circuit node name."},
        "arrival": {
            "type": "number",
            "description": "Latest arrival over all scenarios, seconds.",
        },
        "scenario": {
            "type": "string",
            "description": "Scenario in which the node arrives latest "
                           "(its dominant corner).",
        },
    },
}

_MCMM_PATH_SCHEMA = {
    "type": "object",
    "description": "One critical-path endpoint merged across scenarios.",
    "required": ["endpoint", "arrival", "scenario"],
    "additionalProperties": False,
    "properties": {
        "endpoint": {"type": "string",
                     "description": "Path endpoint node."},
        "arrival": {
            "type": "number",
            "description": "Worst arrival over all scenarios, seconds.",
        },
        "scenario": {
            "type": "string",
            "description": "Dominant scenario for this endpoint.",
        },
    },
}

_MCMM_SCHEMA = {
    "type": "object",
    "description": "Multi-corner multi-mode merge.  The enclosing "
                   "report is the *dominant* scenario's report; this "
                   "section compares all scenarios.  Every scenario's "
                   "own report is byte-identical to a standalone "
                   "single-scenario analysis.",
    "required": ["scenario_count", "dominant", "scenarios", "nodes",
                 "paths"],
    "additionalProperties": False,
    "properties": {
        "scenario_count": {
            "type": "integer",
            "description": "Number of scenarios analyzed.",
        },
        "dominant": {
            "type": "string",
            "description": "Scenario with the worst cycle time (or "
                           "max delay) -- the signoff corner.",
        },
        "scenarios": {
            "type": "array",
            "items": {"$ref": "#/$defs/mcmm_scenario"},
            "description": "Per-scenario outcomes, in evaluation order.",
        },
        "nodes": {
            "type": "array",
            "items": {"$ref": "#/$defs/mcmm_node"},
            "description": "Worst arrival per node across scenarios, "
                           "sorted by node name.",
        },
        "paths": {
            "type": "array",
            "items": {"$ref": "#/$defs/mcmm_path"},
            "description": "Critical endpoints with their dominant "
                           "scenario, worst first.",
        },
        "analysis_seconds": {
            "type": "number",
            "description": "Wall-clock MCMM sweep time. OPTIONAL -- "
                           "only with include_wall_time=True.",
        },
    },
}

REPORT_SCHEMA = {
    "$id": "repro-timing-report",
    "title": "repro timing analysis report",
    "description": "Machine-readable result of one TimingAnalyzer run. "
                   "All times are seconds (strict SI). The payload is "
                   "deterministic: serial and parallel analyses of the "
                   "same netlist serialize byte-identically.",
    "version": REPORT_SCHEMA_VERSION,
    "type": "object",
    "required": ["schema", "schema_version", "generator", "netlist", "mode",
                 "units", "flow", "erc_warnings", "cut_arc_count",
                 "max_delay", "arrival_count", "paths", "clock",
                 "diagnostics"],
    "additionalProperties": False,
    "properties": {
        "schema": {
            "const": "repro-timing-report",
            "description": "Payload discriminator.",
        },
        "schema_version": {
            "type": "string",
            "description": "Semver of this contract; consumers should "
                           "accept any report whose major version they "
                           "know.",
        },
        "generator": {
            "type": "object",
            "description": "Tool that produced the report.",
            "required": ["tool", "version"],
            "additionalProperties": False,
            "properties": {
                "tool": {"const": "repro", "description": "Tool name."},
                "version": {"type": "string",
                            "description": "Package version."},
            },
        },
        "netlist": {
            "type": "object",
            "description": "Identity and size of the analyzed design.",
            "required": ["name", "devices", "stages"],
            "additionalProperties": False,
            "properties": {
                "name": {"type": "string", "description": "Netlist name."},
                "devices": {"type": "integer",
                            "description": "Transistor count."},
                "stages": {"type": "integer",
                           "description": "Channel-connected stage count."},
            },
        },
        "mode": {
            "enum": ["combinational", "two-phase"],
            "description": "Analysis mode.",
        },
        "units": {
            "type": "object",
            "description": "Units of every numeric field.",
            "required": ["time"],
            "additionalProperties": False,
            "properties": {
                "time": {"const": "s", "description": "Strict SI seconds."},
            },
        },
        "flow": {
            "type": "object",
            "description": "Signal-flow inference coverage (R-T4 "
                           "accounting).",
            "required": ["total_devices", "pass_candidates",
                         "auto_resolved", "hinted", "unresolved",
                         "conflicts"],
            "additionalProperties": False,
            "properties": {
                "total_devices": {
                    "type": "integer",
                    "description": "All devices in the netlist.",
                },
                "pass_candidates": {
                    "type": "integer",
                    "description": "Devices needing a flow direction.",
                },
                "auto_resolved": {
                    "type": "integer",
                    "description": "Resolved by structural rules.",
                },
                "hinted": {
                    "type": "integer",
                    "description": "Resolved by designer hints.",
                },
                "unresolved": {
                    "type": "integer",
                    "description": "Left bidirectional.",
                },
                "conflicts": {
                    "type": "integer",
                    "description": "Rules demanded opposite directions.",
                },
            },
        },
        "erc_warnings": {
            "type": "array",
            "items": {"$ref": "#/$defs/erc_warning"},
            "description": "Electrical-rules warnings (errors abort the "
                           "analysis instead).",
        },
        "cut_arc_count": {
            "type": "integer",
            "description": "Feedback arcs cut to acyclify the timing "
                           "graph (summed over phases in two-phase "
                           "mode).",
        },
        "max_delay": {
            "type": ["number", "null"],
            "description": "Combinational: worst input-to-output delay. "
                           "Two-phase: worst phase width. Seconds.",
        },
        "arrival_count": {
            "type": ["integer", "null"],
            "description": "Recorded (node, transition) arrivals "
                           "(combinational mode; null otherwise).",
        },
        "paths": {
            "type": "array",
            "items": {"$ref": "#/$defs/path"},
            "description": "Top-k critical paths, worst first.",
        },
        "clock": {
            "anyOf": [{"$ref": "#/$defs/clock"}, {"type": "null"}],
            "description": "Two-phase verification outcome (null in "
                           "combinational mode).",
        },
        "diagnostics": {
            "$ref": "#/$defs/diagnostics",
            "description": "Degraded-mode accounting (policy, tolerated "
                           "failures, coverage).  Added in 1.1.0.",
        },
        "analysis_seconds": {
            "type": "number",
            "description": "Wall-clock analysis time. OPTIONAL -- "
                           "omitted by default so reports stay "
                           "deterministic; request it with "
                           "result_to_json(include_wall_time=True).",
        },
        "mcmm": {
            "$ref": "#/$defs/mcmm",
            "description": "Multi-corner multi-mode merge. OPTIONAL -- "
                           "present only on analyze_mcmm reports.  "
                           "Added in 1.2.0.",
        },
    },
    "$defs": {
        "step": _STEP_SCHEMA,
        "path": _PATH_SCHEMA,
        "provenance_record": _PROVENANCE_RECORD_SCHEMA,
        "explanation": _EXPLANATION_SCHEMA,
        "sensitivity_record": _SENSITIVITY_RECORD_SCHEMA,
        "phase": _PHASE_SCHEMA,
        "clock": _CLOCK_SCHEMA,
        "race": _RACE_SCHEMA,
        "overlap_margin": _OVERLAP_MARGIN_SCHEMA,
        "erc_warning": _ERC_WARNING_SCHEMA,
        "diagnostic": _DIAGNOSTIC_SCHEMA,
        "coverage": _COVERAGE_SCHEMA,
        "diagnostics": _DIAGNOSTICS_SECTION_SCHEMA,
        "mcmm": _MCMM_SCHEMA,
        "mcmm_scenario": _MCMM_SCENARIO_SCHEMA,
        "mcmm_node": _MCMM_NODE_SCHEMA,
        "mcmm_path": _MCMM_PATH_SCHEMA,
    },
}


# ----------------------------------------------------------------------
# Serialization.
# ----------------------------------------------------------------------
def _path_to_json(path) -> dict:
    return {
        "endpoint": path.endpoint,
        "transition": path.transition,
        "arrival": path.arrival,
        "steps": [
            {
                "node": step.node,
                "transition": step.transition,
                "time": step.time,
                "slew": step.slew,
                "stage": step.stage_index,
                "via": step.via,
                "devices": list(step.devices),
            }
            for step in path.steps
        ],
    }


def _clock_to_json(verification) -> dict:
    clock = verification.clock
    return {
        "phase1": clock.phase1,
        "phase2": clock.phase2,
        "nonoverlap": clock.nonoverlap,
        "min_cycle": verification.min_cycle,
        "phases": [
            {
                "phase": phase,
                "width": result.width,
                "capture_nodes": sorted(result.storage_written),
                "cut_arc_count": result.cut_arc_count,
                "critical": (
                    _path_to_json(result.critical)
                    if result.critical is not None
                    else None
                ),
            }
            for phase, result in (
                (p, verification.phases[p]) for p in clock.phases
            )
        ],
        "races": [
            {
                "phase": race.phase,
                "from_node": race.from_node,
                "to_node": race.to_node,
                "kind": race.kind,
            }
            for race in verification.races
        ],
        "overlap_margins": [
            {
                "from_phase": margin.from_phase,
                "to_phase": margin.to_phase,
                "margin": margin.margin,
                "from_node": margin.from_node,
                "to_node": margin.to_node,
            }
            for margin in verification.overlap_margins
        ],
    }


def result_to_json(result, *, include_wall_time: bool = False) -> dict:
    """Serialize an :class:`~repro.core.analyzer.AnalysisResult`.

    The payload conforms to :data:`REPORT_SCHEMA` and is deterministic:
    two analyses of the same netlist -- serial or parallel -- produce
    equal payloads (and equal ``json.dumps(..., sort_keys=True)`` bytes).
    Wall-clock time is the one nondeterministic field, so it is included
    only on request (``include_wall_time=True``).
    """
    from .. import __version__  # local import: package init imports core

    payload = {
        "schema": "repro-timing-report",
        "schema_version": REPORT_SCHEMA_VERSION,
        "generator": {"tool": "repro", "version": __version__},
        "netlist": {
            "name": result.netlist_name,
            "devices": result.device_count,
            "stages": result.stage_count,
        },
        "mode": result.mode,
        "units": {"time": "s"},
        "flow": {
            "total_devices": result.flow.total_devices,
            "pass_candidates": result.flow.pass_candidates,
            "auto_resolved": result.flow.auto_resolved,
            "hinted": len(result.flow.hinted),
            "unresolved": len(result.flow.unresolved),
            "conflicts": len(result.flow.conflicts),
        },
        "erc_warnings": [
            {
                "code": violation.code,
                "severity": violation.severity,
                "subject": violation.subject,
                "message": violation.message,
            }
            for violation in result.erc_warnings
        ],
        "cut_arc_count": result.cut_arc_count,
        "max_delay": result.max_delay,
        "arrival_count": (
            len(result.arrivals) if result.arrivals is not None else None
        ),
        "paths": [_path_to_json(path) for path in result.paths],
        "clock": (
            _clock_to_json(result.clock_verification)
            if result.clock_verification is not None
            else None
        ),
        "diagnostics": {
            "policy": result.policy,
            "records": [diag.to_json() for diag in result.diagnostics],
            "coverage": (
                result.coverage.to_json()
                if result.coverage is not None
                else None
            ),
        },
    }
    if include_wall_time:
        payload["analysis_seconds"] = result.analysis_seconds
    return payload


# ----------------------------------------------------------------------
# Validation (dependency-free JSON-Schema subset).
# ----------------------------------------------------------------------
_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _resolve_ref(ref: str, root: dict) -> dict:
    if not ref.startswith("#/"):
        raise ReportSchemaError(f"unsupported $ref {ref!r}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def _validate(value, schema: dict, root: dict, path: str, problems: list):
    ref = schema.get("$ref")
    if ref is not None:
        schema = _resolve_ref(ref, root)

    any_of = schema.get("anyOf")
    if any_of is not None:
        for option in any_of:
            trial: list[str] = []
            _validate(value, option, root, path, trial)
            if not trial:
                return
        problems.append(f"{path}: matches no anyOf alternative")
        return

    if "const" in schema:
        if value != schema["const"]:
            problems.append(
                f"{path}: expected constant {schema['const']!r}, "
                f"got {value!r}"
            )
        return

    if "enum" in schema:
        if value not in schema["enum"]:
            problems.append(
                f"{path}: {value!r} not one of {schema['enum']!r}"
            )
        return

    declared = schema.get("type")
    if declared is not None:
        types = declared if isinstance(declared, list) else [declared]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            problems.append(
                f"{path}: expected {'/'.join(types)}, "
                f"got {type(value).__name__}"
            )
            return

    if isinstance(value, dict):
        properties = schema.get("properties", {})
        for name in schema.get("required", ()):
            if name not in value:
                problems.append(f"{path}: missing required field {name!r}")
        if schema.get("additionalProperties") is False:
            for name in value:
                if name not in properties:
                    problems.append(f"{path}: unexpected field {name!r}")
        for name, sub in properties.items():
            if name in value:
                _validate(value[name], sub, root, f"{path}.{name}", problems)

    if isinstance(value, list):
        items = schema.get("items")
        if items is not None:
            for index, element in enumerate(value):
                _validate(
                    element, items, root, f"{path}[{index}]", problems
                )


def validate_report(payload, schema: dict | None = None) -> None:
    """Validate a payload against the report schema (or any sub-schema).

    Raises :class:`ReportSchemaError` listing every violation; returns
    None on success.  The validator is a dependency-free subset of JSON
    Schema (type / required / properties / additionalProperties / items /
    enum / const / anyOf / local $ref) -- exactly the vocabulary
    :data:`REPORT_SCHEMA` uses, so no third-party ``jsonschema`` package
    is needed.
    """
    root = REPORT_SCHEMA
    if schema is None:
        schema = REPORT_SCHEMA
    problems: list[str] = []
    _validate(payload, schema, root, "$", problems)
    if problems:
        raise ReportSchemaError(
            "report does not conform to schema "
            f"v{REPORT_SCHEMA_VERSION}:\n  " + "\n  ".join(problems)
        )


# ----------------------------------------------------------------------
# Schema -> markdown reference (docs/report-schema.md is generated from
# this; tests assert the checked-in file matches).
# ----------------------------------------------------------------------
def _schema_type_label(schema: dict) -> str:
    ref = schema.get("$ref")
    if ref is not None:
        name = ref.rsplit("/", 1)[-1]
        return f"[`{name}`](#{name.replace('_', '-')})"
    if "anyOf" in schema:
        return " \\| ".join(
            _schema_type_label(option) for option in schema["anyOf"]
        )
    if "const" in schema:
        return f"const `{json.dumps(schema['const'])}`"
    if "enum" in schema:
        return " \\| ".join(
            f"`{json.dumps(v)}`" for v in schema["enum"]
        )
    declared = schema.get("type", "any")
    types = declared if isinstance(declared, list) else [declared]
    label = " \\| ".join(f"`{t}`" for t in types)
    if "array" in types and "items" in schema:
        label += f" of {_schema_type_label(schema['items'])}"
    return label


def _object_table(schema: dict) -> list[str]:
    lines = [
        "| field | type | required | description |",
        "|---|---|---|---|",
    ]
    required = set(schema.get("required", ()))
    for name, sub in schema.get("properties", {}).items():
        description = sub.get("description", "").replace("\n", " ")
        lines.append(
            f"| `{name}` | {_schema_type_label(sub)} "
            f"| {'yes' if name in required else 'no'} "
            f"| {description} |"
        )
    return lines


def schema_markdown() -> str:
    """Render :data:`REPORT_SCHEMA` as the markdown reference page.

    This is the single source of the checked-in
    ``docs/report-schema.md``; ``tests/test_documentation.py`` fails if
    the file and this function's output ever differ.
    """
    lines = [
        "# JSON report schema reference",
        "",
        "<!-- GENERATED from repro.core.report.REPORT_SCHEMA -- do not",
        "     edit by hand.  Regenerate with:",
        "     PYTHONPATH=src python -m repro.core.report > "
        "docs/report-schema.md -->",
        "",
        f"Schema id: `{REPORT_SCHEMA['$id']}` · "
        f"version: `{REPORT_SCHEMA_VERSION}` (semver: field additions "
        "bump the minor version, meaning/type changes bump the major "
        "version).",
        "",
        REPORT_SCHEMA["description"],
        "",
        "Produce a payload with `AnalysisResult.to_json()` (or `repro "
        "analyze --json`); check one with "
        "`repro.core.validate_report(payload)`.",
        "",
        "## Top-level report",
        "",
    ]
    lines.extend(_object_table(REPORT_SCHEMA))
    for name, sub in REPORT_SCHEMA["$defs"].items():
        lines.append("")
        lines.append(f"## {name}")
        lines.append("")
        description = sub.get("description")
        if description:
            lines.append(description)
            lines.append("")
        lines.extend(_object_table(sub))
    lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Atomic file emission.
# ----------------------------------------------------------------------
def atomic_write_text(path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A reader never observes a half-written file and a SIGKILL mid-write
    leaves the previous contents intact: the text lands in a uniquely
    named temporary sibling, is fsync'd, and is renamed over the target
    in one atomic step.  Used for every JSON artifact the package
    persists -- bench results, the serve result cache -- where a torn
    file would poison later runs.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path, payload, *, indent: int = 2) -> None:
    """Serialize ``payload`` and :func:`atomic_write_text` it to ``path``."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")


# ----------------------------------------------------------------------
# Classic text helpers.
# ----------------------------------------------------------------------
def format_ns(seconds: float, digits: int = 3) -> str:
    """Render a time in nanoseconds."""
    return f"{seconds * 1e9:.{digits}f} ns"


def design_fingerprint(netlist: Netlist, graph: StageGraph) -> str:
    """One-paragraph structural summary of a design."""
    stats = netlist.stats()
    census = archetype_census(netlist, graph)
    census_text = ", ".join(
        f"{kind}: {count}" for kind, count in census.items() if count
    )
    return (
        f"{netlist.name}: {stats['devices']} devices "
        f"({stats['enh']} enh / {stats['dep']} dep), "
        f"{stats['nodes']} nodes, {len(graph)} stages "
        f"[{census_text}], "
        f"{stats['inputs']} inputs, {stats['outputs']} outputs, "
        f"{stats['clocks']} clocks"
    )


def slack_histogram(
    arrivals: ArrivalMap,
    bins: int = 10,
) -> list[tuple[float, float, int]]:
    """Histogram of node arrival times: ``(low, high, count)`` per bin.

    The "timing profile" figure of a chip (experiment R-F1): most nodes
    settle early, a thin tail defines the critical region.
    """
    times = sorted(
        {a.node: a.time for a in arrivals.items() if a.pred is not None}.values()
    )
    if not times:
        return []
    low, high = times[0], times[-1]
    if high == low:
        return [(low, high, len(times))]
    width = (high - low) / bins
    counts = [0] * bins
    for t in times:
        idx = min(int((t - low) / width), bins - 1)
        counts[idx] += 1
    return [
        (low + i * width, low + (i + 1) * width, counts[i]) for i in range(bins)
    ]


def format_table(
    headers: list[str],
    rows: list[list[str]],
    *,
    title: str | None = None,
) -> str:
    """Plain-text aligned table (used by benches to print paper tables)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - doc regeneration helper
    print(schema_markdown(), end="")
