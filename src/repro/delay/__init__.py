"""RC delay models for nMOS stage timing.

Public surface:

* :class:`RCTree` -- rooted resistor/capacitor tree
* :func:`elmore_delay`, :func:`lumped_delay` -- first-moment metrics
* :func:`pr_moments`, :func:`pr_bounds`, :class:`PRBounds` --
  Penfield-Rubinstein bounds
* :class:`SlopeModel`, :data:`NO_SLOPE` -- input-ramp correction
* :func:`device_resistance` -- role-aware effective resistance
* :class:`StageDelayCalculator`, :class:`StageArc`, :class:`ArcTiming`,
  :data:`DELAY_MODELS` -- the stage timing-arc extractor
* :func:`auto_workers`, :func:`parallel_crossover`,
  :func:`shutdown_pool`, :func:`pool_diagnostics`,
  :data:`WORKERS_AUTO` -- persistent extraction-pool controls
* :data:`PARAMETERS`, :func:`perturbed`, :func:`evaluate_arcs`,
  :func:`evaluate_timing` -- the parametric (symbolic) delay layer
"""

from .effective_res import FALL, RISE, device_resistance
from .parametric import (
    PARAMETERS,
    SENSITIVITY_REL_STEP,
    evaluate_arcs,
    evaluate_timing,
    perturbed,
)
from .elmore import elmore_delay, lumped_delay
from .penfield import PRBounds, pr_bounds, pr_moments
from .rctree import RCTree
from .slope import NO_SLOPE, SlopeModel
from .stage_delay import (
    DELAY_MODELS,
    PARALLEL_COLD_MIN_DEVICES,
    PARALLEL_MIN_DEVICES,
    WORKERS_AUTO,
    ArcTiming,
    StageArc,
    StageContext,
    StageDelayCalculator,
    auto_workers,
    available_cpus,
    parallel_crossover,
    install_sigterm_cleanup,
    pool_diagnostics,
    shutdown_pool,
)

__all__ = [
    "RCTree",
    "elmore_delay",
    "lumped_delay",
    "PRBounds",
    "pr_bounds",
    "pr_moments",
    "SlopeModel",
    "NO_SLOPE",
    "device_resistance",
    "RISE",
    "FALL",
    "DELAY_MODELS",
    "PARALLEL_MIN_DEVICES",
    "PARALLEL_COLD_MIN_DEVICES",
    "WORKERS_AUTO",
    "ArcTiming",
    "StageArc",
    "StageContext",
    "StageDelayCalculator",
    "auto_workers",
    "available_cpus",
    "parallel_crossover",
    "install_sigterm_cleanup",
    "pool_diagnostics",
    "shutdown_pool",
    "PARAMETERS",
    "SENSITIVITY_REL_STEP",
    "perturbed",
    "evaluate_arcs",
    "evaluate_timing",
]
