"""Effective resistance of a conducting device in a given role.

The static delay model reduces every conducting transistor to a linear
resistor.  The right value depends on *how* the device is being used:

``pulldown``   enhancement device discharging a node to gnd (grounded
               source, full gate drive): the strongest case
``pullup``     depletion load charging a node toward vdd
``pass``       enhancement pass device transmitting a signal; for a rising
               transfer the device saturates near Vdd - Vt and is derated
               further (``Technology.pass_rise_derate``)
``precharge``  clock-gated enhancement device charging a node toward vdd:
               a source follower, so it gets the same rising derate
"""

from __future__ import annotations

from ..errors import ReproError
from ..netlist import DeviceKind, Transistor
from ..tech import Technology

__all__ = ["device_resistance", "RISE", "FALL"]

RISE = "rise"
FALL = "fall"


def device_resistance(
    tech: Technology,
    dev: Transistor,
    role: str,
    transition: str,
) -> float:
    """Effective resistance in ohms of ``dev`` used as ``role`` driving a
    ``transition`` (``"rise"`` or ``"fall"``)."""
    if transition not in (RISE, FALL):
        raise ReproError(f"unknown transition {transition!r}")
    if role == "pulldown":
        if dev.kind is not DeviceKind.ENH:
            raise ReproError(f"{dev.name}: only enhancement devices pull down")
        return tech.r_eff("enh", dev.w, dev.l)
    if role == "pullup":
        if dev.kind is not DeviceKind.DEP:
            raise ReproError(f"{dev.name}: only depletion devices pull up")
        return tech.r_eff("dep", dev.w, dev.l)
    if role == "pass":
        if transition == RISE:
            # Transmitting a high: the device saturates near Vdd - Vt.
            base = tech.r_eff("enh", dev.w, dev.l, pass_mode=True)
            return base * tech.pass_rise_derate
        # Transmitting a low: full gate drive, deep triode -- the device
        # behaves like a pull-down.
        return tech.r_eff("enh", dev.w, dev.l)
    if role == "precharge":
        base = tech.r_eff("enh", dev.w, dev.l, pass_mode=True)
        return base * tech.pass_rise_derate
    raise ReproError(f"unknown device role {role!r}")
