"""Elmore delay on RC trees.

The Elmore delay at a tree node ``e`` is the first moment of the impulse
response::

    T_D(e) = sum_k  R_(k,e) * C_k

where the sum runs over every capacitor ``k`` in the tree and ``R_(k,e)`` is
the resistance of the common prefix of the root-to-``k`` and root-to-``e``
paths.  For a simple chain this reduces to the familiar
``sum_i C_i * (R_1 + ... + R_i)``.

The *lumped* metric -- total path resistance times total tree capacitance --
is also provided, as the ablation strawman for experiment R-T6.
"""

from __future__ import annotations

from .rctree import RCTree

__all__ = ["elmore_delay", "lumped_delay"]


def elmore_delay(tree: RCTree, at: str) -> float:
    """First-moment (Elmore) time constant at node ``at``, seconds.

    The shared resistances are computed for all nodes at once
    (:meth:`RCTree.shared_to`), making the evaluation O(n) instead of
    O(n * depth); the summation order matches the definition above
    term-for-term.
    """
    shared = tree.shared_to(at)
    total = 0.0
    for name, cap, _r_root in tree.items():
        if cap == 0.0:
            continue
        total += shared[name] * cap
    return total


def lumped_delay(tree: RCTree, at: str) -> float:
    """Single-pole lumped estimate: R(root->at) * C(total), seconds.

    Ignores capacitance distribution along the path; always >= the Elmore
    value on the same tree, and increasingly pessimistic for long chains.
    """
    return tree.r_root(at) * tree.total_cap()
