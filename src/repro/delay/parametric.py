"""Parametric analytic delay terms over the technology parameter vector.

The concrete extractors in :mod:`repro.delay.stage_delay` produce plain
floats: every resistance, capacitance, and calibration factor is read
from one fixed :class:`~repro.tech.Technology` at extraction time.  That
makes a multi-corner sweep or a "what moves this path?" query pay the
full structural extraction again for every parameter point.

This module is the symbolic layer on top (ROADMAP: *parametric/symbolic
delay models for instant what-if*, after arXiv:2510.15907).  When a
:class:`~repro.delay.stage_delay.StageDelayCalculator` runs with
``parametric`` enabled, each extracted
:class:`~repro.delay.stage_delay.ArcTiming` carries a **term**: a
replayable analytic recipe over the technology parameter vector, built
once during the structural walk.  A term is a nested tuple:

``("spine", recipes, contribs, root, output, path, truncated)``
    One RC-tree evaluation.  ``recipes`` name the spine resistances as
    symbolic atoms -- ``("res", device, role, transition)`` (one
    :func:`~repro.delay.effective_res.device_resistance` call) or
    ``("load", node)`` (the parallel depletion pull-up combine) --
    and ``contribs`` records, in the exact visit order of the concrete
    tree walk, which prefix resistance each node's capacitance
    multiplies.  Replaying the recipe at any parameter point performs
    the *same floating-point operations in the same order* as concrete
    extraction, so evaluation at the extraction point is bit-for-bit
    identical to the concrete model -- the hard parity gate.

``("max", a, b)``
    A worst-case merge of two terms (``a`` the incumbent).  Both sides
    are evaluated and the corner decides the winner, exactly as the
    concrete ``_merge_arcs``/``_rise_via_pullup`` comparisons would at
    that corner.

Terms are plain picklable tuples, so pooled extraction ships them over
the existing wire format unchanged.  :func:`evaluate_arcs` instantiates
every arc of a stage for one parameter point in a single pass; N
corners therefore cost one symbolic extraction plus N cheap evaluation
sweeps (see ``TimingAnalyzer.analyze_mcmm`` and ``repro.bench.mcmm``).

:data:`PARAMETERS` lists the technology fields the static delay model
actually reads; sensitivity queries (``repro explain --sensitivity``)
perturb each one and report the central-difference slope of the
endpoint arrival.
"""

from __future__ import annotations

import dataclasses

from ..tech import Technology
from .effective_res import device_resistance

__all__ = [
    "PARAMETERS",
    "SENSITIVITY_REL_STEP",
    "perturbed",
    "evaluate_timing",
    "evaluate_arcs",
]

#: Technology fields the static delay model reads.  ``vdd``/``vt``/
#: ``kprime``/``lam`` influence only the electrical checks and the
#: simulator, not the RC delay arithmetic, so they are not listed:
#: their delay sensitivity is identically zero in this model.
PARAMETERS = (
    "r_sq_enh_pulldown",
    "r_sq_enh_pass",
    "r_sq_dep_pullup",
    "pass_rise_derate",
    "c_gate_area",
    "c_diff_area",
    "c_diff_len",
    "c_node_floor",
    "k_fall",
    "k_rise",
)

#: Relative half-step of the central-difference sensitivity estimate:
#: each parameter is evaluated at ``value * (1 +- SENSITIVITY_REL_STEP)``.
SENSITIVITY_REL_STEP = 0.05


def perturbed(
    tech: Technology, parameter: str, rel_step: float
) -> Technology:
    """``tech`` with one parameter scaled by ``(1 + rel_step)``.

    The building block of sensitivity sweeps: ``perturbed(t, "k_fall",
    -0.05)`` is the nominal technology with ``k_fall`` 5% low.
    ``parameter`` must be one of :data:`PARAMETERS`.
    """
    if parameter not in PARAMETERS:
        raise ValueError(
            f"unknown delay-model parameter {parameter!r}; "
            f"choose from {PARAMETERS}"
        )
    value = getattr(tech, parameter)
    return dataclasses.replace(
        tech, **{parameter: value * (1.0 + rel_step)}
    )


class _StageEnv:
    """Per-stage evaluation context: the calculator plus lazy pull-up table.

    ``("load", node)`` recipes replay the parallel depletion pull-up
    combine; the combine order must match the concrete
    ``_pulled_up_nodes`` walk, so the whole table is rebuilt with the
    same helper (cheap: one pass over the stage's devices) the first
    time a load recipe is evaluated.
    """

    __slots__ = ("calc", "stage", "_pulled_up", "_atoms")

    def __init__(self, calc, stage):
        self.calc = calc
        self.stage = stage
        self._pulled_up = None
        # The same atom recurs across a stage's arcs (every fall arc of a
        # gate shares its pulldown resistances; max nodes duplicate whole
        # subterms), so resolved values are memoized per stage.
        self._atoms: dict = {}

    def resistance(self, recipe: tuple) -> float:
        """Instantiate one symbolic resistance atom at ``calc.tech``."""
        value = self._atoms.get(recipe)
        if value is not None:
            return value
        calc = self.calc
        if recipe[0] == "res":
            _tag, name, role, transition = recipe
            value = device_resistance(
                calc.tech, calc.netlist.device(name), role, transition
            )
        else:
            # ("load", node): the combined depletion pull-up resistance.
            if self._pulled_up is None:
                self._pulled_up = calc._pulled_up_nodes(
                    self.stage, calc.graph.devices_of(self.stage)
                )
            value = self._pulled_up[recipe[1]]
        self._atoms[recipe] = value
        return value


#: Lazily-bound :class:`~repro.delay.stage_delay.ArcTiming` (the import
#: is deferred because stage_delay imports this module the same way).
_ArcTiming = None


def _evaluate_term(env: _StageEnv, term: tuple):
    """Evaluate one term at the environment's parameter point."""
    global _ArcTiming
    if _ArcTiming is None:
        from .stage_delay import ArcTiming as _ArcTiming  # noqa: F811

    if term[0] == "max":
        a = _evaluate_term(env, term[1])
        b = _evaluate_term(env, term[2])
        # Same tie rule as the concrete merge: the incumbent (a) wins.
        winner = a if a.delay >= b.delay else b
        return _ArcTiming(
            delay=winner.delay,
            tau=winner.tau,
            path=winner.path,
            truncated=winner.truncated,
            term=term,
        )

    _tag, recipes, contribs, root, output, path, truncated = term
    calc = env.calc
    # Prefix resistances: prefix[i] is the root->(i-th spine node)
    # resistance, accumulated in spine order like the concrete walk.
    prefix = [0.0]
    r_total = 0.0
    for recipe in recipes:
        r_total += env.resistance(recipe)
        prefix.append(r_total)
    # Capacitance contributions in the recorded visit order.  The
    # ``cap != 0.0`` guard replays the concrete walk's skip exactly --
    # membership in ``contribs`` is structural, the skip is numeric.
    tau = 0.0
    node_cap = calc._node_cap
    for idx, node in contribs:
        cap = node_cap(node)
        if cap != 0.0:
            tau += prefix[idx] * cap
    k = calc._k_factor(root)
    if root == calc.netlist.gnd:
        # Max subterms sharing a pulldown spine repeat (output, r_total);
        # the derate is a pure function of the two, so memoize with the
        # resistance atoms.
        key = ("derate", output, r_total)
        derate = env._atoms.get(key)
        if derate is None:
            derate = calc._ratio_derate(output, r_total)
            env._atoms[key] = derate
        k *= derate
    return _ArcTiming(
        delay=k * tau, tau=tau, path=path, truncated=truncated, term=term
    )


#: Sentinel distinguishing "timing is None" from "timing has no term".
_MISSING = object()


def _evaluate_timing(env: _StageEnv, timing):
    if timing is None:
        return None
    if timing.term is None:
        return _MISSING
    return _evaluate_term(env, timing.term)


def evaluate_timing(calc, stage, timing):
    """Re-evaluate one term-carrying :class:`ArcTiming` at ``calc.tech``.

    Returns a fresh timing whose floats are what concrete extraction at
    ``calc``'s technology would have produced (bit-for-bit at the term's
    own extraction point), or ``None`` if ``timing`` is ``None``.
    Raises :class:`ValueError` if the timing carries no term.
    """
    result = _evaluate_timing(_StageEnv(calc, stage), timing)
    if result is _MISSING:
        raise ValueError(
            "timing carries no parametric term; extract with "
            "parametric=True first"
        )
    return result


def evaluate_arcs(calc, stage, arcs):
    """Instantiate a stage's term-carrying arcs at ``calc``'s tech point.

    ``arcs`` are the symbolic source's merged :class:`StageArc` list for
    ``stage``; the result is the arc list a full concrete extraction at
    ``calc.tech`` would produce, at evaluation cost (no path search).
    Returns ``None`` when any timing lacks a term (the caller falls back
    to concrete extraction), so a partially-symbolic source can never
    produce a silently wrong arc list.
    """
    from .stage_delay import StageArc

    env = _StageEnv(calc, stage)
    evaluated = []
    for arc in arcs:
        rise = _evaluate_timing(env, arc.rise)
        fall = _evaluate_timing(env, arc.fall)
        if rise is _MISSING or fall is _MISSING:
            return None
        evaluated.append(
            StageArc(
                stage_index=arc.stage_index,
                trigger=arc.trigger,
                via=arc.via,
                output=arc.output,
                inverting=arc.inverting,
                rise=rise,
                fall=fall,
            )
        )
    return evaluated
