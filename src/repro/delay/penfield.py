"""Penfield-Rubinstein style bounds on RC-tree delay.

Rubinstein, Penfield, and Horowitz ("Signal delay in RC tree networks",
IEEE TCAD 1983 -- contemporaneous with TV) bound the step response of an RC
tree between computable envelopes.  We expose the three classic first-moment
quantities for a measurement node ``e``:

``T_P``      = sum_k R_(k,k) C_k      (total tree "charge transfer" time)
``T_DP(e)``  = sum_k R_(k,e) C_k      (the Elmore delay at ``e``)
``T_R(e)``   = sum_k R_(k,e)^2 C_k / R_(e,e)

with ``T_R(e) <= T_DP(e) <= T_P``.  The voltage at ``e`` is bounded so that
the time to reach a fraction ``v`` of the final value satisfies::

    T_R(e) * ln(1/(1-v))  <=  t_v(e)  <=  T_P * ln(1/(1-v))   (approx.)

We return these as ``(lower, upper)`` for ``v`` given by the caller.  The
bounds are used as the ``pr-min``/``pr-max`` delay models in the ablation
experiment R-T6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .rctree import RCTree

__all__ = ["PRBounds", "pr_moments", "pr_bounds"]


@dataclass(frozen=True)
class PRBounds:
    """Bounds and moments for one measurement node.

    All values in seconds.  ``elmore`` is T_DP(e); ``lower``/``upper``
    bracket the time to the requested crossing fraction.
    """

    t_r: float
    elmore: float
    t_p: float
    lower: float
    upper: float


def pr_moments(tree: RCTree, at: str) -> tuple[float, float, float]:
    """Return ``(T_R(at), T_DP(at), T_P)`` for the tree."""
    r_ee = tree.r_root(at)
    shared = tree.shared_to(at)
    t_p = 0.0
    t_dp = 0.0
    t_r = 0.0
    for name, cap, r_kk in tree.items():
        if cap == 0.0:
            continue
        r_ke = shared[name]
        t_p += r_kk * cap
        t_dp += r_ke * cap
        if r_ee > 0.0:
            t_r += (r_ke * r_ke) * cap / r_ee
    return (t_r, t_dp, t_p)


def pr_bounds(tree: RCTree, at: str, fraction: float = 0.5) -> PRBounds:
    """Bracket the time for node ``at`` to cross ``fraction`` of its swing."""
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"crossing fraction must be in (0, 1), got {fraction}")
    t_r, t_dp, t_p = pr_moments(tree, at)
    scale = math.log(1.0 / (1.0 - fraction))
    return PRBounds(
        t_r=t_r,
        elmore=t_dp,
        t_p=t_p,
        lower=t_r * scale,
        upper=t_p * scale,
    )
