"""RC tree data structure for stage delay estimation.

A conducting sub-network of a stage is abstracted as a *tree* of linear
resistors (the effective resistances of conducting transistors) rooted at
the driving point (a rail, or the boundary node injecting the signal), with
a grounded capacitor at every node.  This is the abstraction underlying both
the Elmore metric (:mod:`repro.delay.elmore`) and the Penfield-Rubinstein
bounds (:mod:`repro.delay.penfield`).

The builder accepts an arbitrary resistor *graph* and derives a spanning
tree by breadth-first search from the root; redundant (parallel) resistors
are dropped, which overestimates path resistance -- a deliberate, documented
pessimism consistent with TV's value-independent worst-casing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import ReproError

__all__ = ["RCTree"]


@dataclass
class _TreeNode:
    name: str
    cap: float
    parent: str | None
    r_up: float  # resistance of the edge toward the parent
    r_root: float  # accumulated resistance from the root


class RCTree:
    """A rooted RC tree.

    Build with :meth:`RCTree.from_graph`, or incrementally with
    :meth:`add_child`.  All resistances in ohms, capacitances in farads.
    """

    def __init__(self, root: str):
        if not root:
            raise ReproError("RC tree root name must be non-empty")
        self.root = root
        self._nodes: dict[str, _TreeNode] = {
            root: _TreeNode(root, 0.0, None, 0.0, 0.0)
        }
        self._children: dict[str, list[str]] = {root: []}

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        root: str,
        edges: list[tuple[str, str, float]],
        caps: dict[str, float],
    ) -> "RCTree":
        """Build a spanning RC tree from a resistor graph.

        ``edges`` are undirected ``(a, b, ohms)`` triples; ``caps`` maps node
        name to farads (missing nodes get 0).  Nodes unreachable from the
        root are silently excluded (they do not load the transition).
        Parallel/back edges are dropped (see module docstring).
        """
        adjacency: dict[str, list[tuple[str, float]]] = {}
        for a, b, r in edges:
            if r < 0:
                raise ReproError(f"negative resistance {r} on edge {a}-{b}")
            adjacency.setdefault(a, []).append((b, r))
            adjacency.setdefault(b, []).append((a, r))

        tree = cls(root)
        tree._nodes[root].cap = caps.get(root, 0.0)
        frontier = deque([root])
        while frontier:
            current = frontier.popleft()
            for neighbor, r in adjacency.get(current, ()):
                if neighbor in tree._nodes:
                    continue
                tree.add_child(current, neighbor, r, caps.get(neighbor, 0.0))
                frontier.append(neighbor)
        return tree

    def add_child(self, parent: str, name: str, r: float, cap: float) -> None:
        """Attach ``name`` below ``parent`` through resistance ``r``."""
        if parent not in self._nodes:
            raise ReproError(f"RC tree has no node {parent!r}")
        if name in self._nodes:
            raise ReproError(f"RC tree already has node {name!r}")
        if r < 0 or cap < 0:
            raise ReproError(
                f"RC tree element values must be >= 0 (r={r}, cap={cap})"
            )
        parent_node = self._nodes[parent]
        self._nodes[name] = _TreeNode(
            name, cap, parent, r, parent_node.r_root + r
        )
        self._children.setdefault(parent, []).append(name)
        self._children[name] = []

    def add_cap(self, name: str, cap: float) -> None:
        """Add capacitance to an existing tree node."""
        if name not in self._nodes:
            raise ReproError(f"RC tree has no node {name!r}")
        self._nodes[name].cap += cap

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list[str]:
        return list(self._nodes)

    def cap(self, name: str) -> float:
        """Capacitance at a tree node, farads."""
        return self._nodes[name].cap

    def r_root(self, name: str) -> float:
        """Total resistance from the root to ``name``."""
        return self._nodes[name].r_root

    def r_up(self, name: str) -> float:
        """Resistance of the edge from ``name`` toward its parent."""
        return self._nodes[name].r_up

    def parent(self, name: str) -> str | None:
        """Parent node name (None for the root)."""
        return self._nodes[name].parent

    def shared_to(self, at: str) -> dict[str, float]:
        """``R_(k,at)`` (shared root-path resistance) for *every* node ``k``.

        Nodes on the root-to-``at`` path share their full ``r_root``; any
        other node shares exactly what its parent shares.  One sweep over
        the insertion order (parents always precede children) computes all
        values in O(n), replacing the per-capacitor common-prefix walk of
        :meth:`shared_resistance` in the delay-metric inner loops.
        """
        on_path = set(self.path_to_root(at))
        shared: dict[str, float] = {}
        for name, node in self._nodes.items():
            if name in on_path:
                shared[name] = node.r_root
            else:
                shared[name] = shared[node.parent]
        return shared

    def total_cap(self) -> float:
        """Sum of all capacitance in the tree."""
        return sum(n.cap for n in self._nodes.values())

    def path_to_root(self, name: str) -> list[str]:
        """Node names from ``name`` up to (and including) the root."""
        if name not in self._nodes:
            raise ReproError(f"RC tree has no node {name!r}")
        path = [name]
        node = self._nodes[name]
        while node.parent is not None:
            path.append(node.parent)
            node = self._nodes[node.parent]
        return path

    def shared_resistance(self, a: str, b: str) -> float:
        """Resistance of the common root-path prefix of ``a`` and ``b``.

        This is the R_ka term of the Elmore/PR formulas: the resistance
        shared between the root-to-``a`` and root-to-``b`` paths.
        """
        ancestors_a = {}
        for name in self.path_to_root(a):
            ancestors_a[name] = self._nodes[name].r_root
        for name in self.path_to_root(b):
            if name in ancestors_a:
                return ancestors_a[name]
        raise ReproError(
            f"nodes {a!r} and {b!r} share no ancestor (corrupt tree)"
        )  # pragma: no cover - unreachable on a well-formed tree

    def items(self) -> list[tuple[str, float, float]]:
        """``(name, cap, r_root)`` for every node (root included)."""
        return [(n.name, n.cap, n.r_root) for n in self._nodes.values()]
