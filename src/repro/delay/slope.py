"""Slope (input-ramp) correction and slew estimation.

The raw RC metrics assume a step input.  Real stage inputs are ramps, and a
slow input both delays the switching point and slows the output.  TV-class
analyzers fold this in with a linear correction::

    delay  = intrinsic + alpha * input_slew
    slew   = gamma * tau           (output 10-90% transition time)

where ``tau`` is the stage's Elmore time constant.  ``alpha`` ~ 0.3-0.5 for
ratioed nMOS (an input crossing the gate threshold late by a fraction of its
slew delays the output by about that much); ``gamma`` = ln 9 = 2.197 for a
single pole.  The coefficients live on :class:`SlopeModel` so the ablation
benchmark (R-T6) can switch the correction off (``alpha = gamma_in = 0``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SlopeModel", "NO_SLOPE"]


@dataclass(frozen=True)
class SlopeModel:
    """Linear slope-correction coefficients.

    ``alpha``: fraction of the input slew added to the stage delay.
    ``alpha_tracking``: the same, for *tracking* arcs -- non-inverting
    channel transfers through pass networks, whose output follows the
    input continuously instead of waiting for a gate threshold crossing.
    ``gamma``: output slew as a multiple of the stage time constant.
    ``beta``: fraction of the *input* slew inherited by the output slew
    (a slowly driven stage also transitions slowly).
    """

    alpha: float = 0.35
    alpha_tracking: float = 0.05
    gamma: float = math.log(9.0)  # 10%-90% of a single pole
    beta: float = 0.25

    def delay(
        self,
        intrinsic: float,
        input_slew: float,
        *,
        tracking: bool = False,
    ) -> float:
        """Slope-corrected stage delay, seconds."""
        alpha = self.alpha_tracking if tracking else self.alpha
        return intrinsic + alpha * input_slew

    def output_slew(self, tau: float, input_slew: float) -> float:
        """Estimated output transition time, seconds."""
        return self.gamma * tau + self.beta * input_slew


#: A disabled slope model: step-input delays, pure single-pole slews.
NO_SLOPE = SlopeModel(alpha=0.0, alpha_tracking=0.0, gamma=math.log(9.0), beta=0.0)
