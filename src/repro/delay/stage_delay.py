"""Stage timing-arc extraction: TV's transistor-level delay calculator.

For each stage, this module enumerates *timing arcs*: (trigger, output)
pairs with intrinsic rise/fall delays.  An arc's trigger is either

* a **gate** input of the stage -- a node switching the gate of a member
  device (ordinary logic inputs, and clocks gating pass switches or
  precharge devices), or
* a **channel** boundary -- an externally driven node (primary input or
  clock) injecting signal directly into the stage's pass network.

Delay of an arc is computed on an RC tree built from the conducting
sub-network, with TV's value-independent worst-casing:

* **fall** (discharge): the maximum-resistance simple path from the output
  to gnd that passes through a device gated by the trigger, with every
  other conducting device attached as a capacitive branch;
* **rise** (charge): from vdd through the depletion load of a pulled-up
  node, then the maximum-resistance pass path to the output;
* **precharge rise**: from vdd through the clock-gated precharge device;
* **pass transfer**: from the injecting boundary node through the
  maximum-resistance directed pass path.

The RC tree metric is selected by ``model``: ``"elmore"`` (default),
``"lumped"``, ``"pr-min"``, or ``"pr-max"`` (ablation experiment R-T6).
Path enumeration is exact up to ``max_paths`` simple paths per arc; if the
cap is hit the arc is marked ``truncated`` (never silently).

Throughput
----------
Extraction is organized around a per-stage :class:`StageContext` that
computes the conduction/pass edge lists and their adjacency maps **once**
per ``(stage, active_clocks, open_gates)`` and shares them across all six
arc-family extractors; adjacency entries pre-resolve the per-device
lookups (gate, one-hot group, flow legality, boundary-ness) so the
path-search inner loops run on plain tuples.  Because stages are
channel-connected components they are independent, and
:meth:`StageDelayCalculator.all_arcs` can fan extraction out over a
worker pool (``parallel=True`` / ``workers=N`` / ``workers="auto"``)
with a deterministic stage-index merge order.

The process flavour of that pool is **persistent**: one module-level
fork pool (:data:`_POOL`) is started lazily and reused across
``all_arcs`` calls, clock corners, and repeated runs of the same
calculator, so the fork cost is paid once per calculator instead of once
per sweep.  Workers attach the calculator -- netlist, stage graph, and
warm per-device caches included -- as a **shared immutable snapshot**
inherited by the fork at pool start; per-task traffic is only
``(run token, corner, chunk of stage indices)`` down and compact arc
tuples back (never the netlist, never dataclass pickles).  Stage batches
are **sized by estimated device work** (device count squared, a proxy
for the superlinear path-search cost) so one oversized stage -- e.g. a
barrel-shifter matrix -- cannot serialize a whole chunk of small ones.
``workers="auto"`` applies a measured **crossover heuristic**: serial
below :data:`PARALLEL_MIN_DEVICES` (pool already warm) or
:data:`PARALLEL_COLD_MIN_DEVICES` (pool must cold-start), and always
serial on a single-CPU host.  :func:`shutdown_pool` (registered
``atexit``) tears the pool down idempotently; a timed-out or broken pool
is terminated -- never reused and never orphaned.  See
``repro/bench/perf.py`` for the regression harness that gates these
paths.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import itertools
import math
import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, replace

from .. import robust
from ..errors import DeadlineError, ReproError, StageError
from ..trace import NULL_TRACE
from ..netlist import DeviceKind, FlowDirection, Netlist, Transistor
from ..stages import Stage, StageGraph
from ..tech import Technology
from .effective_res import FALL, RISE, device_resistance
from .elmore import elmore_delay, lumped_delay
from .penfield import pr_bounds
from .rctree import RCTree
from .slope import SlopeModel

__all__ = [
    "ArcTiming",
    "StageArc",
    "StageContext",
    "StageDelayCalculator",
    "DELAY_MODELS",
    "PARALLEL_MIN_DEVICES",
    "PARALLEL_COLD_MIN_DEVICES",
    "WORKERS_AUTO",
    "available_cpus",
    "auto_workers",
    "parallel_crossover",
    "shutdown_pool",
    "pool_diagnostics",
]

DELAY_MODELS = ("elmore", "lumped", "pr-min", "pr-max")

#: Crossing fraction for the 50% delay definition used throughout.
_CROSSING = 0.5

#: Crossover floor when the persistent pool is already **warm** for this
#: calculator (or the executor is thread-based, which has no startup
#: cost): below this device count ``all_arcs`` extracts serially --
#: dispatch and result traffic would dominate the work.  An explicit
#: ``parallel=True`` overrides it.
PARALLEL_MIN_DEVICES = 1024

#: Crossover floor when the pool would have to **cold-start** (fork the
#: workers first): the fork of a large parent heap costs tens of
#: milliseconds, so the netlist must be big enough to amortize it.
PARALLEL_COLD_MIN_DEVICES = 4096

#: ``workers`` spec selecting the measured crossover heuristic: the pool
#: width follows :func:`auto_workers` and the serial/parallel decision
#: follows :func:`parallel_crossover`.
WORKERS_AUTO = "auto"

#: Load-balance oversubscription: aim for about this many chunks per
#: worker so an unlucky chunk cannot idle the rest of the pool.
_CHUNKS_PER_WORKER = 4

#: Cap on ``workers="auto"`` resolution; beyond this the result-decode
#: loop in the parent becomes the bottleneck.
_AUTO_WORKERS_CAP = 8


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def auto_workers() -> int:
    """Pool width ``workers="auto"`` resolves to on this host."""
    return max(1, min(available_cpus(), _AUTO_WORKERS_CAP))


def parallel_crossover(
    device_count: int, *, pool_warm: bool, cpus: int | None = None
) -> bool:
    """True if a pooled sweep is expected to beat a serial one.

    The heuristic that replaced the bare ``PARALLEL_MIN_DEVICES`` test:
    parallel extraction pays only on a multi-CPU host, and only when the
    netlist is large enough to amortize the pool traffic -- a higher bar
    (:data:`PARALLEL_COLD_MIN_DEVICES`) when the workers would have to
    be forked first than when the pool is already warm
    (:data:`PARALLEL_MIN_DEVICES`).  Thresholds were measured with
    ``repro.bench.perf``; an explicit ``parallel=`` argument to
    :meth:`StageDelayCalculator.all_arcs` bypasses this entirely.
    """
    cpus = available_cpus() if cpus is None else cpus
    if cpus < 2:
        return False
    floor = PARALLEL_MIN_DEVICES if pool_warm else PARALLEL_COLD_MIN_DEVICES
    return device_count >= floor


def _validate_workers(spec) -> int | str:
    """Validate a ``workers`` spec: positive int or ``"auto"``.

    Rejects -- rather than silently clamping -- zero, negative, and
    boolean specs.  ``workers=0`` used to mean 1, which hid caller bugs
    (a miscomputed width quietly became serial), and ``workers=True``
    is almost always a misplaced ``parallel=True``.
    """
    if isinstance(spec, bool):
        raise StageError(
            f"workers must be a positive integer or {WORKERS_AUTO!r}, got "
            f"{spec!r} (did you mean all_arcs(parallel={spec!r})?)"
        )
    if spec == WORKERS_AUTO:
        return WORKERS_AUTO
    try:
        value = int(spec)
    except (TypeError, ValueError):
        raise StageError(
            f"workers must be a positive integer or {WORKERS_AUTO!r}, "
            f"got {spec!r}"
        ) from None
    if value < 1:
        raise StageError(
            f"workers must be a positive integer or {WORKERS_AUTO!r}, "
            f"got {spec!r}"
        )
    return value


#: Monotonic identity for calculators; with the invalidation epoch it
#: tells the persistent pool whether its forked snapshot is still valid.
_CALC_TOKENS = itertools.count(1)


@dataclass(frozen=True)
class ArcTiming:
    """Timing of one output transition of an arc.

    ``delay`` is the intrinsic 50%-crossing delay (seconds), already scaled
    by the technology's calibration factor; ``tau`` is the underlying Elmore
    time constant (used for slew estimation); ``path`` names the devices on
    the worst resistive path; ``truncated`` is set if path enumeration hit
    its cap.

    ``term`` is the optional parametric recipe behind the floats (see
    :mod:`repro.delay.parametric`): a plain nested tuple that replays
    this timing's arithmetic at any technology point.  ``None`` (the
    default) in concrete mode; populated when the calculator extracts
    with ``parametric`` enabled.
    """

    delay: float
    tau: float
    path: tuple[str, ...] = ()
    truncated: bool = False
    term: tuple | None = None


@dataclass(frozen=True)
class StageArc:
    """One timing arc through a stage.

    ``inverting`` tells the arrival propagator which input transition
    produces which output transition: an inverting arc maps input-rise to
    output-fall (gate logic); a non-inverting arc maps rise to rise (pass
    transfer, precharge, clocked switches).
    """

    stage_index: int
    trigger: str
    via: str  # "gate" or "channel"
    output: str
    inverting: bool
    rise: ArcTiming | None
    fall: ArcTiming | None

    def timing(self, transition: str) -> ArcTiming | None:
        """The arc timing for ``"rise"`` or ``"fall"`` (None if absent)."""
        return self.rise if transition == RISE else self.fall


class StageContext:
    """Shared per-stage extraction state.

    Holds everything the six arc-family extractors need about one
    ``(stage, active_clocks, open_gates)`` combination, computed lazily and
    exactly once: resolved member devices, conduction/pass edge lists per
    transition, their adjacency maps (with per-hop device facts
    pre-resolved), the pulled-up node table, and the device-name-to-gate
    map.  Before this existed, every extractor rebuilt its own edge lists
    and every path search rebuilt its own adjacency dict -- roughly 8 edge
    builds and 10+ adjacency builds per stage per extraction.
    """

    __slots__ = (
        "calc",
        "stage",
        "devices",
        "active_clocks",
        "open_gates",
        "gate_of",
        "_pass",
        "_cond",
        "_adj",
        "_pulled",
        "_pulled_set",
    )

    def __init__(
        self,
        calc: "StageDelayCalculator",
        stage: Stage,
        active_clocks: frozenset[str] | None,
        open_gates: frozenset[str],
    ):
        self.calc = calc
        self.stage = stage
        self.devices = calc.graph.devices_of(stage)
        self.active_clocks = active_clocks
        self.open_gates = open_gates
        self.gate_of = {dev.name: dev.gate for dev in self.devices}
        self._pass: dict[str, list] = {}
        self._cond: dict[str, list] = {}
        self._adj: dict[tuple[str, str], dict] = {}
        self._pulled: dict[str, float] | None = None
        self._pulled_set = False

    def clock_open(self, dev: Transistor) -> bool:
        """True if the device is cut in this context (see calculator)."""
        return self.calc._clock_open(dev, self.active_clocks, self.open_gates)

    def pass_edges(self, transition: str) -> list:
        """Pass-network edges for a transition (computed once)."""
        edges = self._pass.get(transition)
        if edges is None:
            edges = self.calc._pass_edges(
                self.stage,
                self.devices,
                transition,
                self.active_clocks,
                self.open_gates,
            )
            self._pass[transition] = edges
        return edges

    def conduction_edges(self, transition: str) -> list:
        """Discharge-path edges for a transition (computed once)."""
        edges = self._cond.get(transition)
        if edges is None:
            edges = self.calc._conduction_edges(
                self.stage,
                self.devices,
                transition,
                self.active_clocks,
                self.open_gates,
            )
            self._cond[transition] = edges
        return edges

    def pass_adjacency(self, transition: str) -> dict:
        """Adjacency map of the pass edges (computed once)."""
        key = ("pass", transition)
        adj = self._adj.get(key)
        if adj is None:
            adj = self.calc._build_adjacency(self.pass_edges(transition))
            self._adj[key] = adj
        return adj

    def conduction_adjacency(self, transition: str) -> dict:
        """Adjacency map of the conduction edges (computed once)."""
        key = ("cond", transition)
        adj = self._adj.get(key)
        if adj is None:
            adj = self.calc._build_adjacency(self.conduction_edges(transition))
            self._adj[key] = adj
        return adj

    @property
    def pulled_up(self) -> dict[str, float]:
        """Stage nodes with depletion pull-ups (computed once)."""
        if not self._pulled_set:
            self._pulled = self.calc._pulled_up_nodes(self.stage, self.devices)
            self._pulled_set = True
        return self._pulled


class StageDelayCalculator:
    """Extracts timing arcs from stages of one netlist.

    Parameters
    ----------
    netlist, graph:
        The circuit and its stage decomposition (flow directions should
        already be assigned by :func:`repro.flow.infer_flow`).
    model:
        RC metric: one of :data:`DELAY_MODELS`.
    slope:
        Slope-correction model (used by the analyzer; stored here so all
        timing policy lives in one object).
    max_paths:
        Cap on simple-path enumeration per arc.
    workers:
        Default fan-out width of :meth:`all_arcs`: an int (1 = serial)
        or :data:`WORKERS_AUTO` (``"auto"``) to resolve the width from
        the host CPU count and pick serial vs. parallel per sweep with
        the :func:`parallel_crossover` heuristic.
    executor:
        ``"process"``, ``"thread"``, or ``"auto"`` (fork-based processes
        where the platform has them, threads otherwise).  The process
        flavour runs on the module's persistent pool (see
        :func:`shutdown_pool`).
    trace:
        Optional :class:`repro.trace.Trace` receiving the supervision
        counters (``extract_retries``, ``extract_timeouts``,
        ``extract_corrupt_results``, ``extract_fallback_stages``,
        ``extract_pool_failures``).
    on_error:
        Error policy (:data:`repro.robust.ERROR_POLICIES`).  Under
        ``strict`` (default) a stage whose extraction fails raises; under
        ``quarantine``/``best-effort`` the stage is excised
        (:meth:`quarantine_stage`) and :meth:`all_arcs` returns the arcs
        of the surviving stages.

    Supervision knobs (attributes, overridable per instance):
    ``task_timeout`` (seconds one pool task may run before it is treated
    as hung), ``task_retries`` (pool re-submissions after a failed
    attempt), ``retry_backoff`` (initial inter-attempt sleep; doubles per
    retry).  Exhausted retries never lose work: the serial walk in
    :meth:`all_arcs` recomputes whatever the pool did not deliver.
    """

    def __init__(
        self,
        netlist: Netlist,
        graph: StageGraph,
        *,
        model: str = "elmore",
        slope: SlopeModel | None = None,
        max_paths: int = 4096,
        tech: Technology | None = None,
        workers: int | str = 1,
        executor: str = "auto",
        trace=None,
        on_error: str = robust.STRICT,
    ):
        if model not in DELAY_MODELS:
            raise StageError(
                f"unknown delay model {model!r}; choose from {DELAY_MODELS}"
            )
        if executor not in ("auto", "process", "thread"):
            raise StageError(
                f"unknown executor {executor!r}; choose auto/process/thread"
            )
        self.netlist = netlist
        self.graph = graph
        self.model = model
        self.slope = slope if slope is not None else SlopeModel()
        self.max_paths = max_paths
        self.tech = tech or netlist.tech
        self.workers = _validate_workers(workers)
        self.executor = executor
        #: Persistent-pool binding: identity of this calculator plus an
        #: epoch bumped by :meth:`invalidate_devices`, so a forked worker
        #: snapshot is never reused after a device edit.
        self._pool_token = next(_CALC_TOKENS)
        self._pool_epoch = 0
        self.trace = trace if trace is not None else NULL_TRACE
        self.on_error = robust.validate_policy(on_error)
        #: Stage indices excised from analysis; :meth:`all_arcs` skips them.
        self.quarantined: set[int] = set()
        #: :class:`repro.robust.Diagnostic` records for quarantined stages.
        self.diagnostics: list[robust.Diagnostic] = []
        self.task_timeout = 60.0
        self.task_retries = 2
        self.retry_backoff = 0.05
        #: Optional absolute ``time.monotonic()`` extraction deadline,
        #: armed per run via :meth:`set_deadline`.  Once it passes,
        #: uncached stages raise :class:`~repro.errors.DeadlineError`
        #: under ``strict`` and are skipped (with a ``deadline-exceeded``
        #: diagnostic) under the degraded policies; cached stages are
        #: always served -- a cache hit is free.
        self.deadline: float | None = None
        #: Transient per-run accounting: stages skipped because the
        #: deadline passed, and the diagnostics describing the skips.
        #: Unlike ``quarantined``/``diagnostics`` these never persist --
        #: the next :meth:`set_deadline` clears them, so one run that
        #: timed out cannot poison the next.
        self.deadline_skipped: set[int] = set()
        self.deadline_diagnostics: list[robust.Diagnostic] = []
        self._cap_cache: dict[str, float] = {}
        self._arc_cache: dict[tuple, list[StageArc]] = {}
        # name -> (gate, group, source, out_of_source, out_of_drain,
        #          source_is_boundary, drain_is_boundary); see
        # _device_fact_map.
        self._device_facts: dict[str, tuple] | None = None
        #: When True, extracted ArcTimings carry parametric terms (see
        #: repro.delay.parametric).  Off by default: term building costs
        #: a little per spine, and concrete mode must stay byte-stable.
        self.parametric = False
        #: Symbolic sibling serving term-carrying arcs for this
        #: structure, built lazily by :meth:`parametric_source`.
        self._parametric_source: "StageDelayCalculator | None" = None
        #: When set, :meth:`arcs` evaluates this source's terms at our
        #: tech instead of extracting (see :meth:`_arcs_from_terms`).
        self._term_source: "StageDelayCalculator | None" = None

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def arcs(
        self,
        stage: Stage,
        active_clocks: frozenset[str] | None = None,
        open_gates: frozenset[str] = frozenset(),
    ) -> list[StageArc]:
        """All timing arcs of ``stage`` (deduplicated, worst-case merged).

        ``active_clocks`` selects the clock phase under analysis: devices
        gated by a clock *not* in the set are treated as open (cut), and
        clock-triggered arcs exist only for active clocks.  ``None`` means
        the value-independent worst case: every clocked switch is closed --
        the right view for purely combinational circuits and for a quick
        whole-circuit longest-path estimate.

        ``open_gates`` names additional control nodes that are provably low
        in the scenario under analysis -- qualified clocks derived from the
        phase (e.g. a word line ``dec AND phi2`` during phi1).  Devices they
        gate are cut exactly like inactive clocks.
        """
        cache_key = (stage.index, active_clocks, open_gates)
        cached = self._arc_cache.get(cache_key)
        if cached is not None:
            return cached
        if self._term_source is not None:
            evaluated = self._arcs_from_terms(
                stage, active_clocks, open_gates
            )
            if evaluated is not None:
                self._arc_cache[cache_key] = evaluated
                return evaluated
        ctx = StageContext(self, stage, active_clocks, open_gates)
        raw: list[StageArc] = []
        raw.extend(self._gate_arcs(ctx))
        raw.extend(self._clocked_switch_arcs(ctx))
        raw.extend(self._precharge_arcs(ctx))
        raw.extend(self._follower_arcs(ctx))
        raw.extend(self._channel_arcs(ctx))
        raw.extend(self._select_arcs(ctx))
        merged = _merge_arcs(raw)
        self._arc_cache[cache_key] = merged
        return merged

    def _arcs_from_terms(
        self,
        stage: Stage,
        active_clocks: frozenset[str] | None,
        open_gates: frozenset[str],
    ) -> list[StageArc] | None:
        """Evaluate the term source's arcs for ``stage`` at our tech.

        The source extracts (and caches) term-carrying arcs once; this
        calculator instantiates them at its own parameter point -- an
        evaluation pass, no path search.  Returns ``None`` when any
        timing lacks a term, in which case the caller falls back to full
        concrete extraction for the stage.
        """
        from .parametric import evaluate_arcs

        source = self._term_source
        src_arcs = source.arcs(stage, active_clocks, open_gates)
        evaluated = evaluate_arcs(self, stage, src_arcs)
        if evaluated is not None:
            self.trace.incr("parametric_stage_evals")
        return evaluated

    def parametric_source(self) -> "StageDelayCalculator":
        """The memoized symbolic sibling of this calculator.

        A :meth:`retarget` clone at this calculator's own technology
        with ``parametric`` enabled: its extractions emit term-carrying
        arcs that corner clones evaluate instead of re-extracting (see
        ``TimingAnalyzer.analyze_mcmm``).  It shares this calculator's
        pool binding, so pooled symbolic sweeps reuse the same
        persistent pool, and :meth:`invalidate_devices` keeps its caches
        in lockstep with ours.
        """
        source = self._parametric_source
        if source is None:
            source = self.retarget(self.tech)
            source.parametric = True
            self._parametric_source = source
        return source

    def invalidate_devices(self, device_names) -> None:
        """Drop cached results touched by edited devices (e.g. resizing).

        Invalidates the capacitance cache of every terminal node and the
        arc cache of every stage owning one of those nodes -- the exact
        footprint a width change has on the timing model.  Everything else
        stays cached, which is what makes the optimizer's re-analysis
        loop cheap.
        """
        nodes: set[str] = set()
        for name in device_names:
            dev = self.netlist.device(name)
            nodes.update((dev.gate, dev.source, dev.drain))
        for node in nodes:
            self._cap_cache.pop(node, None)
        self._device_facts = None
        # Any forked worker snapshot predates this edit; the persistent
        # pool rebinds (re-forks) on the next pooled sweep.
        self._pool_epoch += 1
        stale = set()
        for node in nodes:
            stage = self.graph.stage_of(node)
            if stage is not None:
                stale.add(stage.index)
        if stale:
            self._arc_cache = {
                key: arcs
                for key, arcs in self._arc_cache.items()
                if key[0] not in stale
            }
        if self._parametric_source is not None:
            # The symbolic sibling shares our pool binding and serves
            # corner clones; its terms predate the edit too.
            self._parametric_source.invalidate_devices(device_names)

    def retarget(self, tech: Technology) -> "StageDelayCalculator":
        """A calculator evaluating the same structure at ``tech``.

        This is the MCMM re-evaluation hook: the clone shares the
        netlist, the stage graph, and the (tech-independent) device-fact
        map, so only the numeric delay terms -- resistances,
        capacitances, k-factors -- are recomputed at the new corner.
        Delay caches (``_cap_cache``/``_arc_cache``) start empty because
        their contents are corner-specific.

        The clone also inherits this calculator's persistent-pool
        binding: the structural snapshot the forked workers hold is
        corner-invariant, so a multi-corner sweep reuses **one** fixed
        pool instead of rebinding per corner -- workers receive the
        corner with each task and retarget their own snapshot
        (see :func:`_pool_extract`).

        Because the clone runs the identical extraction code on the
        identical netlist, its results are byte-identical to a
        calculator built from scratch with ``tech=tech``.
        """
        clone = StageDelayCalculator(
            self.netlist,
            self.graph,
            model=self.model,
            slope=self.slope,
            max_paths=self.max_paths,
            tech=tech,
            workers=self.workers,
            executor=self.executor,
            trace=self.trace,
            on_error=self.on_error,
        )
        clone.task_timeout = self.task_timeout
        clone.task_retries = self.task_retries
        clone.retry_backoff = self.retry_backoff
        clone.deadline = self.deadline
        clone.quarantined = set(self.quarantined)
        clone.diagnostics = list(self.diagnostics)
        clone._device_facts = self._device_fact_map()
        clone._pool_token = self._pool_token
        clone._pool_epoch = self._pool_epoch
        clone.parametric = self.parametric
        return clone

    def set_deadline(self, budget: float | None) -> None:
        """Arm (``budget`` seconds from now) or clear the run deadline.

        Always resets the transient deadline accounting of the previous
        run (``deadline_skipped``/``deadline_diagnostics``): deadline
        skips are per-run by design, so a request that ran out of time
        never shrinks the coverage of the next one.
        """
        self.deadline = (
            None if budget is None else time.monotonic() + budget
        )
        self.deadline_skipped.clear()
        self.deadline_diagnostics.clear()

    def _deadline_expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def quarantine_stage(
        self,
        index: int,
        *,
        code: str = "extraction-failure",
        severity: str = "error",
        subject: str | None = None,
        message: str = "",
    ) -> robust.Diagnostic:
        """Excise stage ``index`` from analysis and record a diagnostic.

        Quarantined stages are skipped by :meth:`all_arcs`; the recorded
        :class:`~repro.robust.Diagnostic` ends up on the analysis result
        and in the JSON report's ``diagnostics`` section.  Idempotent per
        stage: quarantining an already-quarantined stage still appends the
        new diagnostic (distinct causes are all worth reporting).
        """
        self.quarantined.add(index)
        if subject is None:
            stage = self.graph[index]
            outputs = sorted(stage.outputs) or sorted(stage.nodes)
            subject = outputs[0] if outputs else f"stage-{index}"
        diag = robust.Diagnostic(
            code=code,
            severity=severity,
            subject=subject,
            stage=index,
            action="quarantined",
            message=message,
        )
        self.diagnostics.append(diag)
        return diag

    def all_arcs(
        self,
        active_clocks: frozenset[str] | None = None,
        open_gates: frozenset[str] = frozenset(),
        *,
        parallel: bool | None = None,
        workers: int | str | None = None,
    ) -> list[StageArc]:
        """Timing arcs of every non-quarantined stage in the graph.

        ``parallel``/``workers`` control the fan-out: ``parallel=None``
        (default) consults the :func:`parallel_crossover` heuristic --
        the pool runs only when the resolved width exceeds 1, the host
        has more than one CPU, and the netlist clears the warm or cold
        device floor (:data:`PARALLEL_MIN_DEVICES` /
        :data:`PARALLEL_COLD_MIN_DEVICES`).  ``workers`` may be an int
        or ``"auto"`` (width from :func:`auto_workers`);
        ``parallel=True`` forces the pool (bumping the width to at least
        2); ``parallel=False`` forces the serial path.  The decision is
        visible as the ``extract_parallel_sweeps`` /
        ``extract_serial_sweeps`` trace counters.  Stages are
        channel-connected components, hence independent, and results are
        merged in stage-index order -- the arc list is identical to the
        serial one.

        The pool only *pre-fills* the arc cache; this serial walk is
        authoritative, so quarantine decisions are made here (never in a
        worker) and the result is deterministic regardless of pool
        failures.  A stage whose extraction raises is re-raised as a typed
        :class:`~repro.errors.ReproError` under the ``strict`` policy and
        quarantined (with a diagnostic) under ``quarantine``/
        ``best-effort``.
        """
        spec = self.workers if workers is None else _validate_workers(workers)
        resolved = auto_workers() if spec == WORKERS_AUTO else spec
        if parallel is None:
            use_pool = resolved > 1 and parallel_crossover(
                len(self.netlist.devices), pool_warm=self._pool_is_warm()
            )
        else:
            use_pool = bool(parallel)
            if use_pool and resolved < 2:
                resolved = max(2, available_cpus())
        if self._term_source is not None and use_pool:
            # Pooled symbolic sweep: the *source* extracts on the pool
            # (terms travel back over the wire); this calculator then
            # evaluates the terms serially in the walk below -- per-stage
            # evaluation is far too cheap to be worth pool traffic.
            self._term_source.all_arcs(
                active_clocks, open_gates, parallel=parallel, workers=workers
            )
            use_pool = False
        self.trace.incr(
            "extract_parallel_sweeps" if use_pool else "extract_serial_sweeps"
        )
        if use_pool:
            self._extract_parallel(active_clocks, open_gates, resolved)
        result: list[StageArc] = []
        expired = False
        skipped = 0
        for stage in self.graph:
            if (
                stage.index in self.quarantined
                or stage.index in self.deadline_skipped
            ):
                continue
            cached = self._arc_cache.get(
                (stage.index, active_clocks, open_gates)
            )
            if cached is not None:
                # A cache hit costs nothing; serve it even past the
                # deadline so a warm design degrades as little as possible.
                result.extend(cached)
                continue
            if not expired and self._deadline_expired():
                expired = True
            if expired:
                if self.on_error == robust.STRICT:
                    raise DeadlineError(
                        "extraction deadline exceeded at stage "
                        f"{stage.index} of {len(self.graph)}"
                    )
                self.deadline_skipped.add(stage.index)
                skipped += 1
                continue
            try:
                robust.fault_point("stage-arcs", stage.index)
                stage_arcs = self.arcs(stage, active_clocks, open_gates)
            except Exception as exc:
                if self.on_error == robust.STRICT:
                    if isinstance(exc, ReproError):
                        raise
                    raise StageError(
                        f"arc extraction failed for stage {stage.index}: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                self.quarantine_stage(
                    stage.index,
                    message=(
                        f"arc extraction failed: {type(exc).__name__}: {exc}"
                    ),
                )
                continue
            result.extend(stage_arcs)
        if skipped:
            self.trace.incr("extract_deadline_skips", skipped)
            self.deadline_diagnostics.append(
                robust.Diagnostic(
                    code="deadline-exceeded",
                    severity="error",
                    subject=self.netlist.name,
                    stage=None,
                    action="skipped",
                    message=(
                        f"extraction deadline passed; {skipped} stage(s) "
                        "left unanalyzed this run"
                    ),
                )
            )
        return result

    # ------------------------------------------------------------------
    # Parallel fan-out.
    # ------------------------------------------------------------------
    def _executor_kind(self) -> str:
        if self.executor != "auto":
            return self.executor
        if "fork" in multiprocessing.get_all_start_methods():
            return "process"
        return "thread"

    def _pool_is_warm(self) -> bool:
        """True if a pooled sweep would start with zero setup cost.

        Thread pools have no meaningful startup, so they always count as
        warm (this also preserves the historical crossover floor for the
        thread executor); the process flavour is warm only while the
        persistent pool holds live workers forked from *this*
        calculator's current snapshot.
        """
        if self._executor_kind() == "thread":
            return True
        return _POOL.warm_for(self)

    def _work_chunks(self, indices: list[int], workers: int) -> list[list[int]]:
        """Batch stage indices into chunks of similar *estimated work*.

        The estimate is the squared member-device count -- path
        enumeration cost grows superlinearly with stage size, and the
        square is enough to give an oversized stage (a shifter matrix, a
        bus) its own chunk instead of letting it serialize a batch of
        small ones.  Chunks keep stage order, so the parent's
        cache-filling decode stays deterministic.
        """
        weights = [
            (index, max(1, len(self.graph[index].device_names)) ** 2)
            for index in indices
        ]
        total = sum(weight for _i, weight in weights)
        budget = max(1.0, total / (workers * _CHUNKS_PER_WORKER))
        chunks: list[list[int]] = []
        current: list[int] = []
        acc = 0.0
        for index, weight in weights:
            current.append(index)
            acc += weight
            if acc >= budget:
                chunks.append(current)
                current = []
                acc = 0.0
        if current:
            chunks.append(current)
        return chunks

    def _extract_parallel(
        self,
        active_clocks: frozenset[str] | None,
        open_gates: frozenset[str],
        workers: int,
    ) -> None:
        """Populate the arc cache for uncached stages using a worker pool.

        Only fills ``self._arc_cache``; the caller still walks the stages
        in order, so the merged arc list is deterministic and identical to
        serial extraction.  The pool is *supervised*: each task has a
        timeout (``task_timeout``), failed or corrupt chunks are retried
        with exponential backoff (``task_retries``/``retry_backoff``), and
        whatever still failed after the last attempt falls back to the
        serial path simply by leaving the cache unfilled.  A pool that
        cannot start at all (no fork, pickling failure) degrades the same
        way.  A ``KeyboardInterrupt`` mid-sweep tears the persistent pool
        down (terminating live workers) before propagating, so Ctrl-C
        never leaves orphans.
        """
        missing = [
            stage.index
            for stage in self.graph
            if stage.index not in self.quarantined
            and (stage.index, active_clocks, open_gates)
            not in self._arc_cache
        ]
        if len(missing) < 2:
            return
        kind = self._executor_kind()
        pending = self._work_chunks(missing, workers)
        backoff = self.retry_backoff
        try:
            for attempt in range(self.task_retries + 1):
                if not pending:
                    return
                if self._deadline_expired():
                    # No time left for another pool attempt; the serial
                    # walk will apply the deadline policy stage by stage.
                    break
                if attempt:
                    self.trace.incr("extract_retries", len(pending))
                    time.sleep(backoff)
                    backoff *= 2
                try:
                    if kind == "process":
                        pending = self._run_process_pool(
                            pending, active_clocks, open_gates, workers
                        )
                    else:
                        pending = self._run_thread_pool(
                            pending, active_clocks, open_gates, workers
                        )
                except KeyboardInterrupt:
                    raise
                except Exception:
                    # Pool could not start at all; nothing was extracted
                    # this attempt, so every chunk is still pending.
                    self.trace.incr("extract_pool_failures")
        except KeyboardInterrupt:
            shutdown_pool()
            raise
        if pending:
            # Serial fallback: arcs() computes whatever the pool did not.
            self.trace.incr(
                "extract_fallback_stages", sum(len(c) for c in pending)
            )

    def _run_process_pool(
        self, chunks, active_clocks, open_gates, workers
    ) -> list[list[int]]:
        """One supervised pool attempt; returns the chunks that failed.

        Runs on the module's **persistent** fork pool: workers inherit
        this calculator by memory copy at pool start (no netlist
        pickling, and the child's str-hash seed -- hence every
        set-iteration order -- matches the parent's, which keeps the
        extracted arc lists bit-identical to serial extraction) and are
        reused across sweeps, corners, and runs of the same calculator.
        Per-task traffic is ``(run token, corner, chunk)`` down and
        compact arc tuples back, decoded into the cache as each future
        completes.  A timeout, a worker crash (``BrokenProcessPool``),
        or a structurally corrupt return value marks the chunk failed
        without touching the cache; a timed-out or broken pool is
        *poisoned* -- terminated and discarded so the next attempt (or
        the next sweep) cold-starts a clean one and no worker is ever
        orphaned.
        """
        pool, warm = _POOL.acquire(self, workers)
        self.trace.incr(
            "extract_pool_reuses" if warm else "extract_pool_cold_starts"
        )
        run_token = _POOL.next_run_token()
        failed: list[list[int]] = []
        poisoned = False
        try:
            futures = [
                (
                    pool.submit(
                        _pool_extract,
                        run_token,
                        self.tech,
                        self.parametric,
                        active_clocks,
                        open_gates,
                        chunk,
                    ),
                    chunk,
                )
                for chunk in chunks
            ]
            for future, chunk in futures:
                timeout = self.task_timeout
                if self.deadline is not None:
                    remaining = self.deadline - time.monotonic()
                    if remaining <= 0:
                        # The request deadline passed mid-sweep: cancel
                        # the pooled extraction instead of waiting it
                        # out.  Unstarted tasks are dropped; a task
                        # already running poisons the pool so its worker
                        # is terminated, never orphaned.
                        if not future.cancel():
                            future.add_done_callback(_swallow_result)
                            poisoned = True
                        failed.append(chunk)
                        continue
                    timeout = min(timeout, remaining)
                try:
                    extracted = future.result(timeout=timeout)
                except concurrent.futures.TimeoutError:
                    self.trace.incr("extract_timeouts")
                    future.add_done_callback(_swallow_result)
                    failed.append(chunk)
                    poisoned = True
                    continue
                except concurrent.futures.process.BrokenProcessPool:
                    failed.append(chunk)
                    poisoned = True
                    continue
                except Exception:
                    # The task raised inside a healthy worker; the pool
                    # stays warm for the retry.
                    failed.append(chunk)
                    continue
                if not _valid_pool_result(extracted, chunk):
                    self.trace.incr("extract_corrupt_results")
                    failed.append(chunk)
                    continue
                for index, wire_arcs in extracted:
                    self._arc_cache[
                        (index, active_clocks, open_gates)
                    ] = _arcs_from_wire(index, wire_arcs)
        except BaseException:
            _POOL.discard()
            raise
        if poisoned:
            # Hung or crashed workers: terminate them and never reuse
            # this pool.  Retries (and later sweeps) start fresh.
            _POOL.discard()
        return failed

    def _run_thread_pool(
        self, chunks, active_clocks, open_gates, workers
    ) -> list[list[int]]:
        """One supervised thread-pool attempt; returns the failed chunks.

        ``arcs()`` writes the cache itself; distinct stages mean distinct
        keys, so concurrent writes never collide.  Threads cannot be
        killed, but a timed-out chunk is still marked failed so the
        caller retries or falls back while the straggler finishes in the
        background.
        """

        def one(indices: list[int]) -> None:
            for index in indices:
                robust.fault_point("worker-task", index)
                self.arcs(self.graph[index], active_clocks, open_gates)

        failed: list[list[int]] = []
        pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=min(workers, len(chunks))
        )
        try:
            futures = [(pool.submit(one, chunk), chunk) for chunk in chunks]
            for future, chunk in futures:
                try:
                    future.result(timeout=self.task_timeout)
                except concurrent.futures.TimeoutError:
                    self.trace.incr("extract_timeouts")
                    future.add_done_callback(_swallow_result)
                    failed.append(chunk)
                except Exception:
                    failed.append(chunk)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return failed

    def _clock_open(
        self,
        dev: Transistor,
        active_clocks: frozenset[str] | None,
        open_gates: frozenset[str] = frozenset(),
    ) -> bool:
        """True if the device is cut: inactive clock or constant-low gate."""
        if dev.gate in open_gates and dev.kind is DeviceKind.ENH:
            return True
        return (
            active_clocks is not None
            and dev.gate not in active_clocks
            and self.netlist.is_clock(dev.gate)
        )

    # ------------------------------------------------------------------
    # Arc families.
    # ------------------------------------------------------------------
    def _gate_arcs(self, ctx: StageContext):
        """Ordinary logic arcs: a gate input switches, an output moves."""
        stage = ctx.stage
        pulled_up = ctx.pulled_up
        fall_edges = ctx.conduction_edges(FALL)
        fall_adjacency = ctx.conduction_adjacency(FALL)
        rise_pass_edges = ctx.pass_edges(RISE)
        rise_adjacency = ctx.pass_adjacency(RISE)

        # Triggers: external gate inputs, plus *stage outputs* gating member
        # devices -- pass networks can merge a gate's input and output into
        # one channel-connected stage (a mux reading two gate outputs), and
        # such internal-but-visible nodes carry their own arrivals.  Purely
        # internal gates (tied load gates, anonymous feedback) stay out.
        triggers = {
            dev.gate: None
            for dev in ctx.devices
            if dev.kind is DeviceKind.ENH
            and (dev.gate not in stage.nodes or dev.gate in stage.outputs)
            and not self._is_precharge(dev)
            and not ctx.clock_open(dev)
        }
        arcs = []
        for output in stage.outputs:
            # One enumeration serves every trigger: the DFS records, for
            # each gate appearing on a discharge path, the worst path that
            # includes a device it gates.
            fall_by_gate = self._worst_fall_by_gate(
                ctx, output, fall_edges, fall_adjacency
            )
            rise = self._rise_via_pullup(
                ctx, output, pulled_up, rise_pass_edges, rise_adjacency
            )
            for trigger in triggers:
                fall = fall_by_gate.get(trigger)
                if fall is None:
                    # In ratioed logic a gate input influences an output
                    # only through a discharge path: the same pull-down
                    # whose turn-off lets the load raise the node.  No
                    # discharge path (under flow + one-hot constraints)
                    # means no arc -- attaching the trigger-independent
                    # rise here would fabricate couplings, e.g. between
                    # unrelated register-file cells sharing a bitline.
                    continue
                arcs.append(
                    StageArc(
                        stage_index=stage.index,
                        trigger=trigger,
                        via="gate",
                        output=output,
                        inverting=True,
                        rise=rise,
                        fall=fall,
                    )
                )
        return arcs

    def _worst_fall_by_gate(
        self,
        ctx: StageContext,
        output: str,
        fall_edges: list[tuple[str, str, float, str]],
        adjacency: dict,
    ) -> dict[str, ArcTiming]:
        """Worst discharge path per triggering gate, in one enumeration.

        Enumerates flow-consistent simple paths from ``output`` to gnd once,
        and for every gate node appearing on a path keeps the
        maximum-resistance path through one of its devices.  Equivalent to
        running :meth:`_worst_path` with ``must_include`` per trigger, at a
        fraction of the cost on wide stages.
        """
        found = self._enumerate_paths(
            output, {self.netlist.gnd}, fall_edges, adjacency=adjacency
        )
        if found is None:
            return {}
        paths, truncated = found
        gate_of = ctx.gate_of
        best: dict[str, tuple[float, list]] = {}
        for path_edges, r_sum in paths:
            gates = {gate_of[name] for _a, _b, _r, name in path_edges}
            for gate in gates:
                if gate not in best or r_sum > best[gate][0]:
                    best[gate] = (r_sum, path_edges)
        result: dict[str, ArcTiming] = {}
        timing_cache: dict[int, ArcTiming] = {}
        for gate, (_r, path_edges) in best.items():
            key = id(path_edges)
            timing = timing_cache.get(key)
            if timing is None:
                spine = [
                    (b, a, r, name)
                    for (a, b, r, name) in reversed(path_edges)
                ]
                timing = self._timing_from_spine(
                    spine,
                    output,
                    fall_edges,
                    adjacency=adjacency,
                    transition=FALL,
                )
                if truncated and not timing.truncated:
                    timing = _mark_truncated(timing)
                timing_cache[key] = timing
            result[gate] = timing
        return result

    def _enumerate_paths(
        self,
        start: str,
        targets: set[str],
        edges: list[tuple[str, str, float, str]],
        *,
        respect_flow: bool = False,
        adjacency: dict | None = None,
    ) -> tuple[list[tuple[list, float]], bool] | None:
        """All flow-consistent simple paths from ``start`` to a target.

        Returns ``([(edge_list, total_r), ...], truncated)`` or None.
        Shares traversal rules with :meth:`_worst_path`.
        """
        if adjacency is None:
            adjacency = self._build_adjacency(edges)
        if start not in adjacency:
            return None

        paths: list[tuple[list, float]] = []
        truncated = False
        path: list[tuple[str, str, float, str]] = []
        visited = {start}
        groups_used: dict[int, str] = {}

        def dfs(node: str, r_sum: float) -> None:
            nonlocal truncated
            if len(paths) >= self.max_paths:
                truncated = True
                return
            if node in targets:
                paths.append((list(path), r_sum))
                return
            for (
                neighbor,
                r,
                name,
                gate,
                group,
                in_ok,
                _out_ok,
                neighbor_boundary,
            ) in adjacency.get(node, ()):
                if neighbor in visited:
                    continue
                if neighbor_boundary and neighbor not in targets:
                    continue
                if respect_flow and not in_ok:
                    continue
                if group is not None:
                    used = groups_used.get(group)
                    if used is not None and used != gate:
                        continue
                    fresh_group = used is None
                    if fresh_group:
                        groups_used[group] = gate
                else:
                    fresh_group = False
                visited.add(neighbor)
                path.append((node, neighbor, r, name))
                dfs(neighbor, r_sum + r)
                path.pop()
                visited.discard(neighbor)
                if fresh_group:
                    del groups_used[group]

        dfs(start, 0.0)
        if not paths:
            return None
        return paths, truncated

    def _clocked_switch_arcs(self, ctx: StageContext):
        """Clock-gated pass switches: clock rise lets data through.

        The arc trigger is the clock; the output follows the data side, so
        both transitions exist and the arc is non-inverting.
        """
        stage = ctx.stage
        arcs = []
        pass_rise = ctx.pass_edges(RISE)
        pass_fall = ctx.pass_edges(FALL)
        rise_adjacency = ctx.pass_adjacency(RISE)
        fall_adjacency = ctx.pass_adjacency(FALL)
        for dev in ctx.devices:
            if dev.kind is not DeviceKind.ENH:
                continue
            if not self.netlist.is_clock(dev.gate):
                continue
            if self._is_precharge(dev):
                continue
            if ctx.clock_open(dev):
                continue
            source_side = self._driving_terminal(dev)
            if source_side is None:
                continue
            receiving = dev.other_channel(source_side)
            for output in stage.outputs | ({receiving} & stage.nodes):
                rise = self._worst_tree_delay(
                    start=output,
                    targets={source_side},
                    edges=pass_rise,
                    must_include={dev.name},
                    adjacency=rise_adjacency,
                    transition=RISE,
                )
                fall = self._worst_tree_delay(
                    start=output,
                    targets={source_side},
                    edges=pass_fall,
                    must_include={dev.name},
                    adjacency=fall_adjacency,
                    transition=FALL,
                )
                if rise is None and fall is None:
                    continue
                arcs.append(
                    StageArc(
                        stage_index=stage.index,
                        trigger=dev.gate,
                        via="gate",
                        output=output,
                        inverting=False,
                        rise=rise,
                        fall=fall,
                    )
                )
        return arcs

    def _precharge_arcs(self, ctx: StageContext):
        """Clock-gated precharge devices: clock rise charges the node.

        Precharge devices sharing one clock conduct *simultaneously*, so a
        node with its own precharger never waits on a neighbour's: cross
        arcs are generated only toward outputs without a same-clock
        precharger, along paths that do not run through other same-clock
        precharged nodes (their own devices shunt any longer path).
        """
        stage = ctx.stage
        arcs = []
        pass_rise = ctx.pass_edges(RISE)
        for dev in ctx.devices:
            if not self._is_precharge(dev):
                continue
            if ctx.clock_open(dev):
                continue
            node = (
                dev.source if dev.drain == self.netlist.vdd else dev.drain
            )
            siblings = {
                (d.source if d.drain == self.netlist.vdd else d.drain)
                for d in ctx.devices
                if self._is_precharge(d)
                and d.gate == dev.gate
                and d.name != dev.name
            }
            if siblings:
                filtered_edges = [
                    e
                    for e in pass_rise
                    if e[0] not in siblings and e[1] not in siblings
                ]
                filtered_adjacency = None
            else:
                filtered_edges = pass_rise
                filtered_adjacency = ctx.pass_adjacency(RISE)
            r_pre = device_resistance(self.tech, dev, "precharge", RISE)
            outputs = stage.outputs | ({node} & stage.nodes)
            for output in outputs:
                if output != node and output in siblings:
                    continue  # it has its own (parallel) precharger
                if output == node:
                    spine = [(self.netlist.vdd, node, r_pre, dev.name)]
                else:
                    tail = self._worst_path(
                        start=output,
                        targets={node},
                        edges=filtered_edges,
                        must_include=set(),
                        adjacency=filtered_adjacency,
                    )
                    if tail is None:
                        continue
                    path_edges, _ = tail
                    spine = [(self.netlist.vdd, node, r_pre, dev.name)]
                    spine.extend(
                        (b, a, r, name)
                        for (a, b, r, name) in reversed(path_edges)
                    )
                timing = self._timing_from_spine(
                    spine,
                    output,
                    ctx.conduction_edges(RISE),
                    adjacency=ctx.conduction_adjacency(RISE),
                    transition=RISE,
                )
                arcs.append(
                    StageArc(
                        stage_index=stage.index,
                        trigger=dev.gate,
                        via="gate",
                        output=output,
                        inverting=False,
                        rise=timing,
                        fall=None,
                    )
                )
        return arcs

    def _follower_arcs(self, ctx: StageContext):
        """Gated depletion followers (superbuffer output stages).

        A depletion device with its channel to vdd and its gate driven by a
        signal (not tied) charges its source when the gate rises: a
        non-inverting rise-only arc from the gate.
        """
        stage = ctx.stage
        arcs = []
        pass_rise = ctx.pass_edges(RISE)
        rise_adjacency = ctx.pass_adjacency(RISE)
        for dev in ctx.devices:
            if dev.kind is not DeviceKind.DEP or dev.is_load:
                continue
            if self.netlist.vdd not in dev.channel_nodes:
                continue
            node = dev.other_channel(self.netlist.vdd)
            r_up = device_resistance(self.tech, dev, "pullup", RISE)
            for output in stage.outputs | ({node} & stage.nodes):
                if output == node:
                    spine = [(self.netlist.vdd, node, r_up, dev.name)]
                else:
                    tail = self._worst_path(
                        start=output,
                        targets={node},
                        edges=pass_rise,
                        must_include=set(),
                        adjacency=rise_adjacency,
                    )
                    if tail is None:
                        continue
                    path_edges, _ = tail
                    spine = [(self.netlist.vdd, node, r_up, dev.name)]
                    spine.extend(
                        (b, a, r, name)
                        for (a, b, r, name) in reversed(path_edges)
                    )
                timing = self._timing_from_spine(
                    spine, output, pass_rise, adjacency=rise_adjacency,
                    transition=RISE,
                )
                arcs.append(
                    StageArc(
                        stage_index=stage.index,
                        trigger=dev.gate,
                        via="gate",
                        output=output,
                        inverting=False,
                        rise=timing,
                        fall=None,
                    )
                )
        return arcs

    def _select_arcs(self, ctx: StageContext):
        """Pass-select arcs: a switch's *gate* re-routes the output.

        When a mux/shifter select rises, the output is newly connected to
        its source and transitions toward the source's value -- a timing
        path triggered by the select, not the source.  The arc's delay is
        the worst transfer from any driving point (boundary injector or
        pulled-up node) to the output through a path that includes a device
        the select gates.  Non-inverting, both transitions (select fall is
        a disconnect and launches nothing; charging it too is a small,
        stated pessimism of the arc model).
        """
        stage = ctx.stage
        vdd = self.netlist.vdd
        gnd = self.netlist.gnd
        pass_devices = [
            d
            for d in ctx.devices
            if d.kind is DeviceKind.ENH
            and d.source != vdd
            and d.source != gnd
            and d.drain != vdd
            and d.drain != gnd
            and not self.netlist.is_clock(d.gate)
            and not ctx.clock_open(d)
            and (d.gate not in stage.nodes or d.gate in stage.outputs)
        ]
        if not pass_devices:
            return []
        pass_rise = ctx.pass_edges(RISE)
        pass_fall = ctx.pass_edges(FALL)
        rise_adjacency = ctx.pass_adjacency(RISE)
        fall_adjacency = ctx.pass_adjacency(FALL)
        pulled_up = ctx.pulled_up
        targets = set(pulled_up)
        for boundary in stage.boundary:
            if not self.netlist.is_rail(boundary):
                targets.add(boundary)
        if not targets:
            return []

        arcs = []
        triggers: dict[str, set[str]] = {}
        for dev in pass_devices:
            triggers.setdefault(dev.gate, set()).add(dev.name)
        for trigger, gated in triggers.items():
            for output in stage.outputs:
                if output == trigger:
                    continue
                rise = self._worst_tree_delay(
                    start=output,
                    targets=targets,
                    edges=pass_rise,
                    must_include=gated,
                    adjacency=rise_adjacency,
                    transition=RISE,
                )
                fall = self._worst_tree_delay(
                    start=output,
                    targets=targets,
                    edges=pass_fall,
                    must_include=gated,
                    adjacency=fall_adjacency,
                    transition=FALL,
                )
                if rise is None and fall is None:
                    continue
                arcs.append(
                    StageArc(
                        stage_index=stage.index,
                        trigger=trigger,
                        via="gate",
                        output=output,
                        inverting=False,
                        rise=rise,
                        fall=fall,
                    )
                )
        return arcs

    def _channel_arcs(self, ctx: StageContext):
        """Signal injected at an externally driven boundary channel node."""
        stage = ctx.stage
        arcs = []
        pass_rise = ctx.pass_edges(RISE)
        pass_fall = ctx.pass_edges(FALL)
        rise_adjacency = ctx.pass_adjacency(RISE)
        fall_adjacency = ctx.pass_adjacency(FALL)
        for boundary in stage.boundary:
            if self.netlist.is_rail(boundary):
                continue
            flows_in = any(
                dev.flows_into(dev.other_channel(boundary))
                or dev.flows_out_of(boundary)
                for dev in self.netlist.channel_devices(boundary)
                if dev.name in set(stage.device_names)
            )
            if not flows_in:
                continue
            for output in stage.outputs:
                rise = self._worst_tree_delay(
                    start=output,
                    targets={boundary},
                    edges=pass_rise,
                    must_include=set(),
                    adjacency=rise_adjacency,
                    transition=RISE,
                )
                fall = self._worst_tree_delay(
                    start=output,
                    targets={boundary},
                    edges=pass_fall,
                    must_include=set(),
                    adjacency=fall_adjacency,
                    transition=FALL,
                )
                if rise is None and fall is None:
                    continue
                arcs.append(
                    StageArc(
                        stage_index=stage.index,
                        trigger=boundary,
                        via="channel",
                        output=output,
                        inverting=False,
                        rise=rise,
                        fall=fall,
                    )
                )
        return arcs

    # ------------------------------------------------------------------
    # Conduction-edge construction.
    # ------------------------------------------------------------------
    def _is_precharge(self, dev: Transistor) -> bool:
        vdd = self.netlist.vdd
        return (
            dev.kind is DeviceKind.ENH
            and (dev.source == vdd or dev.drain == vdd)
            and self.netlist.is_clock(dev.gate)
        )

    def _pulled_up_nodes(
        self, stage: Stage, devices: list[Transistor]
    ) -> dict[str, float]:
        """Stage nodes with depletion pull-ups -> combined resistance.

        Includes both tied-gate loads and gated depletion followers
        (superbuffer output stages): for worst-case rise both act as the
        charging resistance from vdd.
        """
        result: dict[str, float] = {}
        for dev in devices:
            if dev.kind is not DeviceKind.DEP:
                continue
            if self.netlist.vdd not in dev.channel_nodes:
                continue
            node = dev.other_channel(self.netlist.vdd)
            if node not in stage.nodes:
                continue
            r = device_resistance(self.tech, dev, "pullup", RISE)
            if node in result:
                # Parallel loads combine.
                result[node] = 1.0 / (1.0 / result[node] + 1.0 / r)
            else:
                result[node] = r
        return result

    def _conduction_edges(
        self,
        stage: Stage,
        devices: list[Transistor],
        transition: str,
        active_clocks: frozenset[str] | None,
        open_gates: frozenset[str] = frozenset(),
    ) -> list[tuple[str, str, float, str]]:
        """Resistive edges usable on a discharge path (pulldowns + passes)."""
        edges = []
        vdd = self.netlist.vdd
        gnd = self.netlist.gnd
        for dev in devices:
            if dev.kind is not DeviceKind.ENH:
                continue
            source = dev.source
            drain = dev.drain
            if source == vdd or drain == vdd:
                continue  # precharge / vdd switches never discharge
            if self._clock_open(dev, active_clocks, open_gates):
                continue
            if source == gnd or drain == gnd:
                r = device_resistance(self.tech, dev, "pulldown", transition)
            else:
                r = device_resistance(self.tech, dev, "pass", transition)
            edges.append((source, drain, r, dev.name))
        return edges

    def _pass_edges(
        self,
        stage: Stage,
        devices: list[Transistor],
        transition: str,
        active_clocks: frozenset[str] | None,
        open_gates: frozenset[str] = frozenset(),
    ) -> list[tuple[str, str, float, str]]:
        """Resistive edges of the pass network only (no rail terminals)."""
        edges = []
        vdd = self.netlist.vdd
        gnd = self.netlist.gnd
        for dev in devices:
            if dev.kind is not DeviceKind.ENH:
                continue
            source = dev.source
            drain = dev.drain
            if source == vdd or source == gnd or drain == vdd or drain == gnd:
                continue
            if self._clock_open(dev, active_clocks, open_gates):
                continue
            r = device_resistance(self.tech, dev, "pass", transition)
            edges.append((source, drain, r, dev.name))
        return edges

    # ------------------------------------------------------------------
    # Path search and RC evaluation.
    # ------------------------------------------------------------------
    def _device_fact_map(self) -> dict[str, tuple]:
        """Per-device facts needed by adjacency construction, cached.

        Maps each device name to ``(gate, group, source, out_of_source,
        out_of_drain, source_is_boundary, drain_is_boundary)``.  Built once
        per calculator (and rebuilt after :meth:`invalidate_devices`), so
        the flow/one-hot/boundary lookups run once per device instead of
        once per (stage, transition, edge).
        """
        facts = self._device_facts
        if facts is None:
            netlist = self.netlist
            boundary = {netlist.vdd, netlist.gnd}
            boundary.update(netlist.inputs)
            boundary.update(netlist.clocks)
            exclusive_group_of = netlist.exclusive_group_of
            facts = {}
            for name, dev in netlist.devices.items():
                unknown = dev.flow is FlowDirection.UNKNOWN
                facts[name] = (
                    dev.gate,
                    exclusive_group_of(dev.gate),
                    dev.source,
                    unknown or dev.flows_out_of(dev.source),
                    unknown or dev.flows_out_of(dev.drain),
                    dev.source in boundary,
                    dev.drain in boundary,
                )
            self._device_facts = facts
        return facts

    def _build_adjacency(
        self, edges: list[tuple[str, str, float, str]]
    ) -> dict[str, list[tuple]]:
        """Adjacency map with per-hop device facts pre-resolved.

        Each directed hop ``node -> neighbor`` is an 8-tuple
        ``(neighbor, r, name, gate, group, in_ok, out_ok, neighbor_is_boundary)``
        where ``in_ok`` means the device can carry signal ``neighbor ->
        node`` (the backward path searches) and ``out_ok`` means it can
        carry ``node -> neighbor`` (the branch BFS).  Resolving the device,
        its one-hot group, its flow legality, and the boundary test here --
        once per (stage, transition) -- removes four dict/method lookups
        per visited edge from every DFS/BFS inner loop.

        Every edge tuple is built as ``(source, drain, r, name)``, so the
        cached per-device facts apply directly (swapped when the device is
        walked drain-first).
        """
        facts = self._device_fact_map()
        adjacency: dict[str, list[tuple]] = {}
        for a, b, r, name in edges:
            gate, group, source, out_s, out_d, s_bnd, d_bnd = facts[name]
            if a == source:
                out_of_a, out_of_b = out_s, out_d
                a_boundary, b_boundary = s_bnd, d_bnd
            else:
                out_of_a, out_of_b = out_d, out_s
                a_boundary, b_boundary = d_bnd, s_bnd
            adjacency.setdefault(a, []).append(
                (b, r, name, gate, group, out_of_b, out_of_a, b_boundary)
            )
            adjacency.setdefault(b, []).append(
                (a, r, name, gate, group, out_of_a, out_of_b, a_boundary)
            )
        return adjacency

    def _conducts_toward(self, name: str, from_node: str, to_node: str) -> bool:
        """True if device ``name`` can carry signal ``from_node -> to_node``.

        Unresolved (UNKNOWN) devices are treated as bidirectional -- the
        calculator must stay usable before flow inference has run.
        """
        dev = self.netlist.device(name)
        if dev.flow is FlowDirection.UNKNOWN:
            return True
        return dev.flows_out_of(from_node)

    def _worst_path(
        self,
        start: str,
        targets: set[str],
        edges: list[tuple[str, str, float, str]],
        must_include: set[str],
        *,
        respect_flow: bool = True,
        adjacency: dict | None = None,
    ) -> tuple[list[tuple[str, str, float, str]], bool] | None:
        """Maximum-resistance flow-consistent path from ``start`` to a target.

        Edges are ``(a, b, r, device_name)``; the path must use at least one
        device from ``must_include`` (if non-empty).  The search walks
        *backward* from the measured output toward the driving point, so a
        hop from ``node`` to ``neighbor`` requires the device to conduct
        signal ``neighbor -> node``; this is what prevents physically
        meaningless paths that snake against the inferred signal flow.
        One-hot assertions (:meth:`Netlist.add_exclusive_group`) prune
        paths that would need two mutually exclusive switches closed.

        Returns the edge list ordered from ``start`` toward the target and
        a truncation flag, or None if no qualifying path exists.
        """
        if adjacency is None:
            adjacency = self._build_adjacency(edges)
        if start not in adjacency:
            return None

        best: list[tuple[str, str, float, str]] | None = None
        best_r = -1.0
        examined = 0
        truncated = False
        path: list[tuple[str, str, float, str]] = []
        visited = {start}
        groups_used: dict[int, str] = {}

        def dfs(node: str, r_sum: float, included: bool) -> None:
            nonlocal best, best_r, examined, truncated
            if examined >= self.max_paths:
                truncated = True
                return
            if node in targets:
                examined += 1
                if (included or not must_include) and r_sum > best_r:
                    best_r = r_sum
                    best = list(path)
                return
            for (
                neighbor,
                r,
                name,
                gate,
                group,
                in_ok,
                _out_ok,
                neighbor_boundary,
            ) in adjacency.get(node, ()):
                if neighbor in visited:
                    continue
                if neighbor_boundary and neighbor not in targets:
                    continue
                if respect_flow and not in_ok:
                    continue
                if group is not None:
                    used = groups_used.get(group)
                    if used is not None and used != gate:
                        continue
                    fresh_group = used is None
                    if fresh_group:
                        groups_used[group] = gate
                else:
                    fresh_group = False
                visited.add(neighbor)
                path.append((node, neighbor, r, name))
                dfs(neighbor, r_sum + r, included or name in must_include)
                path.pop()
                visited.discard(neighbor)
                if fresh_group:
                    del groups_used[group]

        dfs(start, 0.0, False)
        if best is None:
            return None
        return best, truncated

    def _worst_tree_delay(
        self,
        start: str,
        targets: set[str],
        edges: list[tuple[str, str, float, str]],
        must_include: set[str],
        *,
        adjacency: dict | None = None,
        transition: str | None = None,
    ) -> ArcTiming | None:
        """Worst path from ``start`` back to a target, evaluated as a tree.

        The tree root is the reached target (the driving point, i.e. the
        first node of the reversed spine); the path is the spine, and every
        other conducting edge hangs capacitive branches.  ``transition``
        names the edge set's transition for parametric term building.
        """
        found = self._worst_path(
            start, targets, edges, must_include, adjacency=adjacency
        )
        if found is None:
            return None
        path_edges, truncated = found
        # path_edges run start -> target; the spine must run root -> start.
        spine = [
            (b, a, r, name) for (a, b, r, name) in reversed(path_edges)
        ]
        timing = self._timing_from_spine(
            spine, start, edges, adjacency=adjacency, transition=transition
        )
        if truncated and not timing.truncated:
            timing = _mark_truncated(timing)
        return timing

    def _spine_groups(
        self, spine: list[tuple[str, str, float, str]]
    ) -> dict[int, str]:
        """One-hot groups asserted by the gates of the spine devices."""
        spine_groups: dict[int, str] = {}
        devices = self.netlist.devices
        exclusive_group_of = self.netlist.exclusive_group_of
        for _p, _c, _r, name in spine:
            dev = devices.get(name)
            if dev is not None:
                group = exclusive_group_of(dev.gate)
                if group is not None:
                    spine_groups[group] = dev.gate
        return spine_groups

    def _edge_recipe(
        self, parent: str, child: str, name: str, transition: str
    ) -> tuple:
        """Symbolic atom reproducing one spine edge's resistance.

        Derived structurally, mirroring how the edge builders assign
        roles: a synthetic ``load@node`` head is the pull-up combine; a
        real device from vdd is a follower pull-up (DEP) or precharge
        (ENH); a rail-touching enhancement device is a pulldown; all
        other edges are pass transfers (conduction and pass edge lists
        both exclude the remaining cases).
        """
        dev = self.netlist.devices.get(name)
        if dev is None:
            # _rise_via_pullup's synthetic "load@node" head.
            return ("load", child)
        vdd = self.netlist.vdd
        if parent == vdd:
            if dev.kind is DeviceKind.DEP:
                return ("res", name, "pullup", RISE)
            return ("res", name, "precharge", RISE)
        if self.netlist.gnd in (dev.source, dev.drain):
            return ("res", name, "pulldown", transition)
        return ("res", name, "pass", transition)

    def _timing_from_spine(
        self,
        spine: list[tuple[str, str, float, str]],
        output: str,
        branch_edges: list[tuple[str, str, float, str]],
        *,
        adjacency: dict | None = None,
        transition: str | None = None,
    ) -> ArcTiming:
        """Evaluate the configured delay metric for a spine's RC tree.

        The spine is the resistive path from the driving point (``root``,
        the first spine node) to ``output``; every other conducting edge
        hangs a capacitive branch.  Branch traversal follows signal flow
        outward from the spine, never crosses rails or boundary nodes
        (incompressible sources), and honours one-hot assertions against
        the gates used on the spine.

        For the default Elmore model the metric is folded into the tree
        walk itself (no tree object): every spine node lies on the
        root-to-``output`` path so it contributes ``r_root * C``, and every
        branch node shares exactly what its attachment point shares.  The
        accumulation visits nodes in the same order as the explicit
        :class:`RCTree` path below, so the two produce bit-identical
        delays.

        With ``self.parametric`` set (and ``transition`` provided by the
        caller -- the transition of the edge set the spine came from),
        the walk additionally records a replayable term: the spine
        resistances as symbolic atoms (:meth:`_edge_recipe`) and every
        visited node's prefix index, in visit order, so
        :mod:`repro.delay.parametric` can re-run the identical
        arithmetic at any technology point.
        """
        if self.model != "elmore":
            return self._timing_from_spine_tree(
                spine, output, branch_edges, adjacency=adjacency
            )
        build_term = self.parametric and transition is not None
        root = spine[0][0]
        node_cap = self._node_cap
        used_devices = []
        r_root = 0.0
        # shared[k] = resistance common to the root->k and root->output
        # paths; doubles as the visited set.
        shared: dict[str, float] = {root: 0.0}
        tau = 0.0
        if build_term:
            recipes = []
            contribs = []
            # idx_of[k]: index into the replayed prefix-resistance list
            # whose entry equals shared[k] (root is prefix 0).
            idx_of = {root: 0}
        for _parent, child, r, name in spine:
            r_root += r
            shared[child] = r_root
            if build_term:
                recipes.append(
                    self._edge_recipe(_parent, child, name, transition)
                )
                idx_of[child] = len(recipes)
                contribs.append((len(recipes), child))
            cap = node_cap(child)
            if cap != 0.0:
                tau += r_root * cap
            used_devices.append(name)
        r_output = r_root

        spine_groups = self._spine_groups(spine)
        if adjacency is None:
            adjacency = self._build_adjacency(branch_edges)
        frontier = deque(child for _p, child, _r, _n in spine)
        while frontier:
            current = frontier.popleft()
            current_shared = shared[current]
            for (
                neighbor,
                _r,
                _name,
                gate,
                group,
                _in_ok,
                out_ok,
                neighbor_boundary,
            ) in adjacency.get(current, ()):
                if neighbor in shared or neighbor_boundary:
                    continue
                if not out_ok:
                    continue
                if group is not None and spine_groups.get(group, gate) != gate:
                    continue
                shared[neighbor] = current_shared
                if build_term:
                    idx = idx_of[current]
                    idx_of[neighbor] = idx
                    contribs.append((idx, neighbor))
                cap = node_cap(neighbor)
                if cap != 0.0:
                    tau += current_shared * cap
                frontier.append(neighbor)

        k = self._k_factor(root)
        if root == self.netlist.gnd:
            # Ratioed fight: see _timing_from_spine_tree.
            k *= self._ratio_derate(output, r_output)
        path = tuple(used_devices)
        term = None
        if build_term:
            term = (
                "spine",
                tuple(recipes),
                tuple(contribs),
                root,
                output,
                path,
                False,
            )
        return ArcTiming(delay=k * tau, tau=tau, path=path, term=term)

    def _timing_from_spine_tree(
        self,
        spine: list[tuple[str, str, float, str]],
        output: str,
        branch_edges: list[tuple[str, str, float, str]],
        *,
        adjacency: dict | None = None,
    ) -> ArcTiming:
        """General-model path: build the RC tree explicitly, then evaluate."""
        root = spine[0][0]
        tree = RCTree(root)
        used_devices = []
        for parent, child, r, name in spine:
            tree.add_child(parent, child, r, self._node_cap(child))
            used_devices.append(name)

        spine_groups = self._spine_groups(spine)
        if adjacency is None:
            adjacency = self._build_adjacency(branch_edges)
        frontier = deque(child for _p, child, _r, _n in spine)
        while frontier:
            current = frontier.popleft()
            for (
                neighbor,
                r,
                name,
                gate,
                group,
                _in_ok,
                out_ok,
                neighbor_boundary,
            ) in adjacency.get(current, ()):
                if neighbor in tree or neighbor_boundary:
                    continue
                if not out_ok:
                    continue
                if group is not None and spine_groups.get(group, gate) != gate:
                    continue
                tree.add_child(current, neighbor, r, self._node_cap(neighbor))
                frontier.append(neighbor)

        tau = elmore_delay(tree, output)
        k = self._k_factor(root)
        if root == self.netlist.gnd:
            # Ratioed fight: the depletion pull-up keeps sourcing current
            # while the pull-down path discharges the node, stretching the
            # fall.  First-order factor R_up / (R_up - R_down), clamped --
            # a legal ratio guarantees R_up >> R_down, and ERC catches the
            # rest.
            k *= self._ratio_derate(output, tree.r_root(output))
        if self.model == "elmore":
            delay = k * tau
        elif self.model == "lumped":
            delay = k * lumped_delay(tree, output)
        elif self.model == "pr-min":
            delay = pr_bounds(tree, output, _CROSSING).lower * (
                k / math.log(2.0)
            )
        else:  # pr-max
            delay = pr_bounds(tree, output, _CROSSING).upper * (
                k / math.log(2.0)
            )
        return ArcTiming(delay=delay, tau=tau, path=tuple(used_devices))

    def _ratio_derate(self, output: str, r_down: float) -> float:
        """Fall-delay stretch from the pull-up fighting the discharge."""
        r_up = None
        for dev in self.netlist.channel_devices(output):
            if dev.kind is not DeviceKind.DEP:
                continue
            if dev.other_channel(output) != self.netlist.vdd:
                continue
            r = device_resistance(self.tech, dev, "pullup", RISE)
            r_up = r if r_up is None else 1.0 / (1.0 / r_up + 1.0 / r)
        if r_up is None or r_up <= r_down:
            return 1.5 if r_up is not None else 1.0
        return min(1.5, r_up / (r_up - r_down))

    def _k_factor(self, root: str) -> float:
        """Calibration factor: rising transitions (from vdd) are slower."""
        if root == self.netlist.vdd:
            return self.tech.k_rise
        if root == self.netlist.gnd:
            return self.tech.k_fall
        # Pass transfer from a driven node: between the two; use rise factor
        # (the conservative choice).
        return self.tech.k_rise

    def _node_cap(self, name: str) -> float:
        cached = self._cap_cache.get(name)
        if cached is None:
            if self.netlist.is_rail(name):
                cached = 0.0  # rails are incompressible sources
            else:
                cached = self.netlist.node_capacitance(name, self.tech)
            self._cap_cache[name] = cached
        return cached

    def _rise_via_pullup(
        self,
        ctx: StageContext,
        output: str,
        pulled_up: dict[str, float],
        pass_edges: list[tuple[str, str, float, str]],
        adjacency: dict,
    ) -> ArcTiming | None:
        """Worst rise of ``output``: vdd -> load -> pass path -> output."""
        best: ArcTiming | None = None
        for node, r_load in pulled_up.items():
            if node == output:
                spine = [(self.netlist.vdd, node, r_load, f"load@{node}")]
            else:
                tail = self._worst_path(
                    start=output,
                    targets={node},
                    edges=pass_edges,
                    must_include=set(),
                    adjacency=adjacency,
                )
                if tail is None:
                    continue
                path_edges, _trunc = tail
                spine = [(self.netlist.vdd, node, r_load, f"load@{node}")]
                spine.extend(
                    (b, a, r, name) for (a, b, r, name) in reversed(path_edges)
                )
            timing = self._timing_from_spine(
                spine, output, pass_edges, adjacency=adjacency,
                transition=RISE,
            )
            # _worse keeps the incumbent on ties, exactly like the
            # strict `>` comparison this replaces, and wraps the terms
            # in a "max" node so corners re-decide the winner.
            best = timing if best is None else _worse(best, timing)
        return best

    def _driving_terminal(self, dev: Transistor) -> str | None:
        """The channel terminal signal flows out of (None if unresolved)."""
        if dev.flows_out_of(dev.source) and not dev.flows_out_of(dev.drain):
            return dev.source
        if dev.flows_out_of(dev.drain) and not dev.flows_out_of(dev.source):
            return dev.drain
        # Bidirectional: pick the terminal that looks driven (pull-up or
        # boundary); fall back to the source.
        for terminal in dev.channel_nodes:
            if self.netlist.is_boundary(terminal) or self.netlist.has_pullup(
                terminal
            ):
                return terminal
        return dev.source


# ----------------------------------------------------------------------
# Persistent process-pool plumbing.  One module-level fork pool is
# lazily started on the first parallel sweep and *reused* across
# ``all_arcs`` calls, clock corners, and repeated runs of the same
# calculator, so fork+import cost is paid once instead of per sweep.
# With a fork start method the initializer's calculator argument is
# inherited by memory copy (never pickled); per-task traffic is only
# the chunk's stage indices down and compact arc tuples back.  The pool
# is keyed on ``(calculator token, invalidation epoch)`` -- a different
# calculator, or a device edit on the same one, rebinds it to a fresh
# snapshot automatically.
# ----------------------------------------------------------------------


class _PersistentPool:
    """Owner of the module's single reusable extraction pool.

    This is a **bounded registry of capacity one**: ``acquire`` hands
    back a live executor bound to the requesting calculator's current
    snapshot, and when a *different* calculator (or a wider width)
    binds, the previous pool is evicted -- shut down and its workers
    terminated -- before the new one starts, so a sweep over many
    calculators can never accumulate one forked pool per calculator
    with only atexit cleanup.  ``discard`` poisons the pool the same
    way, so hung or crashed workers are never reused and never
    orphaned.  ``pools_started``/``pools_evicted`` in
    :meth:`diagnostics` audit this invariant: their difference is the
    number of live pools, which never exceeds one.

    All mutation happens in the owning parent process: a forked child
    inherits the bookkeeping by memory copy but the owner-pid guard
    turns its ``discard`` into a reference drop, so a worker can never
    tear down its parent's executor.
    """

    def __init__(self) -> None:
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None
        self._binding: tuple[int, int] | None = None
        self._max_workers = 0
        self._owner_pid: int | None = None
        self._runs = itertools.count(1)
        self._started = 0
        self._evicted = 0

    def warm_for(self, calc: "StageDelayCalculator") -> bool:
        """True if a sweep for ``calc`` would reuse live workers."""
        return (
            self._executor is not None
            and self._owner_pid == os.getpid()
            and self._binding == (calc._pool_token, calc._pool_epoch)
        )

    def acquire(
        self, calc: "StageDelayCalculator", workers: int
    ) -> tuple[concurrent.futures.ProcessPoolExecutor, bool]:
        """A live executor for ``calc``; second element is ``warm``."""
        if self.warm_for(calc) and self._max_workers >= workers:
            return self._executor, True
        self.discard()
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("fork"),
            initializer=_pool_init,
            initargs=(calc,),
        )
        self._binding = (calc._pool_token, calc._pool_epoch)
        self._max_workers = workers
        self._owner_pid = os.getpid()
        self._started += 1
        return self._executor, False

    def next_run_token(self) -> int:
        """Fresh token marking one pooled sweep (workers drop stale
        per-corner arcs when it changes)."""
        return next(self._runs)

    def discard(self) -> None:
        """Terminate and forget the pool.  Idempotent, parent-only.

        Never blocks on a hung worker: outstanding work is abandoned and
        any process still alive is terminated, so injected hangs cannot
        stall interpreter shutdown and no worker outlives the pool.
        """
        executor, self._executor = self._executor, None
        owner, self._owner_pid = self._owner_pid, None
        self._binding = None
        self._max_workers = 0
        if executor is None or owner != os.getpid():
            # A forked child inherits a *reference* to the parent's
            # executor; dropping it is all a child may ever do.
            return
        procs = list((getattr(executor, "_processes", None) or {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        self._evicted += 1

    def diagnostics(self) -> dict:
        """JSON-friendly snapshot of the pool state (tests, bench).

        ``pools_started - pools_evicted`` counts the pools currently
        alive in this process; the capacity-one registry keeps it at 0
        or 1 -- a multi-calculator (e.g. multi-corner) sweep can never
        leave more than one pool behind.
        """
        return {
            "live": self._executor is not None,
            "max_workers": self._max_workers,
            "owner_pid": self._owner_pid,
            "binding": list(self._binding) if self._binding else None,
            "pools_started": self._started,
            "pools_evicted": self._evicted,
        }


_POOL = _PersistentPool()


def shutdown_pool() -> None:
    """Terminate the persistent extraction pool, if any.

    Idempotent and registered with :mod:`atexit`, so interpreter exit --
    including an exit forced by ``KeyboardInterrupt`` -- always reaps
    the workers.  Safe to call at any time; the next parallel sweep
    simply cold-starts a fresh pool.
    """
    _POOL.discard()


atexit.register(shutdown_pool)


def install_sigterm_cleanup() -> bool:
    """Make SIGTERM reap the persistent pool before the process dies.

    atexit covers normal interpreter exit and ``KeyboardInterrupt``, but a
    containerized run is stopped with SIGTERM, whose default disposition
    kills the process *without* running atexit hooks -- leaking fork-pool
    workers as orphans.  This installs a handler that shuts the pool down,
    restores the default disposition, and re-raises the signal against the
    process itself so the observed exit status stays ``128 + SIGTERM``.

    Installed at import time, but only when it cannot stomp on anyone
    else: the handler goes in solely if the current disposition is the
    default one and we are on the main thread (signal handlers cannot be
    set elsewhere).  Returns ``True`` if the handler was installed.
    Applications that set their own SIGTERM handler (e.g. ``repro
    serve``) are responsible for calling :func:`shutdown_pool` in it.
    """
    if threading.current_thread() is not threading.main_thread():
        return False
    try:
        current = signal.getsignal(signal.SIGTERM)
    except (ValueError, AttributeError):  # pragma: no cover - exotic host
        return False
    if current is not signal.SIG_DFL:
        return False

    def _on_sigterm(signum, frame):  # pragma: no cover - exercised in a
        # subprocess by tests/test_serve_faults.py (coverage can't see it)
        shutdown_pool()
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):  # pragma: no cover - non-main interp
        return False
    return True


install_sigterm_cleanup()


def pool_diagnostics() -> dict:
    """Snapshot of the persistent pool (liveness, width, owner, binding)."""
    return _POOL.diagnostics()


#: Worker-side state: the fork-inherited calculator snapshot, per-corner
#: retargeted views of it, and the run token of the sweep the worker
#: last extracted for.
_POOL_CALC: "StageDelayCalculator | None" = None
_POOL_RETARGETED: "dict[tuple[Technology, bool], StageDelayCalculator]" = {}
_POOL_RUN_TOKEN: int | None = None


def _pool_init(calc: "StageDelayCalculator") -> None:
    """Adopt the fork-inherited calculator snapshot (once per worker).

    The netlist, stage graph, and warm per-device caches arrive by fork
    memory copy -- nothing is pickled -- and because the child shares
    the parent's str-hash seed, every set-iteration order matches the
    parent's, keeping extracted arc lists bit-identical to serial
    extraction.  The inherited pool bookkeeping is dropped so a worker
    can never touch its parent's executor.
    """
    global _POOL_CALC, _POOL_RUN_TOKEN
    _POOL_CALC = calc
    _POOL_RETARGETED.clear()
    _POOL_RUN_TOKEN = None
    _POOL.discard()  # child side: reference drop only (owner-pid guard)


def _pool_calc_for(
    tech: Technology, parametric: bool
) -> "StageDelayCalculator":
    """The worker's calculator view for ``(tech, parametric)``.

    An MCMM sweep fans scenarios over one fixed pool; the fork snapshot
    holds the *base* corner, and other corners (or the symbolic flavour
    of the base corner) are served by retargeted views built on first
    use (sharing the snapshot's structural facts) and kept for the rest
    of the pool's life -- each keeps its own corner-specific delay
    caches warm across sweeps.
    """
    calc = _POOL_CALC
    assert calc is not None
    if tech == calc.tech and parametric == calc.parametric:
        return calc
    key = (tech, parametric)
    view = _POOL_RETARGETED.get(key)
    if view is None:
        view = calc.retarget(tech)
        view.parametric = parametric
        _POOL_RETARGETED[key] = view
    return view


def _pool_extract(
    run_token: int,
    tech: Technology,
    parametric: bool,
    active_clocks: frozenset[str] | None,
    open_gates: frozenset[str],
    indices: list[int],
) -> list[tuple[int, list[tuple]]]:
    # The fault points are no-ops in production; the testing harness uses
    # them to crash/hang this worker or corrupt its return value (fork
    # workers inherit the installed handler by memory copy).
    global _POOL_RUN_TOKEN
    if run_token != _POOL_RUN_TOKEN:
        # New sweep: drop arcs cached by earlier sweeps so repeated
        # measurements do honest work.  Device facts and node-cap caches
        # persist -- amortizing those is the pool's entire point.
        assert _POOL_CALC is not None
        _POOL_CALC._arc_cache.clear()
        for view in _POOL_RETARGETED.values():
            view._arc_cache.clear()
        _POOL_RUN_TOKEN = run_token
    calc = _pool_calc_for(tech, parametric)
    out = []
    for index in indices:
        robust.fault_point("worker-task", index)
        arcs = calc.arcs(calc.graph[index], active_clocks, open_gates)
        out.append((index, _arcs_to_wire(arcs)))
    return robust.fault_point("worker-result", out)


def _timing_to_wire(timing: ArcTiming | None) -> tuple | None:
    return (
        None
        if timing is None
        else (
            timing.delay,
            timing.tau,
            timing.path,
            timing.truncated,
            timing.term,
        )
    )


def _timing_from_wire(wire: tuple | None) -> ArcTiming | None:
    if wire is None:
        return None
    delay, tau, path, truncated, term = wire
    return ArcTiming(
        delay=delay, tau=tau, path=path, truncated=truncated, term=term
    )


def _arcs_to_wire(arcs: list[StageArc]) -> list[tuple]:
    """Compact cross-process encoding: plain tuples, no dataclass pickles."""
    return [
        (
            arc.trigger,
            arc.via,
            arc.output,
            arc.inverting,
            _timing_to_wire(arc.rise),
            _timing_to_wire(arc.fall),
        )
        for arc in arcs
    ]


def _arcs_from_wire(index: int, wire_arcs: list[tuple]) -> list[StageArc]:
    return [
        StageArc(
            stage_index=index,
            trigger=trigger,
            via=via,
            output=output,
            inverting=inverting,
            rise=_timing_from_wire(rise),
            fall=_timing_from_wire(fall),
        )
        for trigger, via, output, inverting, rise, fall in wire_arcs
    ]


def _valid_pool_result(extracted, chunk) -> bool:
    """Structural corrupt-return detection for one pool chunk.

    The parent only trusts a worker return that is exactly a list of
    ``(requested stage index, list of 6-tuple wire arcs)`` pairs covering
    the chunk; anything else is discarded (and retried) rather than
    poisoning the arc cache -- the cache must stay bit-identical to
    serial extraction.
    """
    if not isinstance(extracted, list) or len(extracted) != len(chunk):
        return False
    expected = set(chunk)
    for item in extracted:
        if not (isinstance(item, tuple) and len(item) == 2):
            return False
        index, wire_arcs = item
        if index not in expected:
            return False
        if not isinstance(wire_arcs, list):
            return False
        if not all(
            isinstance(wire, tuple) and len(wire) == 6
            for wire in wire_arcs
        ):
            return False
    return True


def _swallow_result(future) -> None:
    """Retrieve an abandoned future's outcome so it is never logged."""
    try:
        future.exception()
    except Exception:
        pass


def _merge_arcs(arcs: list[StageArc]) -> list[StageArc]:
    """Deduplicate arcs by (trigger, output, inverting), keeping worst."""
    merged: dict[tuple[str, str, bool], StageArc] = {}
    for arc in arcs:
        key = (arc.trigger, arc.output, arc.inverting)
        existing = merged.get(key)
        if existing is None:
            merged[key] = arc
            continue
        merged[key] = StageArc(
            stage_index=arc.stage_index,
            trigger=arc.trigger,
            via="gate" if "gate" in (arc.via, existing.via) else arc.via,
            output=arc.output,
            inverting=arc.inverting,
            rise=_worse(existing.rise, arc.rise),
            fall=_worse(existing.fall, arc.fall),
        )
    return list(merged.values())


def _worse(a: ArcTiming | None, b: ArcTiming | None) -> ArcTiming | None:
    if a is None:
        return b
    if b is None:
        return a
    winner = a if a.delay >= b.delay else b
    if a.term is not None and b.term is not None and a.term is not b.term:
        # Parametric mode: record the contest, not just today's winner --
        # another corner may decide it the other way.  The incumbent
        # (a) goes first so evaluation replays the same tie rule.
        return replace(winner, term=("max", a.term, b.term))
    return winner


def _mark_truncated(timing: ArcTiming) -> ArcTiming:
    """Set ``truncated`` on a timing and inside its spine term, if any."""
    term = timing.term
    if term is not None and term[0] == "spine":
        term = term[:6] + (True,)
        return replace(timing, truncated=True, term=term)
    return replace(timing, truncated=True)
