"""Stage timing-arc extraction: TV's transistor-level delay calculator.

For each stage, this module enumerates *timing arcs*: (trigger, output)
pairs with intrinsic rise/fall delays.  An arc's trigger is either

* a **gate** input of the stage -- a node switching the gate of a member
  device (ordinary logic inputs, and clocks gating pass switches or
  precharge devices), or
* a **channel** boundary -- an externally driven node (primary input or
  clock) injecting signal directly into the stage's pass network.

Delay of an arc is computed on an RC tree built from the conducting
sub-network, with TV's value-independent worst-casing:

* **fall** (discharge): the maximum-resistance simple path from the output
  to gnd that passes through a device gated by the trigger, with every
  other conducting device attached as a capacitive branch;
* **rise** (charge): from vdd through the depletion load of a pulled-up
  node, then the maximum-resistance pass path to the output;
* **precharge rise**: from vdd through the clock-gated precharge device;
* **pass transfer**: from the injecting boundary node through the
  maximum-resistance directed pass path.

The RC tree metric is selected by ``model``: ``"elmore"`` (default),
``"lumped"``, ``"pr-min"``, or ``"pr-max"`` (ablation experiment R-T6).
Path enumeration is exact up to ``max_paths`` simple paths per arc; if the
cap is hit the arc is marked ``truncated`` (never silently).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..errors import StageError
from ..netlist import DeviceKind, Netlist, Transistor
from ..stages import Stage, StageGraph
from ..tech import Technology
from .effective_res import FALL, RISE, device_resistance
from .elmore import elmore_delay, lumped_delay
from .penfield import pr_bounds
from .rctree import RCTree
from .slope import SlopeModel

__all__ = ["ArcTiming", "StageArc", "StageDelayCalculator", "DELAY_MODELS"]

DELAY_MODELS = ("elmore", "lumped", "pr-min", "pr-max")

#: Crossing fraction for the 50% delay definition used throughout.
_CROSSING = 0.5


@dataclass(frozen=True)
class ArcTiming:
    """Timing of one output transition of an arc.

    ``delay`` is the intrinsic 50%-crossing delay (seconds), already scaled
    by the technology's calibration factor; ``tau`` is the underlying Elmore
    time constant (used for slew estimation); ``path`` names the devices on
    the worst resistive path; ``truncated`` is set if path enumeration hit
    its cap.
    """

    delay: float
    tau: float
    path: tuple[str, ...] = ()
    truncated: bool = False


@dataclass(frozen=True)
class StageArc:
    """One timing arc through a stage.

    ``inverting`` tells the arrival propagator which input transition
    produces which output transition: an inverting arc maps input-rise to
    output-fall (gate logic); a non-inverting arc maps rise to rise (pass
    transfer, precharge, clocked switches).
    """

    stage_index: int
    trigger: str
    via: str  # "gate" or "channel"
    output: str
    inverting: bool
    rise: ArcTiming | None
    fall: ArcTiming | None

    def timing(self, transition: str) -> ArcTiming | None:
        """The arc timing for ``"rise"`` or ``"fall"`` (None if absent)."""
        return self.rise if transition == RISE else self.fall


class StageDelayCalculator:
    """Extracts timing arcs from stages of one netlist.

    Parameters
    ----------
    netlist, graph:
        The circuit and its stage decomposition (flow directions should
        already be assigned by :func:`repro.flow.infer_flow`).
    model:
        RC metric: one of :data:`DELAY_MODELS`.
    slope:
        Slope-correction model (used by the analyzer; stored here so all
        timing policy lives in one object).
    max_paths:
        Cap on simple-path enumeration per arc.
    """

    def __init__(
        self,
        netlist: Netlist,
        graph: StageGraph,
        *,
        model: str = "elmore",
        slope: SlopeModel | None = None,
        max_paths: int = 4096,
        tech: Technology | None = None,
    ):
        if model not in DELAY_MODELS:
            raise StageError(
                f"unknown delay model {model!r}; choose from {DELAY_MODELS}"
            )
        self.netlist = netlist
        self.graph = graph
        self.model = model
        self.slope = slope if slope is not None else SlopeModel()
        self.max_paths = max_paths
        self.tech = tech or netlist.tech
        self._cap_cache: dict[str, float] = {}
        self._open_gates: frozenset[str] = frozenset()
        self._arc_cache: dict[tuple, list[StageArc]] = {}

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def arcs(
        self,
        stage: Stage,
        active_clocks: frozenset[str] | None = None,
        open_gates: frozenset[str] = frozenset(),
    ) -> list[StageArc]:
        """All timing arcs of ``stage`` (deduplicated, worst-case merged).

        ``active_clocks`` selects the clock phase under analysis: devices
        gated by a clock *not* in the set are treated as open (cut), and
        clock-triggered arcs exist only for active clocks.  ``None`` means
        the value-independent worst case: every clocked switch is closed --
        the right view for purely combinational circuits and for a quick
        whole-circuit longest-path estimate.

        ``open_gates`` names additional control nodes that are provably low
        in the scenario under analysis -- qualified clocks derived from the
        phase (e.g. a word line ``dec AND phi2`` during phi1).  Devices they
        gate are cut exactly like inactive clocks.
        """
        cache_key = (stage.index, active_clocks, open_gates)
        cached = self._arc_cache.get(cache_key)
        if cached is not None:
            return cached
        devices = self.graph.devices_of(stage)
        previous = self._open_gates
        self._open_gates = open_gates
        try:
            raw: list[StageArc] = []
            raw.extend(self._gate_arcs(stage, devices, active_clocks))
            raw.extend(self._clocked_switch_arcs(stage, devices, active_clocks))
            raw.extend(self._precharge_arcs(stage, devices, active_clocks))
            raw.extend(self._follower_arcs(stage, devices, active_clocks))
            raw.extend(self._channel_arcs(stage, devices, active_clocks))
            raw.extend(self._select_arcs(stage, devices, active_clocks))
            merged = _merge_arcs(raw)
            self._arc_cache[cache_key] = merged
            return merged
        finally:
            self._open_gates = previous

    def invalidate_devices(self, device_names) -> None:
        """Drop cached results touched by edited devices (e.g. resizing).

        Invalidates the capacitance cache of every terminal node and the
        arc cache of every stage owning one of those nodes -- the exact
        footprint a width change has on the timing model.  Everything else
        stays cached, which is what makes the optimizer's re-analysis
        loop cheap.
        """
        nodes: set[str] = set()
        for name in device_names:
            dev = self.netlist.device(name)
            nodes.update((dev.gate, dev.source, dev.drain))
        for node in nodes:
            self._cap_cache.pop(node, None)
        stale = set()
        for node in nodes:
            stage = self.graph.stage_of(node)
            if stage is not None:
                stale.add(stage.index)
        if stale:
            self._arc_cache = {
                key: arcs
                for key, arcs in self._arc_cache.items()
                if key[0] not in stale
            }

    def all_arcs(
        self,
        active_clocks: frozenset[str] | None = None,
        open_gates: frozenset[str] = frozenset(),
    ) -> list[StageArc]:
        """Timing arcs of every stage in the graph."""
        result: list[StageArc] = []
        for stage in self.graph:
            result.extend(self.arcs(stage, active_clocks, open_gates))
        return result

    def _clock_open(
        self, dev: Transistor, active_clocks: frozenset[str] | None
    ) -> bool:
        """True if the device is cut: inactive clock or constant-low gate."""
        if dev.gate in self._open_gates and dev.kind is DeviceKind.ENH:
            return True
        return (
            active_clocks is not None
            and dev.gate in self.netlist.clocks
            and dev.gate not in active_clocks
        )

    # ------------------------------------------------------------------
    # Arc families.
    # ------------------------------------------------------------------
    def _gate_arcs(
        self,
        stage: Stage,
        devices: list[Transistor],
        active_clocks: frozenset[str] | None,
    ):
        """Ordinary logic arcs: a gate input switches, an output moves."""
        gnd = self.netlist.gnd
        pulled_up = self._pulled_up_nodes(stage, devices)
        fall_edges = self._conduction_edges(stage, devices, FALL, active_clocks)
        rise_pass_edges = self._pass_edges(stage, devices, RISE, active_clocks)

        # Triggers: external gate inputs, plus *stage outputs* gating member
        # devices -- pass networks can merge a gate's input and output into
        # one channel-connected stage (a mux reading two gate outputs), and
        # such internal-but-visible nodes carry their own arrivals.  Purely
        # internal gates (tied load gates, anonymous feedback) stay out.
        triggers = {
            dev.gate: None
            for dev in devices
            if dev.kind is DeviceKind.ENH
            and (dev.gate not in stage.nodes or dev.gate in stage.outputs)
            and not self._is_precharge(dev)
            and not self._clock_open(dev, active_clocks)
        }
        arcs = []
        for output in stage.outputs:
            # One enumeration serves every trigger: the DFS records, for
            # each gate appearing on a discharge path, the worst path that
            # includes a device it gates.
            fall_by_gate = self._worst_fall_by_gate(output, fall_edges)
            rise = self._rise_via_pullup(
                stage, devices, output, pulled_up, rise_pass_edges
            )
            for trigger in triggers:
                fall = fall_by_gate.get(trigger)
                if fall is None:
                    # In ratioed logic a gate input influences an output
                    # only through a discharge path: the same pull-down
                    # whose turn-off lets the load raise the node.  No
                    # discharge path (under flow + one-hot constraints)
                    # means no arc -- attaching the trigger-independent
                    # rise here would fabricate couplings, e.g. between
                    # unrelated register-file cells sharing a bitline.
                    continue
                arcs.append(
                    StageArc(
                        stage_index=stage.index,
                        trigger=trigger,
                        via="gate",
                        output=output,
                        inverting=True,
                        rise=rise,
                        fall=fall,
                    )
                )
        return arcs

    def _worst_fall_by_gate(
        self,
        output: str,
        fall_edges: list[tuple[str, str, float, str]],
    ) -> dict[str, ArcTiming]:
        """Worst discharge path per triggering gate, in one enumeration.

        Enumerates flow-consistent simple paths from ``output`` to gnd once,
        and for every gate node appearing on a path keeps the
        maximum-resistance path through one of its devices.  Equivalent to
        running :meth:`_worst_path` with ``must_include`` per trigger, at a
        fraction of the cost on wide stages.
        """
        found = self._enumerate_paths(output, {self.netlist.gnd}, fall_edges)
        if found is None:
            return {}
        paths, truncated = found
        best: dict[str, tuple[float, list]] = {}
        for path_edges, r_sum in paths:
            gates = {
                self.netlist.device(name).gate
                for _a, _b, _r, name in path_edges
            }
            for gate in gates:
                if gate not in best or r_sum > best[gate][0]:
                    best[gate] = (r_sum, path_edges)
        result: dict[str, ArcTiming] = {}
        timing_cache: dict[int, ArcTiming] = {}
        for gate, (_r, path_edges) in best.items():
            key = id(path_edges)
            timing = timing_cache.get(key)
            if timing is None:
                spine = [
                    (b, a, r, name)
                    for (a, b, r, name) in reversed(path_edges)
                ]
                timing = self._timing_from_spine(spine, output, fall_edges)
                timing = replace(timing, truncated=timing.truncated or truncated)
                timing_cache[key] = timing
            result[gate] = timing
        return result

    def _enumerate_paths(
        self,
        start: str,
        targets: set[str],
        edges: list[tuple[str, str, float, str]],
        *,
        respect_flow: bool = False,
    ) -> tuple[list[tuple[list, float]], bool] | None:
        """All flow-consistent simple paths from ``start`` to a target.

        Returns ``([(edge_list, total_r), ...], truncated)`` or None.
        Shares traversal rules with :meth:`_worst_path`.
        """
        adjacency: dict[str, list[tuple[str, float, str]]] = {}
        for a, b, r, name in edges:
            adjacency.setdefault(a, []).append((b, r, name))
            adjacency.setdefault(b, []).append((a, r, name))
        if start not in adjacency:
            return None

        netlist = self.netlist
        paths: list[tuple[list, float]] = []
        truncated = False
        path: list[tuple[str, str, float, str]] = []
        visited = {start}
        groups_used: dict[int, str] = {}

        def dfs(node: str, r_sum: float) -> None:
            nonlocal truncated
            if len(paths) >= self.max_paths:
                truncated = True
                return
            if node in targets:
                paths.append((list(path), r_sum))
                return
            for neighbor, r, name in adjacency.get(node, ()):
                if neighbor in visited:
                    continue
                if not (
                    neighbor in targets or not netlist.is_boundary(neighbor)
                ):
                    continue
                if respect_flow and not self._conducts_toward(
                    name, neighbor, node
                ):
                    continue
                gate = netlist.device(name).gate
                group = netlist.exclusive_group_of(gate)
                if group is not None:
                    used = groups_used.get(group)
                    if used is not None and used != gate:
                        continue
                    fresh_group = used is None
                    if fresh_group:
                        groups_used[group] = gate
                else:
                    fresh_group = False
                visited.add(neighbor)
                path.append((node, neighbor, r, name))
                dfs(neighbor, r_sum + r)
                path.pop()
                visited.discard(neighbor)
                if fresh_group:
                    del groups_used[group]

        dfs(start, 0.0)
        if not paths:
            return None
        return paths, truncated

    def _clocked_switch_arcs(
        self,
        stage: Stage,
        devices: list[Transistor],
        active_clocks: frozenset[str] | None,
    ):
        """Clock-gated pass switches: clock rise lets data through.

        The arc trigger is the clock; the output follows the data side, so
        both transitions exist and the arc is non-inverting.
        """
        arcs = []
        pass_rise = self._pass_edges(stage, devices, RISE, active_clocks)
        pass_fall = self._pass_edges(stage, devices, FALL, active_clocks)
        for dev in devices:
            if dev.kind is not DeviceKind.ENH:
                continue
            if dev.gate not in self.netlist.clocks:
                continue
            if self._is_precharge(dev):
                continue
            if self._clock_open(dev, active_clocks):
                continue
            source_side = self._driving_terminal(dev)
            if source_side is None:
                continue
            receiving = dev.other_channel(source_side)
            for output in stage.outputs | ({receiving} & stage.nodes):
                rise = self._worst_tree_delay(
                    start=output,
                    targets={source_side},
                    edges=pass_rise,
                    must_include={dev.name},
                    transition=RISE,
                    root_override=source_side,
                )
                fall = self._worst_tree_delay(
                    start=output,
                    targets={source_side},
                    edges=pass_fall,
                    must_include={dev.name},
                    transition=FALL,
                    root_override=source_side,
                )
                if rise is None and fall is None:
                    continue
                arcs.append(
                    StageArc(
                        stage_index=stage.index,
                        trigger=dev.gate,
                        via="gate",
                        output=output,
                        inverting=False,
                        rise=rise,
                        fall=fall,
                    )
                )
        return arcs

    def _precharge_arcs(
        self,
        stage: Stage,
        devices: list[Transistor],
        active_clocks: frozenset[str] | None,
    ):
        """Clock-gated precharge devices: clock rise charges the node.

        Precharge devices sharing one clock conduct *simultaneously*, so a
        node with its own precharger never waits on a neighbour's: cross
        arcs are generated only toward outputs without a same-clock
        precharger, along paths that do not run through other same-clock
        precharged nodes (their own devices shunt any longer path).
        """
        arcs = []
        pass_rise = self._pass_edges(stage, devices, RISE, active_clocks)
        for dev in devices:
            if not self._is_precharge(dev):
                continue
            if self._clock_open(dev, active_clocks):
                continue
            node = (
                dev.source if dev.drain == self.netlist.vdd else dev.drain
            )
            siblings = {
                (d.source if d.drain == self.netlist.vdd else d.drain)
                for d in devices
                if self._is_precharge(d)
                and d.gate == dev.gate
                and d.name != dev.name
            }
            filtered_edges = [
                e
                for e in pass_rise
                if e[0] not in siblings and e[1] not in siblings
            ]
            r_pre = device_resistance(self.tech, dev, "precharge", RISE)
            outputs = stage.outputs | ({node} & stage.nodes)
            for output in outputs:
                if output != node and output in siblings:
                    continue  # it has its own (parallel) precharger
                if output == node:
                    spine = [(self.netlist.vdd, node, r_pre, dev.name)]
                else:
                    tail = self._worst_path(
                        start=output,
                        targets={node},
                        edges=filtered_edges,
                        must_include=set(),
                    )
                    if tail is None:
                        continue
                    path_edges, _ = tail
                    spine = [(self.netlist.vdd, node, r_pre, dev.name)]
                    spine.extend(
                        (b, a, r, name)
                        for (a, b, r, name) in reversed(path_edges)
                    )
                timing = self._timing_from_spine(
                    spine,
                    output,
                    self._conduction_edges(stage, devices, RISE, active_clocks),
                )
                arcs.append(
                    StageArc(
                        stage_index=stage.index,
                        trigger=dev.gate,
                        via="gate",
                        output=output,
                        inverting=False,
                        rise=timing,
                        fall=None,
                    )
                )
        return arcs

    def _follower_arcs(
        self,
        stage: Stage,
        devices: list[Transistor],
        active_clocks: frozenset[str] | None,
    ):
        """Gated depletion followers (superbuffer output stages).

        A depletion device with its channel to vdd and its gate driven by a
        signal (not tied) charges its source when the gate rises: a
        non-inverting rise-only arc from the gate.
        """
        arcs = []
        pass_rise = self._pass_edges(stage, devices, RISE, active_clocks)
        for dev in devices:
            if dev.kind is not DeviceKind.DEP or dev.is_load:
                continue
            if self.netlist.vdd not in dev.channel_nodes:
                continue
            node = dev.other_channel(self.netlist.vdd)
            r_up = device_resistance(self.tech, dev, "pullup", RISE)
            for output in stage.outputs | ({node} & stage.nodes):
                if output == node:
                    spine = [(self.netlist.vdd, node, r_up, dev.name)]
                else:
                    tail = self._worst_path(
                        start=output,
                        targets={node},
                        edges=pass_rise,
                        must_include=set(),
                    )
                    if tail is None:
                        continue
                    path_edges, _ = tail
                    spine = [(self.netlist.vdd, node, r_up, dev.name)]
                    spine.extend(
                        (b, a, r, name)
                        for (a, b, r, name) in reversed(path_edges)
                    )
                timing = self._timing_from_spine(spine, output, pass_rise)
                arcs.append(
                    StageArc(
                        stage_index=stage.index,
                        trigger=dev.gate,
                        via="gate",
                        output=output,
                        inverting=False,
                        rise=timing,
                        fall=None,
                    )
                )
        return arcs

    def _select_arcs(
        self,
        stage: Stage,
        devices: list[Transistor],
        active_clocks: frozenset[str] | None,
    ):
        """Pass-select arcs: a switch's *gate* re-routes the output.

        When a mux/shifter select rises, the output is newly connected to
        its source and transitions toward the source's value -- a timing
        path triggered by the select, not the source.  The arc's delay is
        the worst transfer from any driving point (boundary injector or
        pulled-up node) to the output through a path that includes a device
        the select gates.  Non-inverting, both transitions (select fall is
        a disconnect and launches nothing; charging it too is a small,
        stated pessimism of the arc model).
        """
        pass_devices = [
            d
            for d in devices
            if d.kind is DeviceKind.ENH
            and not self.netlist.is_rail(d.source)
            and not self.netlist.is_rail(d.drain)
            and d.gate not in self.netlist.clocks
            and not self._clock_open(d, active_clocks)
            and (d.gate not in stage.nodes or d.gate in stage.outputs)
        ]
        if not pass_devices:
            return []
        pass_rise = self._pass_edges(stage, devices, RISE, active_clocks)
        pass_fall = self._pass_edges(stage, devices, FALL, active_clocks)
        pulled_up = self._pulled_up_nodes(stage, devices)
        targets = set(pulled_up)
        for boundary in stage.boundary:
            if not self.netlist.is_rail(boundary):
                targets.add(boundary)
        if not targets:
            return []

        arcs = []
        triggers: dict[str, set[str]] = {}
        for dev in pass_devices:
            triggers.setdefault(dev.gate, set()).add(dev.name)
        for trigger, gated in triggers.items():
            for output in stage.outputs:
                if output == trigger:
                    continue
                rise = self._worst_tree_delay(
                    start=output,
                    targets=targets,
                    edges=pass_rise,
                    must_include=gated,
                    transition=RISE,
                )
                fall = self._worst_tree_delay(
                    start=output,
                    targets=targets,
                    edges=pass_fall,
                    must_include=gated,
                    transition=FALL,
                )
                if rise is None and fall is None:
                    continue
                arcs.append(
                    StageArc(
                        stage_index=stage.index,
                        trigger=trigger,
                        via="gate",
                        output=output,
                        inverting=False,
                        rise=rise,
                        fall=fall,
                    )
                )
        return arcs

    def _channel_arcs(
        self,
        stage: Stage,
        devices: list[Transistor],
        active_clocks: frozenset[str] | None,
    ):
        """Signal injected at an externally driven boundary channel node."""
        arcs = []
        pass_rise = self._pass_edges(stage, devices, RISE, active_clocks)
        pass_fall = self._pass_edges(stage, devices, FALL, active_clocks)
        for boundary in stage.boundary:
            if self.netlist.is_rail(boundary):
                continue
            flows_in = any(
                dev.flows_into(dev.other_channel(boundary))
                or dev.flows_out_of(boundary)
                for dev in self.netlist.channel_devices(boundary)
                if dev.name in set(stage.device_names)
            )
            if not flows_in:
                continue
            for output in stage.outputs:
                rise = self._worst_tree_delay(
                    start=output,
                    targets={boundary},
                    edges=pass_rise,
                    must_include=set(),
                    transition=RISE,
                    root_override=boundary,
                )
                fall = self._worst_tree_delay(
                    start=output,
                    targets={boundary},
                    edges=pass_fall,
                    must_include=set(),
                    transition=FALL,
                    root_override=boundary,
                )
                if rise is None and fall is None:
                    continue
                arcs.append(
                    StageArc(
                        stage_index=stage.index,
                        trigger=boundary,
                        via="channel",
                        output=output,
                        inverting=False,
                        rise=rise,
                        fall=fall,
                    )
                )
        return arcs

    # ------------------------------------------------------------------
    # Conduction-edge construction.
    # ------------------------------------------------------------------
    def _is_precharge(self, dev: Transistor) -> bool:
        return (
            dev.kind is DeviceKind.ENH
            and dev.gate in self.netlist.clocks
            and self.netlist.vdd in dev.channel_nodes
        )

    def _pulled_up_nodes(
        self, stage: Stage, devices: list[Transistor]
    ) -> dict[str, float]:
        """Stage nodes with depletion pull-ups -> combined resistance.

        Includes both tied-gate loads and gated depletion followers
        (superbuffer output stages): for worst-case rise both act as the
        charging resistance from vdd.
        """
        result: dict[str, float] = {}
        for dev in devices:
            if dev.kind is not DeviceKind.DEP:
                continue
            if self.netlist.vdd not in dev.channel_nodes:
                continue
            node = dev.other_channel(self.netlist.vdd)
            if node not in stage.nodes:
                continue
            r = device_resistance(self.tech, dev, "pullup", RISE)
            if node in result:
                # Parallel loads combine.
                result[node] = 1.0 / (1.0 / result[node] + 1.0 / r)
            else:
                result[node] = r
        return result

    def _conduction_edges(
        self,
        stage: Stage,
        devices: list[Transistor],
        transition: str,
        active_clocks: frozenset[str] | None,
    ) -> list[tuple[str, str, float, str]]:
        """Resistive edges usable on a discharge path (pulldowns + passes)."""
        edges = []
        for dev in devices:
            if dev.kind is not DeviceKind.ENH:
                continue
            if self.netlist.vdd in dev.channel_nodes:
                continue  # precharge / vdd switches never discharge
            if self._clock_open(dev, active_clocks):
                continue
            if self.netlist.gnd in dev.channel_nodes:
                r = device_resistance(self.tech, dev, "pulldown", transition)
            else:
                r = device_resistance(self.tech, dev, "pass", transition)
            edges.append((dev.source, dev.drain, r, dev.name))
        return edges

    def _pass_edges(
        self,
        stage: Stage,
        devices: list[Transistor],
        transition: str,
        active_clocks: frozenset[str] | None,
    ) -> list[tuple[str, str, float, str]]:
        """Resistive edges of the pass network only (no rail terminals)."""
        edges = []
        for dev in devices:
            if dev.kind is not DeviceKind.ENH:
                continue
            if self.netlist.is_rail(dev.source) or self.netlist.is_rail(dev.drain):
                continue
            if self._clock_open(dev, active_clocks):
                continue
            r = device_resistance(self.tech, dev, "pass", transition)
            edges.append((dev.source, dev.drain, r, dev.name))
        return edges

    # ------------------------------------------------------------------
    # Path search and RC evaluation.
    # ------------------------------------------------------------------
    def _conducts_toward(self, name: str, from_node: str, to_node: str) -> bool:
        """True if device ``name`` can carry signal ``from_node -> to_node``.

        Unresolved (UNKNOWN) devices are treated as bidirectional -- the
        calculator must stay usable before flow inference has run.
        """
        dev = self.netlist.device(name)
        from ..netlist import FlowDirection

        if dev.flow is FlowDirection.UNKNOWN:
            return True
        return dev.flows_out_of(from_node)

    def _worst_path(
        self,
        start: str,
        targets: set[str],
        edges: list[tuple[str, str, float, str]],
        must_include: set[str],
        *,
        respect_flow: bool = True,
    ) -> tuple[list[tuple[str, str, float, str]], bool] | None:
        """Maximum-resistance flow-consistent path from ``start`` to a target.

        Edges are ``(a, b, r, device_name)``; the path must use at least one
        device from ``must_include`` (if non-empty).  The search walks
        *backward* from the measured output toward the driving point, so a
        hop from ``node`` to ``neighbor`` requires the device to conduct
        signal ``neighbor -> node``; this is what prevents physically
        meaningless paths that snake against the inferred signal flow.
        One-hot assertions (:meth:`Netlist.add_exclusive_group`) prune
        paths that would need two mutually exclusive switches closed.

        Returns the edge list ordered from ``start`` toward the target and
        a truncation flag, or None if no qualifying path exists.
        """
        adjacency: dict[str, list[tuple[str, float, str]]] = {}
        for a, b, r, name in edges:
            adjacency.setdefault(a, []).append((b, r, name))
            adjacency.setdefault(b, []).append((a, r, name))
        if start not in adjacency:
            return None

        netlist = self.netlist
        best: list[tuple[str, str, float, str]] | None = None
        best_r = -1.0
        examined = 0
        truncated = False
        path: list[tuple[str, str, float, str]] = []
        visited = {start}
        groups_used: dict[int, str] = {}

        def dfs(node: str, r_sum: float, included: bool) -> None:
            nonlocal best, best_r, examined, truncated
            if examined >= self.max_paths:
                truncated = True
                return
            if node in targets:
                examined += 1
                if (included or not must_include) and r_sum > best_r:
                    best_r = r_sum
                    best = list(path)
                return
            for neighbor, r, name in adjacency.get(node, ()):
                if neighbor in visited:
                    continue
                if not (
                    neighbor in targets or not netlist.is_boundary(neighbor)
                ):
                    continue
                if respect_flow and not self._conducts_toward(
                    name, neighbor, node
                ):
                    continue
                gate = netlist.device(name).gate
                group = netlist.exclusive_group_of(gate)
                if group is not None:
                    used = groups_used.get(group)
                    if used is not None and used != gate:
                        continue
                    fresh_group = used is None
                    if fresh_group:
                        groups_used[group] = gate
                else:
                    fresh_group = False
                visited.add(neighbor)
                path.append((node, neighbor, r, name))
                dfs(neighbor, r_sum + r, included or name in must_include)
                path.pop()
                visited.discard(neighbor)
                if fresh_group:
                    del groups_used[group]

        dfs(start, 0.0, False)
        if best is None:
            return None
        return best, truncated

    def _worst_tree_delay(
        self,
        start: str,
        targets: set[str],
        edges: list[tuple[str, str, float, str]],
        must_include: set[str],
        transition: str,
        root_override: str | None = None,
    ) -> ArcTiming | None:
        """Worst path from ``start`` back to a target, evaluated as a tree.

        The tree root is the reached target (the driving point); the path is
        the spine, and every other conducting edge hangs capacitive
        branches.
        """
        found = self._worst_path(start, targets, edges, must_include)
        if found is None:
            return None
        path_edges, truncated = found
        # path_edges run start -> target; the spine must run root -> start.
        root = root_override or path_edges[-1][1]
        spine = [
            (b, a, r, name) for (a, b, r, name) in reversed(path_edges)
        ]
        timing = self._timing_from_spine(spine, start, edges)
        return replace(timing, truncated=timing.truncated or truncated)

    def _timing_from_spine(
        self,
        spine: list[tuple[str, str, float, str]],
        output: str,
        branch_edges: list[tuple[str, str, float, str]],
    ) -> ArcTiming:
        """Build the RC tree for a spine and evaluate the configured metric."""
        root = spine[0][0]
        tree = RCTree(root)
        used_devices = []
        for parent, child, r, name in spine:
            tree.add_child(parent, child, r, self._node_cap(child))
            used_devices.append(name)

        # Attach capacitive branches: BFS from spine nodes over remaining
        # conducting edges that stay inside the circuit (never through
        # rails or boundary nodes, which are incompressible sources).
        # Branch traversal follows signal flow outward from the spine and
        # honours one-hot assertions against the gates used on the spine.
        spine_groups: dict[int, str] = {}
        for _p, _c, _r, name in spine:
            if name in self.netlist.devices:
                gate = self.netlist.device(name).gate
                group = self.netlist.exclusive_group_of(gate)
                if group is not None:
                    spine_groups[group] = gate
        adjacency: dict[str, list[tuple[str, float, str]]] = {}
        for a, b, r, name in branch_edges:
            adjacency.setdefault(a, []).append((b, r, name))
            adjacency.setdefault(b, []).append((a, r, name))
        frontier = [child for _p, child, _r, _n in spine]
        while frontier:
            current = frontier.pop(0)
            for neighbor, r, name in adjacency.get(current, ()):
                if neighbor in tree or self.netlist.is_boundary(neighbor):
                    continue
                if not self._conducts_toward(name, current, neighbor):
                    continue
                gate = self.netlist.device(name).gate
                group = self.netlist.exclusive_group_of(gate)
                if group is not None and spine_groups.get(group, gate) != gate:
                    continue
                tree.add_child(current, neighbor, r, self._node_cap(neighbor))
                frontier.append(neighbor)

        tau = elmore_delay(tree, output)
        k = self._k_factor(root)
        if root == self.netlist.gnd:
            # Ratioed fight: the depletion pull-up keeps sourcing current
            # while the pull-down path discharges the node, stretching the
            # fall.  First-order factor R_up / (R_up - R_down), clamped --
            # a legal ratio guarantees R_up >> R_down, and ERC catches the
            # rest.
            k *= self._ratio_derate(output, tree.r_root(output))
        if self.model == "elmore":
            delay = k * tau
        elif self.model == "lumped":
            delay = k * lumped_delay(tree, output)
        elif self.model == "pr-min":
            delay = pr_bounds(tree, output, _CROSSING).lower * (
                k / math.log(2.0)
            )
        else:  # pr-max
            delay = pr_bounds(tree, output, _CROSSING).upper * (
                k / math.log(2.0)
            )
        return ArcTiming(delay=delay, tau=tau, path=tuple(used_devices))

    def _ratio_derate(self, output: str, r_down: float) -> float:
        """Fall-delay stretch from the pull-up fighting the discharge."""
        r_up = None
        for dev in self.netlist.channel_devices(output):
            if dev.kind is not DeviceKind.DEP:
                continue
            if dev.other_channel(output) != self.netlist.vdd:
                continue
            r = device_resistance(self.tech, dev, "pullup", RISE)
            r_up = r if r_up is None else 1.0 / (1.0 / r_up + 1.0 / r)
        if r_up is None or r_up <= r_down:
            return 1.5 if r_up is not None else 1.0
        return min(1.5, r_up / (r_up - r_down))

    def _k_factor(self, root: str) -> float:
        """Calibration factor: rising transitions (from vdd) are slower."""
        if root == self.netlist.vdd:
            return self.tech.k_rise
        if root == self.netlist.gnd:
            return self.tech.k_fall
        # Pass transfer from a driven node: between the two; use rise factor
        # (the conservative choice).
        return self.tech.k_rise

    def _node_cap(self, name: str) -> float:
        if self.netlist.is_rail(name):
            return 0.0
        cached = self._cap_cache.get(name)
        if cached is None:
            cached = self.netlist.node_capacitance(name, self.tech)
            self._cap_cache[name] = cached
        return cached

    def _rise_via_pullup(
        self,
        stage: Stage,
        devices: list[Transistor],
        output: str,
        pulled_up: dict[str, float],
        pass_edges: list[tuple[str, str, float, str]],
    ) -> ArcTiming | None:
        """Worst rise of ``output``: vdd -> load -> pass path -> output."""
        best: ArcTiming | None = None
        for node, r_load in pulled_up.items():
            if node == output:
                spine = [(self.netlist.vdd, node, r_load, f"load@{node}")]
            else:
                tail = self._worst_path(
                    start=output,
                    targets={node},
                    edges=pass_edges,
                    must_include=set(),
                )
                if tail is None:
                    continue
                path_edges, _trunc = tail
                spine = [(self.netlist.vdd, node, r_load, f"load@{node}")]
                spine.extend(
                    (b, a, r, name) for (a, b, r, name) in reversed(path_edges)
                )
            timing = self._timing_from_spine(spine, output, pass_edges)
            if best is None or timing.delay > best.delay:
                best = timing
        return best

    def _driving_terminal(self, dev: Transistor) -> str | None:
        """The channel terminal signal flows out of (None if unresolved)."""
        if dev.flows_out_of(dev.source) and not dev.flows_out_of(dev.drain):
            return dev.source
        if dev.flows_out_of(dev.drain) and not dev.flows_out_of(dev.source):
            return dev.drain
        # Bidirectional: pick the terminal that looks driven (pull-up or
        # boundary); fall back to the source.
        for terminal in dev.channel_nodes:
            if self.netlist.is_boundary(terminal) or self.netlist.has_pullup(
                terminal
            ):
                return terminal
        return dev.source


def _merge_arcs(arcs: list[StageArc]) -> list[StageArc]:
    """Deduplicate arcs by (trigger, output, inverting), keeping worst."""
    merged: dict[tuple[str, str, bool], StageArc] = {}
    for arc in arcs:
        key = (arc.trigger, arc.output, arc.inverting)
        existing = merged.get(key)
        if existing is None:
            merged[key] = arc
            continue
        merged[key] = StageArc(
            stage_index=arc.stage_index,
            trigger=arc.trigger,
            via="gate" if "gate" in (arc.via, existing.via) else arc.via,
            output=arc.output,
            inverting=arc.inverting,
            rise=_worse(existing.rise, arc.rise),
            fall=_worse(existing.fall, arc.fall),
        )
    return list(merged.values())


def _worse(a: ArcTiming | None, b: ArcTiming | None) -> ArcTiming | None:
    if a is None:
        return b
    if b is None:
        return a
    return a if a.delay >= b.delay else b
