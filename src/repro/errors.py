"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Subclasses identify the subsystem that failed:
netlist construction, ``.sim`` parsing, electrical rules, stage analysis,
signal-flow inference, timing analysis, or simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetlistError(ReproError):
    """A netlist is malformed or an illegal construction was attempted."""


class SimFormatError(NetlistError):
    """A ``.sim`` file could not be parsed or written."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class ElectricalRuleError(NetlistError):
    """An electrical rules check (ERC) failed on a netlist.

    ``violations`` carries every :class:`~repro.netlist.validate.Violation`
    found by the check -- errors *and* warnings -- so callers that catch the
    exception (quarantine mode, the CLI) still see the full picture instead
    of only the truncated summary in the message.
    """

    def __init__(self, message: str, violations: tuple = ()):  # noqa: D107
        super().__init__(message)
        self.violations = tuple(violations)

    @property
    def errors(self) -> tuple:
        """The error-severity violations behind this exception."""
        return tuple(v for v in self.violations if v.severity == "error")

    @property
    def warnings(self) -> tuple:
        """The warning-severity violations found in the same check run."""
        return tuple(v for v in self.violations if v.severity == "warning")


class StageError(ReproError):
    """Stage decomposition or node classification failed."""


class DeadlineError(StageError):
    """An analysis deadline expired under the ``strict`` error policy.

    Raised by arc extraction when a per-run deadline (see
    ``TimingAnalyzer.analyze(deadline=...)``) passes before every stage
    is extracted.  The degraded policies (``quarantine``/``best-effort``)
    never raise this: they skip the remaining stages and report a
    ``deadline-exceeded`` diagnostic instead.  The serve daemon maps this
    to HTTP 504.
    """


class FlowError(ReproError):
    """Signal-flow direction inference failed or was contradictory."""


class TimingError(ReproError):
    """Static timing analysis failed (e.g. unbroken combinational cycle)."""


class ClockingError(TimingError):
    """A clock schema is inconsistent or a clocking constraint is violated."""


class ReportSchemaError(ReproError):
    """A JSON timing report does not conform to the published schema."""


class SimulationError(ReproError):
    """A circuit simulation (switch-level or SPICE-lite) failed."""


class ConvergenceError(SimulationError):
    """The SPICE-lite Newton iteration failed to converge."""
