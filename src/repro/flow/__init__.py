"""Signal-flow direction inference for pass-transistor networks.

Public surface:

* :func:`infer_flow` -- structural inference over a netlist (in place)
* :class:`FlowReport` -- coverage accounting (experiment R-T4)
* :class:`Hint`, :class:`HintSet` -- designer annotations
"""

from .direction import FlowReport, infer_flow
from .hints import Hint, HintSet

__all__ = ["infer_flow", "FlowReport", "Hint", "HintSet"]
