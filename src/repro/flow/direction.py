"""Signal-flow direction inference for pass-transistor networks.

nMOS designs route data through enhancement pass transistors (buses, muxes,
barrel shifters, latch switches).  A static timing analyzer must know which
way signal flows through each pass channel, or every pass network becomes an
unanalyzable bidirectional blob.  TV's answer -- one of the paper's central
contributions -- is *structural inference*: a small set of rules decides the
direction of nearly every pass device from the shape of the netlist alone,
leaving only a handful for the designer to annotate.

Rules (applied to a fixpoint):

``rail``       devices with a rail terminal carry drive out of the rail
               (pull-downs discharge, precharge devices charge)
``boundary``   an externally driven node (primary input, clock) drives its
               pass channels outward; a pure primary output receives
``driven``     a locally driven node (depletion pull-up present, i.e. a
               restoring gate output) drives its pass channels outward;
               two driven terminals make the device bidirectional
``sink``       a terminal that only feeds gates (and has no other channel
               or local drive) receives
``through``    if every *other* resolved channel of an undriven node flows
               into it, its remaining channels flow out (the signal must
               pass through); symmetrically, if every other channel flows
               out, the remaining one flows in
``hint``       designer annotations (:mod:`repro.flow.hints`) win outright

Unresolved devices after the fixpoint are assigned ``BIDIR`` --
pessimistically analyzable both ways -- and reported, reproducing the
paper's accounting of how much of a real chip the rules cover (experiment
R-T4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import FlowError
from ..netlist import DeviceKind, FlowDirection, Netlist, Transistor

__all__ = ["FlowReport", "infer_flow"]


@dataclass
class FlowReport:
    """Outcome of signal-flow inference over one netlist.

    ``by_rule`` counts devices resolved by each rule name; ``unresolved``
    lists devices that fell back to BIDIR; ``conflicts`` lists devices where
    two rules demanded opposite directions (also left BIDIR).
    """

    total_devices: int = 0
    pass_candidates: int = 0
    by_rule: Counter = field(default_factory=Counter)
    hinted: list[str] = field(default_factory=list)
    unresolved: list[str] = field(default_factory=list)
    conflicts: list[str] = field(default_factory=list)

    @property
    def auto_resolved(self) -> int:
        """Pass devices resolved by structural rules (not hints)."""
        return self.pass_candidates - len(self.hinted) - len(self.unresolved)

    @property
    def coverage(self) -> float:
        """Fraction of pass candidates resolved without hints."""
        if self.pass_candidates == 0:
            return 1.0
        return self.auto_resolved / self.pass_candidates

    def summary(self) -> str:
        """Multi-line coverage report (the R-T4 accounting)."""
        lines = [
            f"signal-flow inference: {self.pass_candidates} pass devices "
            f"of {self.total_devices} total",
            f"  auto-resolved : {self.auto_resolved} "
            f"({100.0 * self.coverage:.1f}%)",
            f"  hinted        : {len(self.hinted)}",
            f"  unresolved    : {len(self.unresolved)} (treated as bidir)",
        ]
        if self.conflicts:
            lines.append(f"  conflicts     : {len(self.conflicts)}")
        for rule, count in sorted(self.by_rule.items()):
            lines.append(f"    rule {rule:<9}: {count}")
        return "\n".join(lines)


def infer_flow(netlist: Netlist, *, reset: bool = False) -> FlowReport:
    """Assign a flow direction to every device of ``netlist`` in place.

    Pre-set directions on devices (from :meth:`Netlist.set_flow_hint` or a
    previous run) are respected as hints unless ``reset`` is true.  Returns
    a :class:`FlowReport`; raises :class:`FlowError` only on internal
    inconsistency, never on mere ambiguity (ambiguous devices become BIDIR).
    """
    report = FlowReport(total_devices=len(netlist.devices))

    if reset:
        for dev in netlist.devices.values():
            dev.flow = FlowDirection.UNKNOWN

    pass_candidates = [
        d
        for d in netlist.devices.values()
        if d.kind is DeviceKind.ENH
        and not netlist.is_rail(d.source)
        and not netlist.is_rail(d.drain)
    ]
    report.pass_candidates = len(pass_candidates)
    report.hinted = [d.name for d in pass_candidates if d.flow.resolved]

    _resolve_rail_devices(netlist, report)
    _resolve_boundary_and_driven(netlist, pass_candidates, report)
    _fixpoint_through(netlist, pass_candidates, report)

    for dev in pass_candidates:
        if not dev.flow.resolved:
            dev.flow = FlowDirection.BIDIR
            report.unresolved.append(dev.name)

    return report


# ----------------------------------------------------------------------
# Rule implementations.
# ----------------------------------------------------------------------
def _set_flow(
    dev: Transistor,
    out_of: str,
    rule: str,
    report: FlowReport,
) -> bool:
    """Assign flow out of terminal ``out_of``; detect conflicts.

    Returns True if the assignment changed the device.
    """
    wanted = (
        FlowDirection.S_TO_D if out_of == dev.source else FlowDirection.D_TO_S
    )
    if dev.flow is FlowDirection.UNKNOWN:
        dev.flow = wanted
        report.by_rule[rule] += 1
        return True
    if dev.flow in (wanted, FlowDirection.BIDIR):
        return False
    # Opposite direction already assigned: a genuine conflict.
    dev.flow = FlowDirection.BIDIR
    report.conflicts.append(dev.name)
    return True


def _resolve_rail_devices(netlist: Netlist, report: FlowReport) -> None:
    """Rule ``rail``: drive flows out of rail terminals."""
    for dev in netlist.devices.values():
        if dev.flow.resolved:
            continue
        if netlist.is_rail(dev.source):
            _set_flow(dev, dev.source, "rail", report)
        elif netlist.is_rail(dev.drain):
            _set_flow(dev, dev.drain, "rail", report)


def _locally_driven(netlist: Netlist, node: str) -> bool:
    """A node with static local drive: pull-up, follower, or precharge."""
    if netlist.has_pullup(node):
        return True
    for dev in netlist.channel_devices(node):
        other_is_vdd = dev.other_channel(node) == netlist.vdd
        if dev.kind is DeviceKind.DEP and other_is_vdd:
            return True  # gated depletion follower (superbuffer output)
        if (
            dev.kind is DeviceKind.ENH
            and dev.gate in netlist.clocks
            and other_is_vdd
        ):
            return True
    return False


def _resolve_boundary_and_driven(
    netlist: Netlist,
    pass_candidates: list[Transistor],
    report: FlowReport,
) -> None:
    """Rules ``boundary``, ``driven``, and ``sink``."""
    for dev in pass_candidates:
        if dev.flow.resolved:
            continue
        s, d = dev.source, dev.drain
        s_drives = _terminal_drives(netlist, s)
        d_drives = _terminal_drives(netlist, d)
        if s_drives and d_drives:
            dev.flow = FlowDirection.BIDIR
            report.by_rule["driven"] += 1
            continue
        if s_drives:
            _set_flow(dev, s, "driven" if _locally_driven(netlist, s) else "boundary", report)
            continue
        if d_drives:
            _set_flow(dev, d, "driven" if _locally_driven(netlist, d) else "boundary", report)
            continue
        # Sink rule: a terminal with no other channel device, no drive, that
        # only feeds gates or is a primary output, must receive.
        if _is_pure_sink(netlist, s, dev):
            _set_flow(dev, d, "sink", report)
        elif _is_pure_sink(netlist, d, dev):
            _set_flow(dev, s, "sink", report)


def _terminal_drives(netlist: Netlist, node: str) -> bool:
    """True if the node is a source of signal by itself."""
    if node in netlist.inputs or node in netlist.clocks:
        return True
    return _locally_driven(netlist, node)


def _is_pure_sink(netlist: Netlist, node: str, via: Transistor) -> bool:
    if netlist.is_boundary(node):
        return False
    others = [d for d in netlist.channel_devices(node) if d.name != via.name]
    if others:
        return False
    return bool(netlist.gate_loads(node)) or node in netlist.outputs


def _fixpoint_through(
    netlist: Netlist,
    pass_candidates: list[Transistor],
    report: FlowReport,
) -> None:
    """Rule ``through``, iterated to a fixpoint.

    For an undriven internal node, signal conservation applies: if every
    resolved channel flows in, unresolved channels must flow out, and if
    every resolved channel flows out, a single unresolved channel must flow
    in.
    """
    changed = True
    guard = 0
    limit = 2 * len(netlist.devices) + 10
    while changed:
        guard += 1
        if guard > limit:
            raise FlowError(
                "signal-flow fixpoint failed to converge "
                f"(> {limit} sweeps) -- internal error"
            )
        changed = False
        for dev in pass_candidates:
            if dev.flow.resolved:
                continue
            for node in dev.channel_nodes:
                if netlist.is_boundary(node) or _terminal_drives(netlist, node):
                    continue
                siblings = [
                    d
                    for d in netlist.channel_devices(node)
                    if d.name != dev.name
                ]
                if not siblings:
                    continue
                if all(d.flow.resolved for d in siblings):
                    if all(d.flows_into(node) for d in siblings):
                        # All signal arrives here; this device carries it on.
                        if _set_flow(dev, node, "through", report):
                            changed = True
                        break
                    unresolved_out = [
                        d for d in siblings if d.flows_out_of(node)
                    ]
                    if len(unresolved_out) == len(siblings):
                        # Everything else leaves: signal must enter here.
                        other = dev.other_channel(node)
                        if _set_flow(dev, other, "through", report):
                            changed = True
                        break
