"""Designer hints for signal-flow inference.

TV accepted a small annotation file naming the pass transistors whose
direction the structural rules could not decide (bidirectional buses being
the classic case).  :class:`HintSet` reproduces that mechanism: a list of
``(pattern, direction)`` pairs applied to device names, with ``fnmatch``
glob patterns so a whole bus (``"bus.sw*"``) can be annotated in one line.

Hints are applied *before* :func:`repro.flow.infer_flow`, which then treats
the pinned devices as resolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from ..errors import FlowError
from ..netlist import FlowDirection, Netlist

__all__ = ["Hint", "HintSet"]


@dataclass(frozen=True)
class Hint:
    """One hint: devices matching ``pattern`` flow in ``direction``.

    ``direction`` accepts a :class:`FlowDirection` or one of the spellings
    ``"s->d"``, ``"d->s"``, ``"bidir"``.
    """

    pattern: str
    direction: FlowDirection

    def __post_init__(self) -> None:
        if not self.pattern:
            raise FlowError("hint pattern must be non-empty")
        object.__setattr__(self, "direction", FlowDirection(self.direction))
        if self.direction is FlowDirection.UNKNOWN:
            raise FlowError("a hint cannot assign UNKNOWN")


@dataclass
class HintSet:
    """An ordered collection of hints (later hints win on overlap)."""

    hints: list[Hint] = field(default_factory=list)

    def add(self, pattern: str, direction: FlowDirection | str) -> "HintSet":
        """Append a hint; returns self for chaining."""
        self.hints.append(Hint(pattern, FlowDirection(direction)))
        return self

    def apply(self, netlist: Netlist) -> int:
        """Pin matching devices' flow in place; return devices touched.

        Raises :class:`FlowError` if any hint matches nothing -- a stale
        hint file is a real design-flow bug worth surfacing.
        """
        touched: set[str] = set()
        for hint in self.hints:
            matched = False
            for name, dev in netlist.devices.items():
                if fnmatchcase(name, hint.pattern):
                    dev.flow = hint.direction
                    touched.add(name)
                    matched = True
            if not matched:
                raise FlowError(
                    f"flow hint {hint.pattern!r} matched no device in "
                    f"netlist {netlist.name!r}"
                )
        return len(touched)

    def __len__(self) -> int:
        return len(self.hints)
