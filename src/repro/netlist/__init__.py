"""Transistor-level nMOS netlist substrate.

Public surface:

* :class:`Netlist` -- the circuit container and builder API
* :class:`Node`, :class:`Transistor`, :class:`DeviceKind`,
  :class:`FlowDirection` -- primitive components
* :mod:`repro.netlist.simfmt` -- ``.sim`` interchange-format codec
  (:func:`sim_dumps`, :func:`sim_loads`, :func:`sim_dump`, :func:`sim_load`)
* :func:`check`, :func:`validate`, :class:`Violation` -- electrical rules
"""

from .components import DeviceKind, FlowDirection, Node, Transistor
from .netlist import Netlist
from .simfmt import dump as sim_dump
from .simfmt import dumps as sim_dumps
from .simfmt import load as sim_load
from .simfmt import loads as sim_loads
from .validate import Violation, check, validate

__all__ = [
    "Netlist",
    "Node",
    "Transistor",
    "DeviceKind",
    "FlowDirection",
    "sim_dump",
    "sim_dumps",
    "sim_load",
    "sim_loads",
    "Violation",
    "check",
    "validate",
]
