"""Primitive netlist components: nodes and transistors.

An nMOS netlist is a bipartite structure of electrical *nodes* and MOS
*transistors*.  Each transistor has three terminals -- gate, source, drain --
naming nodes.  Two device kinds exist in an nMOS depletion-load process:

``enh``
    Enhancement-mode device (Vt > 0): used as pull-downs in restoring logic
    and as pass transistors / transmission switches.

``dep``
    Depletion-mode device (Vt < 0, always conducting): used as the pull-up
    load of restoring logic, conventionally with its gate tied to its source
    so it behaves as a two-terminal nonlinear resistor.

Source and drain of a MOS device are physically symmetric; the netlist keeps
the two names so that signal-flow inference (:mod:`repro.flow`) can express a
direction, but nothing in the electrical model distinguishes them until a
direction is assigned.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["DeviceKind", "FlowDirection", "Node", "Transistor"]


class DeviceKind(str, enum.Enum):
    """MOS device kind in a depletion-load nMOS process."""

    ENH = "enh"
    DEP = "dep"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FlowDirection(enum.Enum):
    """Direction of signal flow through a device's channel.

    Assigned by :mod:`repro.flow`; ``UNKNOWN`` devices that survive inference
    are treated pessimistically as ``BIDIR``.
    """

    UNKNOWN = "unknown"
    S_TO_D = "s->d"
    D_TO_S = "d->s"
    BIDIR = "bidir"

    @property
    def resolved(self) -> bool:
        """True if the direction has been decided (including BIDIR)."""
        return self is not FlowDirection.UNKNOWN

    def reversed(self) -> "FlowDirection":
        """The opposite direction (BIDIR and UNKNOWN are self-inverse)."""
        if self is FlowDirection.S_TO_D:
            return FlowDirection.D_TO_S
        if self is FlowDirection.D_TO_S:
            return FlowDirection.S_TO_D
        return self


@dataclass
class Node:
    """An electrical node.

    ``cap`` is the *explicit* wiring capacitance attached to the node, in
    farads.  The total electrical capacitance of a node also includes the
    gate and diffusion capacitances of attached devices; use
    :meth:`repro.netlist.Netlist.node_capacitance` for that figure.
    """

    name: str
    cap: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if self.cap < 0:
            raise ValueError(f"node {self.name!r}: capacitance must be >= 0")


@dataclass
class Transistor:
    """A MOS transistor.

    ``w`` and ``l`` are drawn channel width and length in metres.  ``flow``
    records the inferred or hinted signal-flow direction through the channel;
    it defaults to UNKNOWN and is filled in by :mod:`repro.flow`.
    """

    name: str
    kind: DeviceKind
    gate: str
    source: str
    drain: str
    w: float
    l: float
    flow: FlowDirection = FlowDirection.UNKNOWN

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("transistor name must be non-empty")
        if self.w <= 0 or self.l <= 0:
            raise ValueError(
                f"transistor {self.name!r}: geometry must be positive "
                f"(w={self.w}, l={self.l})"
            )
        if self.source == self.drain:
            raise ValueError(
                f"transistor {self.name!r}: source and drain are the same "
                f"node {self.source!r}"
            )
        self.kind = DeviceKind(self.kind)

    @property
    def channel_nodes(self) -> tuple[str, str]:
        """The two channel terminals, ``(source, drain)``."""
        return (self.source, self.drain)

    def other_channel(self, node: str) -> str:
        """Given one channel terminal name, return the other one."""
        if node == self.source:
            return self.drain
        if node == self.drain:
            return self.source
        raise ValueError(
            f"node {node!r} is not a channel terminal of {self.name!r}"
        )

    def touches_channel(self, node: str) -> bool:
        """True if ``node`` is this device's source or drain."""
        return node == self.source or node == self.drain

    def flows_out_of(self, node: str) -> bool:
        """True if the assigned flow direction carries signal out of ``node``.

        BIDIR devices flow out of both terminals; UNKNOWN devices flow out of
        neither (callers should resolve flow first, or treat UNKNOWN as BIDIR
        explicitly).
        """
        if self.flow is FlowDirection.BIDIR:
            return self.touches_channel(node)
        if self.flow is FlowDirection.S_TO_D:
            return node == self.source
        if self.flow is FlowDirection.D_TO_S:
            return node == self.drain
        return False

    def flows_into(self, node: str) -> bool:
        """True if the assigned flow direction carries signal into ``node``."""
        if self.flow is FlowDirection.BIDIR:
            return self.touches_channel(node)
        if self.flow is FlowDirection.S_TO_D:
            return node == self.drain
        if self.flow is FlowDirection.D_TO_S:
            return node == self.source
        return False

    @property
    def is_load(self) -> bool:
        """True for the conventional depletion load (gate tied to a channel
        terminal), the pull-up of restoring nMOS logic."""
        return self.kind is DeviceKind.DEP and (
            self.gate == self.source or self.gate == self.drain
        )
