"""The :class:`Netlist` container: a transistor-level nMOS circuit.

A netlist owns a set of :class:`~repro.netlist.components.Node` objects and a
set of :class:`~repro.netlist.components.Transistor` objects, plus the
*boundary declarations* that a timing analyzer needs and that a raw layout
extract does not carry: which nodes are primary inputs, primary outputs, and
clocks (with their phase).

Construction is incremental through the ``add_*`` methods, which is how the
circuit generators in :mod:`repro.circuits` build blocks, and whole
sub-netlists can be embedded with :meth:`Netlist.embed`, which is how
composite designs (e.g. the MIPS-like datapath) are assembled.

Conventions
-----------
* The power rails are the nodes named by :attr:`Netlist.vdd` and
  :attr:`Netlist.gnd` (default ``"vdd"`` / ``"gnd"``).  They always exist.
* Node and device names are arbitrary non-empty strings; hierarchical names
  use ``.`` separators by convention (``alu.add.c3``).
* All electrical quantities are SI (farads, metres).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..errors import NetlistError
from ..tech import Technology, NMOS4
from .components import DeviceKind, FlowDirection, Node, Transistor

__all__ = ["Netlist", "PortMap"]

PortMap = Mapping[str, str]


class Netlist:
    """A transistor-level nMOS circuit with boundary declarations."""

    def __init__(
        self,
        name: str = "top",
        *,
        tech: Technology = NMOS4,
        vdd: str = "vdd",
        gnd: str = "gnd",
    ):
        if vdd == gnd:
            raise NetlistError("vdd and gnd must be distinct nodes")
        self.name = name
        self.tech = tech
        self.vdd = vdd
        self.gnd = gnd

        self._nodes: dict[str, Node] = {}
        self._devices: dict[str, Transistor] = {}
        self._inputs: set[str] = set()
        self._outputs: set[str] = set()
        self._clocks: dict[str, str] = {}  # node name -> phase label
        self._exclusive_groups: list[frozenset[str]] = []
        self._exclusive_of: dict[str, int] = {}  # node -> group index

        # Adjacency indices, maintained incrementally.
        self._channel_index: dict[str, list[Transistor]] = {}
        self._gate_index: dict[str, list[Transistor]] = {}

        self._auto_device = 0
        self._auto_node = 0

        self.add_node(vdd)
        self.add_node(gnd)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> dict[str, Node]:
        """Mapping of node name to :class:`Node` (do not mutate directly)."""
        return self._nodes

    @property
    def devices(self) -> dict[str, Transistor]:
        """Mapping of device name to :class:`Transistor`."""
        return self._devices

    @property
    def inputs(self) -> frozenset[str]:
        """Declared primary input nodes."""
        return frozenset(self._inputs)

    @property
    def outputs(self) -> frozenset[str]:
        """Declared primary output nodes."""
        return frozenset(self._outputs)

    @property
    def clocks(self) -> dict[str, str]:
        """Declared clock nodes, mapping node name to phase label."""
        return dict(self._clocks)

    def __len__(self) -> int:
        return len(self._devices)

    def __contains__(self, node_name: str) -> bool:
        return node_name in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist({self.name!r}: {len(self._nodes)} nodes, "
            f"{len(self._devices)} devices)"
        )

    def is_rail(self, node_name: str) -> bool:
        """True if the node is a power rail (vdd or gnd)."""
        return node_name == self.vdd or node_name == self.gnd

    def is_clock(self, node_name: str) -> bool:
        """True if the node is a declared clock (any phase).

        Unlike the :attr:`clocks` property this does not copy the mapping,
        so it is safe in per-device inner loops.
        """
        return node_name in self._clocks

    def is_boundary(self, node_name: str) -> bool:
        """True for rails, primary inputs, and clocks: externally driven."""
        return (
            self.is_rail(node_name)
            or node_name in self._inputs
            or node_name in self._clocks
        )

    def node(self, name: str) -> Node:
        """Look up a node by name, raising :class:`NetlistError` if absent."""
        try:
            return self._nodes[name]
        except KeyError:
            raise NetlistError(
                f"netlist {self.name!r} has no node {name!r}"
            ) from None

    def device(self, name: str) -> Transistor:
        """Look up a device by name, raising :class:`NetlistError` if absent."""
        try:
            return self._devices[name]
        except KeyError:
            raise NetlistError(
                f"netlist {self.name!r} has no device {name!r}"
            ) from None

    def channel_devices(self, node_name: str) -> list[Transistor]:
        """Devices whose source or drain is ``node_name``."""
        return list(self._channel_index.get(node_name, ()))

    def iter_channel_devices(self, node_name: str):
        """Like :meth:`channel_devices` but without the defensive copy.

        Returns the internal sequence -- do not mutate.  Intended for hot
        loops (decomposition, arc extraction) that only read.
        """
        return self._channel_index.get(node_name, ())

    def gate_loads(self, node_name: str) -> list[Transistor]:
        """Devices whose gate is ``node_name``."""
        return list(self._gate_index.get(node_name, ()))

    def iter_gate_loads(self, node_name: str):
        """Like :meth:`gate_loads` but without the defensive copy.

        Returns the internal sequence -- do not mutate.
        """
        return self._gate_index.get(node_name, ())

    def pullups_at(self, node_name: str) -> list[Transistor]:
        """Depletion loads attached to (pulling up) ``node_name``."""
        return [
            t
            for t in self._channel_index.get(node_name, ())
            if t.is_load and t.other_channel(node_name) == self.vdd
        ]

    def has_pullup(self, node_name: str) -> bool:
        """True if a depletion load pulls the node toward Vdd."""
        return bool(self.pullups_at(node_name))

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def add_node(self, name: str, cap: float = 0.0) -> Node:
        """Create a node (or add wiring capacitance to an existing one)."""
        existing = self._nodes.get(name)
        if existing is not None:
            existing.cap += cap
            return existing
        node = Node(name, cap)
        self._nodes[name] = node
        return node

    def fresh_node(self, prefix: str = "n", cap: float = 0.0) -> Node:
        """Create a node with a generated unique name."""
        while True:
            self._auto_node += 1
            name = f"{prefix}{self._auto_node}"
            if name not in self._nodes:
                return self.add_node(name, cap)

    def add_cap(self, node_name: str, cap: float) -> None:
        """Add wiring capacitance to an existing node."""
        if cap < 0:
            raise NetlistError(f"capacitance must be >= 0, got {cap}")
        self.node(node_name).cap += cap

    def add_transistor(
        self,
        kind: DeviceKind | str,
        gate: str,
        source: str,
        drain: str,
        *,
        w: float | None = None,
        l: float | None = None,
        name: str | None = None,
        flow: FlowDirection = FlowDirection.UNKNOWN,
    ) -> Transistor:
        """Add a transistor, auto-creating its terminal nodes.

        ``w`` and ``l`` default to the technology's minimum device.
        """
        kind = DeviceKind(kind)
        if w is None:
            w = self.tech.min_width()
        if l is None:
            l = self.tech.min_length()
        if name is None:
            self._auto_device += 1
            name = f"m{self._auto_device}"
        if name in self._devices:
            raise NetlistError(f"duplicate device name {name!r}")
        for terminal in (gate, source, drain):
            self.add_node(terminal)
        t = Transistor(name, kind, gate, source, drain, w, l, flow)
        self._devices[name] = t
        self._channel_index.setdefault(source, []).append(t)
        self._channel_index.setdefault(drain, []).append(t)
        self._gate_index.setdefault(gate, []).append(t)
        return t

    def add_enh(
        self,
        gate: str,
        source: str,
        drain: str,
        *,
        w: float | None = None,
        l: float | None = None,
        name: str | None = None,
        flow: FlowDirection = FlowDirection.UNKNOWN,
    ) -> Transistor:
        """Add an enhancement-mode device."""
        return self.add_transistor(
            DeviceKind.ENH, gate, source, drain, w=w, l=l, name=name, flow=flow
        )

    def add_pullup(
        self,
        node_name: str,
        *,
        w: float | None = None,
        l: float | None = None,
        name: str | None = None,
    ) -> Transistor:
        """Add a conventional depletion load pulling ``node_name`` to Vdd.

        The load's gate is tied to its source (the pulled-up node), the
        standard nMOS configuration.  The default geometry is the classic
        weak load: minimum width, 4x minimum length, giving the 4:1 ratio
        against a minimum pull-down.
        """
        if w is None:
            w = self.tech.min_width()
        if l is None:
            l = 4.0 * self.tech.min_length()
        return self.add_transistor(
            DeviceKind.DEP,
            gate=node_name,
            source=node_name,
            drain=self.vdd,
            w=w,
            l=l,
            name=name,
            flow=FlowDirection.D_TO_S,
        )

    def set_input(self, *node_names: str) -> None:
        """Declare nodes as primary inputs (created if absent)."""
        for n in node_names:
            if self.is_rail(n):
                raise NetlistError(f"rail {n!r} cannot be an input")
            self.add_node(n)
            self._inputs.add(n)

    def set_output(self, *node_names: str) -> None:
        """Declare nodes as primary outputs (created if absent)."""
        for n in node_names:
            if self.is_rail(n):
                raise NetlistError(f"rail {n!r} cannot be an output")
            self.add_node(n)
            self._outputs.add(n)

    def set_clock(self, node_name: str, phase: str) -> None:
        """Declare a node as a clock of the given phase (e.g. ``"phi1"``)."""
        if self.is_rail(node_name):
            raise NetlistError(f"rail {node_name!r} cannot be a clock")
        if not phase:
            raise NetlistError("clock phase label must be non-empty")
        self.add_node(node_name)
        existing = self._clocks.get(node_name)
        if existing is not None and existing != phase:
            raise NetlistError(
                f"clock {node_name!r} already declared with phase "
                f"{existing!r}, cannot redeclare as {phase!r}"
            )
        self._clocks[node_name] = phase

    def set_flow_hint(self, device_name: str, flow: FlowDirection) -> None:
        """Pin a device's signal-flow direction (a designer hint)."""
        self.device(device_name).flow = flow

    def add_exclusive_group(self, *node_names: str) -> int:
        """Assert that at most one of these control nodes is high at a time.

        This is the TV-style user assertion for one-hot select lines (mux
        selects, decoded word lines, shifter amounts).  The analyzer uses it
        to rule out worst-case paths that would require two mutually
        exclusive switches to conduct simultaneously.  Returns the group
        index.  A node may belong to at most one group.
        """
        names = tuple(node_names)
        if len(names) < 2:
            raise NetlistError("an exclusive group needs at least two nodes")
        for name in names:
            self.add_node(name)
            if name in self._exclusive_of:
                raise NetlistError(
                    f"node {name!r} is already in exclusive group "
                    f"{self._exclusive_of[name]}"
                )
        index = len(self._exclusive_groups)
        self._exclusive_groups.append(frozenset(names))
        for name in names:
            self._exclusive_of[name] = index
        return index

    @property
    def exclusive_groups(self) -> list[frozenset[str]]:
        """Declared one-hot control groups."""
        return list(self._exclusive_groups)

    def exclusive_group_of(self, node_name: str) -> int | None:
        """Group index of a control node, or None."""
        return self._exclusive_of.get(node_name)

    # ------------------------------------------------------------------
    # Composition.
    # ------------------------------------------------------------------
    def embed(
        self,
        sub: "Netlist",
        prefix: str,
        port_map: PortMap | None = None,
        *,
        import_io: bool = False,
    ) -> dict[str, str]:
        """Embed ``sub`` into this netlist under ``prefix``.

        Every node and device of ``sub`` is copied with its name prefixed by
        ``"{prefix}."``, except that ``sub``'s rails map onto this netlist's
        rails and nodes named in ``port_map`` map onto the given local nodes.
        Clock declarations are imported (connected clocks keep their phase);
        input/output declarations are imported only when ``import_io`` is
        true (a block's ports usually become internal nodes of the parent).

        Returns the complete node-name translation applied, so callers can
        locate any internal node of the embedded block.
        """
        if not prefix:
            raise NetlistError("embed requires a non-empty prefix")
        port_map = dict(port_map or {})
        translation: dict[str, str] = {
            sub.vdd: self.vdd,
            sub.gnd: self.gnd,
        }
        for sub_name, local_name in port_map.items():
            if sub_name not in sub.nodes:
                raise NetlistError(
                    f"port map names {sub_name!r}, which is not a node of "
                    f"sub-netlist {sub.name!r}"
                )
            translation[sub_name] = local_name
        for sub_name in sub.nodes:
            if sub_name not in translation:
                translation[sub_name] = f"{prefix}.{sub_name}"

        for sub_name, node in sub.nodes.items():
            local = translation[sub_name]
            self.add_node(local, node.cap)
        for dev in sub.devices.values():
            self.add_transistor(
                dev.kind,
                translation[dev.gate],
                translation[dev.source],
                translation[dev.drain],
                w=dev.w,
                l=dev.l,
                name=f"{prefix}.{dev.name}",
                flow=dev.flow,
            )
        for clk, phase in sub.clocks.items():
            self.set_clock(translation[clk], phase)
        for group in sub.exclusive_groups:
            translated = [translation[n] for n in group]
            if all(self.exclusive_group_of(n) is None for n in translated):
                self.add_exclusive_group(*translated)
        if import_io:
            self.set_input(*(translation[n] for n in sub.inputs))
            self.set_output(*(translation[n] for n in sub.outputs))
        return translation

    # ------------------------------------------------------------------
    # Electrical summaries.
    # ------------------------------------------------------------------
    def node_capacitance(self, node_name: str, tech: Technology | None = None) -> float:
        """Total capacitance of a node, farads.

        Sums the explicit wiring capacitance, the gate capacitance of every
        device gated by the node, the diffusion capacitance of every channel
        terminal on the node, and the technology's node floor.
        """
        tech = tech or self.tech
        node = self.node(node_name)
        total = node.cap + tech.c_node_floor
        for dev in self._gate_index.get(node_name, ()):
            if dev.touches_channel(node_name):
                # Gate tied to its own channel terminal (a depletion load's
                # conventional hookup): the gate-source capacitance is
                # shorted out and contributes nothing to the node.
                continue
            total += tech.c_gate(dev.w, dev.l)
        for dev in self._channel_index.get(node_name, ()):
            total += tech.c_diff(dev.w)
        return total

    def total_capacitance(self) -> float:
        """Sum of all node capacitances (excluding rails), farads."""
        return sum(
            self.node_capacitance(n)
            for n in self._nodes
            if not self.is_rail(n)
        )

    def device_count(self, kind: DeviceKind | str | None = None) -> int:
        """Number of devices, optionally restricted to one kind."""
        if kind is None:
            return len(self._devices)
        kind = DeviceKind(kind)
        return sum(1 for t in self._devices.values() if t.kind is kind)

    def pass_devices(self) -> list[Transistor]:
        """Enhancement devices that are not grounded-source pull-downs of a
        restoring gate -- i.e. candidates for pass-transistor duty.

        A device counts as a *pass* candidate if neither channel terminal is
        a rail.  (Pull-downs always reach gnd; loads always reach vdd.)
        """
        return [
            t
            for t in self._devices.values()
            if t.kind is DeviceKind.ENH
            and not self.is_rail(t.source)
            and not self.is_rail(t.drain)
        ]

    def stats(self) -> dict[str, int]:
        """A small summary used by reports and benchmarks."""
        return {
            "nodes": len(self._nodes),
            "devices": len(self._devices),
            "enh": self.device_count(DeviceKind.ENH),
            "dep": self.device_count(DeviceKind.DEP),
            "pass_candidates": len(self.pass_devices()),
            "inputs": len(self._inputs),
            "outputs": len(self._outputs),
            "clocks": len(self._clocks),
        }
