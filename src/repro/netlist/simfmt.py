""".sim-format reader and writer.

``.sim`` is the transistor-netlist interchange format produced by the
Mead-Conway-era layout extractors (``mextra``) and consumed by the MIT/
Berkeley tool family (``esim``, ``rsim``, ``crystal`` -- and TV's
contemporaries).  A file is line oriented::

    | units: 100 tech: nmos          comment / header line
    e gate source drain [x y [w l]]  enhancement transistor
    d gate source drain [x y [w l]]  depletion transistor
    c node femtofarads               lumped capacitance on a node
    C node1 node2 femtofarads        coupling cap (lumped half to each node)
    = alias canonical                node aliasing
    R node ohms                      (ignored: node resistance record)

Geometry in classic ``.sim`` is in *centimicrons* (10^-8 m) when a header
``units:`` scale is present; we write and read plain centimicrons with a
``units: 1`` header.  Because a raw extract does not carry boundary
declarations, this codec defines extension records (written as comments so
other tools skip them)::

    |I node        declare primary input
    |O node        declare primary output
    |K node phase  declare clock node with phase label

Round-tripping a :class:`~repro.netlist.Netlist` through ``dumps``/``loads``
preserves nodes, devices, geometry, explicit capacitance, and boundary
declarations (device flow hints are not part of the format).
"""

from __future__ import annotations

import io
import math
from typing import Callable, Iterable, TextIO

from ..errors import NetlistError, SimFormatError
from ..tech import Technology, NMOS4
from .components import DeviceKind
from .netlist import Netlist

__all__ = ["dumps", "dump", "loads", "load"]

#: One centimicron in metres (classic .sim geometry unit).
CENTIMICRON = 1e-8
#: Capacitance records are in femtofarads.
FEMTOFARAD = 1e-15


def dumps(netlist: Netlist) -> str:
    """Serialize a netlist to ``.sim`` text."""
    out = io.StringIO()
    dump(netlist, out)
    return out.getvalue()


def dump(netlist: Netlist, fp: TextIO) -> None:
    """Serialize a netlist to an open text file."""
    fp.write(f"| units: 1 tech: nmos name: {netlist.name}\n")
    fp.write(f"| vdd: {netlist.vdd} gnd: {netlist.gnd}\n")
    for name in sorted(netlist.inputs):
        fp.write(f"|I {name}\n")
    for name in sorted(netlist.outputs):
        fp.write(f"|O {name}\n")
    for name, phase in sorted(netlist.clocks.items()):
        fp.write(f"|K {name} {phase}\n")
    for dev in netlist.devices.values():
        code = "e" if dev.kind is DeviceKind.ENH else "d"
        w_cu = dev.w / CENTIMICRON
        l_cu = dev.l / CENTIMICRON
        fp.write(
            f"{code} {dev.gate} {dev.source} {dev.drain} "
            f"0 0 {w_cu:.12g} {l_cu:.12g}\n"
        )
    for name, node in netlist.nodes.items():
        if node.cap > 0:
            fp.write(f"c {name} {node.cap / FEMTOFARAD:.12g}\n")


def loads(
    text: str,
    *,
    name: str = "sim",
    tech: Technology = NMOS4,
) -> Netlist:
    """Parse ``.sim`` text into a netlist."""
    return load(io.StringIO(text), name=name, tech=tech)


def load(
    fp: TextIO | Iterable[str],
    *,
    name: str = "sim",
    tech: Technology = NMOS4,
) -> Netlist:
    """Parse an open ``.sim`` file (or iterable of lines) into a netlist."""
    header: dict[str, str] = {}
    records: list[tuple[int, list[str]]] = []
    aliases: dict[str, str] = {}
    io_records: list[tuple[int, str, list[str]]] = []

    for lineno, raw in enumerate(fp, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("|"):
            body = line[1:].strip()
            tokens = body.split()
            if tokens and tokens[0] in ("I", "O", "K"):
                io_records.append((lineno, tokens[0], tokens[1:]))
            else:
                _parse_header(body, header)
            continue
        fields = line.split()
        records.append((lineno, fields))

    vdd = header.get("vdd", "vdd")
    gnd = header.get("gnd", "gnd")
    try:
        netlist = Netlist(
            header.get("name", name), tech=tech, vdd=vdd, gnd=gnd
        )
    except NetlistError as exc:
        raise SimFormatError(f"bad header: {exc}") from exc

    # First pass: collect aliases so later records use canonical names.
    for lineno, fields in records:
        if fields[0] == "=":
            if len(fields) != 3:
                raise SimFormatError("alias record needs 2 names", lineno)
            aliases[fields[1]] = fields[2]

    def canon(node: str, lineno: int) -> str:
        seen = set()
        while node in aliases:
            if node in seen:
                raise SimFormatError(f"alias cycle at {node!r}", lineno)
            seen.add(node)
            node = aliases[node]
        return node

    for lineno, fields in records:
        code = fields[0]
        if code in ("e", "d"):
            if len(fields) < 4:
                raise SimFormatError(
                    f"transistor record needs at least 3 node names: {fields}",
                    lineno,
                )
            gate, source, drain = (canon(f, lineno) for f in fields[1:4])
            w = netlist.tech.min_width()
            l = netlist.tech.min_length()
            if len(fields) >= 8:
                w = _number(fields[6], lineno) * CENTIMICRON
                l = _number(fields[7], lineno) * CENTIMICRON
            kind = DeviceKind.ENH if code == "e" else DeviceKind.DEP
            _guarded(
                lineno,
                netlist.add_transistor,
                kind, gate, source, drain, w=w, l=l,
            )
        elif code == "c":
            if len(fields) != 3:
                raise SimFormatError("c record needs node and value", lineno)
            _guarded(
                lineno,
                netlist.add_node,
                canon(fields[1], lineno),
                _number(fields[2], lineno) * FEMTOFARAD,
            )
        elif code == "C":
            if len(fields) != 4:
                raise SimFormatError("C record needs 2 nodes and value", lineno)
            half = _number(fields[3], lineno) * FEMTOFARAD / 2.0
            _guarded(lineno, netlist.add_node, canon(fields[1], lineno), half)
            _guarded(lineno, netlist.add_node, canon(fields[2], lineno), half)
        elif code == "=":
            pass  # handled above
        elif code == "R":
            pass  # node-resistance records are accepted and ignored
        else:
            raise SimFormatError(f"unknown record type {code!r}", lineno)

    for lineno, kind, rest in io_records:
        if kind == "I":
            if len(rest) != 1:
                raise SimFormatError("|I record needs one node", lineno)
            _guarded(lineno, netlist.set_input, canon(rest[0], lineno))
        elif kind == "O":
            if len(rest) != 1:
                raise SimFormatError("|O record needs one node", lineno)
            _guarded(lineno, netlist.set_output, canon(rest[0], lineno))
        else:  # K
            if len(rest) != 2:
                raise SimFormatError("|K record needs node and phase", lineno)
            _guarded(lineno, netlist.set_clock, canon(rest[0], lineno), rest[1])

    return netlist


def _parse_header(body: str, header: dict[str, str]) -> None:
    """Accumulate ``key: value`` pairs from a comment/header line."""
    tokens = body.split()
    i = 0
    while i < len(tokens) - 1:
        if tokens[i].endswith(":"):
            header[tokens[i][:-1]] = tokens[i + 1]
            i += 2
        else:
            i += 1


def _guarded(lineno: int, fn: Callable, *args, **kwargs):
    """Apply a netlist mutation, converting NetlistError to SimFormatError.

    Record application can violate netlist invariants the record syntax
    alone cannot express (a rail declared as an input, a transistor whose
    source and drain alias to the same node, conflicting clock phases).
    Those surface as :class:`NetlistError` (or ``ValueError`` from the
    component dataclass validators, e.g. zero-width geometry); the parser
    owns the line number, so it rewraps them as :class:`SimFormatError`
    pointing at the offending record.
    """
    try:
        return fn(*args, **kwargs)
    except SimFormatError:
        raise
    except (NetlistError, ValueError) as exc:
        raise SimFormatError(str(exc), lineno) from exc


def _number(text: str, lineno: int) -> float:
    try:
        value = float(text)
    except ValueError:
        raise SimFormatError(f"expected a number, got {text!r}", lineno) from None
    if not math.isfinite(value):
        raise SimFormatError(f"expected a finite number, got {text!r}", lineno)
    if value < 0:
        raise SimFormatError(f"expected a non-negative number, got {text}", lineno)
    return value
