"""Electrical rules checks (ERC) for nMOS netlists.

TV-era flows ran a static electrical-rules pass over the extracted netlist
before timing analysis, because layout extraction surfaces wiring mistakes
that make timing meaningless: floating gates, outputs with no pull-up path,
rail shorts, and ratio violations in restoring logic.  :func:`check`
implements that pass and returns a list of :class:`Violation` records;
:func:`validate` raises on any violation of severity ``"error"``.

Checks implemented
------------------
``floating-gate``     a gate node with no driver of any kind
``rail-short``        a conducting device directly bridging vdd and gnd
                      whose gate is permanently on (a depletion device)
``undriven-node``     a non-boundary node with no channel connection at all
``no-dc-path``        a gate-driving node that can never reach either rail
``ratio``             a restoring gate whose pull-down:pull-up resistance
                      ratio is too weak to produce a valid low level
``dangling-output``   a declared output that does not exist or is undriven
``gated-rail``        an enhancement device whose gate is tied to a rail
                      (permanently on or off -- almost always an extraction
                      artifact; warning only)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ElectricalRuleError
from .components import DeviceKind, Transistor
from .netlist import Netlist

__all__ = ["Violation", "check", "validate"]

#: A restoring nMOS gate needs roughly a 4:1 load:driver resistance ratio
#: for a legal output-low level; we flag anything weaker than this.
MIN_RATIO = 3.0


@dataclass(frozen=True)
class Violation:
    """One electrical-rules violation.

    ``severity`` is ``"error"`` or ``"warning"``; ``subject`` names the node
    or device at fault.
    """

    code: str
    severity: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code} @ {self.subject}: {self.message}"


def check(netlist: Netlist) -> list[Violation]:
    """Run all electrical rules checks; return the violations found."""
    violations: list[Violation] = []
    violations.extend(_check_floating_gates(netlist))
    violations.extend(_check_rail_shorts(netlist))
    violations.extend(_check_undriven_nodes(netlist))
    violations.extend(_check_dc_paths(netlist))
    violations.extend(_check_ratios(netlist))
    violations.extend(_check_outputs(netlist))
    violations.extend(_check_gated_rails(netlist))
    return violations


def validate(netlist: Netlist) -> list[Violation]:
    """Run :func:`check`; raise if any error-severity violation was found.

    Returns the warning-severity violations (if any) for the caller to log.
    When it raises, the :class:`~repro.errors.ElectricalRuleError` carries
    *all* violations -- errors and warnings -- on ``.violations`` (with
    ``.errors``/``.warnings`` convenience views), so degraded-mode callers
    don't lose the warnings that accompanied the failure.
    """
    violations = check(netlist)
    errors = [v for v in violations if v.severity == "error"]
    if errors:
        summary = "; ".join(str(v) for v in errors[:5])
        more = f" (and {len(errors) - 5} more)" if len(errors) > 5 else ""
        raise ElectricalRuleError(
            f"netlist {netlist.name!r} failed ERC: {summary}{more}",
            violations=violations,
        )
    return [v for v in violations if v.severity == "warning"]


# ----------------------------------------------------------------------
# Individual checks.
# ----------------------------------------------------------------------
def _check_floating_gates(netlist: Netlist):
    for name in netlist.nodes:
        if netlist.is_boundary(name):
            continue
        if not netlist.gate_loads(name):
            continue  # not used as a gate; other checks cover it
        if not netlist.channel_devices(name):
            yield Violation(
                "floating-gate",
                "error",
                name,
                "node drives gates but has no channel connection (no driver)",
            )


def _check_rail_shorts(netlist: Netlist):
    for dev in netlist.devices.values():
        bridges_rails = {dev.source, dev.drain} == {netlist.vdd, netlist.gnd}
        if bridges_rails and dev.kind is DeviceKind.DEP:
            yield Violation(
                "rail-short",
                "error",
                dev.name,
                "depletion device (always on) directly bridges vdd and gnd",
            )


def _check_undriven_nodes(netlist: Netlist):
    for name in netlist.nodes:
        if netlist.is_boundary(name):
            continue
        if not netlist.channel_devices(name) and not netlist.gate_loads(name):
            yield Violation(
                "undriven-node",
                "warning",
                name,
                "node is connected to nothing",
            )


def _check_dc_paths(netlist: Netlist):
    """Flag gate-driving nodes with no conceivable path to either rail."""
    reachable = _rail_reachable_nodes(netlist)
    for name in netlist.nodes:
        if netlist.is_boundary(name):
            continue
        if not netlist.gate_loads(name):
            continue
        if name not in reachable:
            yield Violation(
                "no-dc-path",
                "error",
                name,
                "node drives gates but has no channel path to any rail or input",
            )


def _rail_reachable_nodes(netlist: Netlist) -> set[str]:
    """Nodes reachable from a rail/input/clock through device channels."""
    frontier = [n for n in netlist.nodes if netlist.is_boundary(n)]
    seen = set(frontier)
    while frontier:
        node = frontier.pop()
        for dev in netlist.channel_devices(node):
            other = dev.other_channel(node)
            if other not in seen:
                seen.add(other)
                frontier.append(other)
    return seen


def _check_ratios(netlist: Netlist):
    """Check pull-down vs pull-up strength on restoring gate outputs.

    For each node with a depletion load, find the *strongest* (minimum
    resistance) single-device pull-down on the node; if the load resistance
    divided by that pull-down resistance is below :data:`MIN_RATIO`, the
    output-low level would be illegal.  Series pull-down chains are checked
    against the worst series path by :mod:`repro.delay`; here we only flag
    the clearly broken single-device case, matching TV-era ERC behaviour.
    """
    tech = netlist.tech
    for name in netlist.nodes:
        pullups = netlist.pullups_at(name)
        if not pullups:
            continue
        r_up = min(tech.r_eff("dep", t.w, t.l) for t in pullups)
        pulldowns = [
            t
            for t in netlist.channel_devices(name)
            if t.kind is DeviceKind.ENH and t.other_channel(name) == netlist.gnd
        ]
        if not pulldowns:
            continue
        r_down = min(tech.r_eff("enh", t.w, t.l) for t in pulldowns)
        ratio = r_up / r_down
        if ratio < MIN_RATIO:
            yield Violation(
                "ratio",
                "error",
                name,
                f"pull-up/pull-down resistance ratio {ratio:.2f} is below "
                f"the minimum {MIN_RATIO:.1f} for a legal low level",
            )


def _check_outputs(netlist: Netlist):
    for name in netlist.outputs:
        if not netlist.channel_devices(name):
            yield Violation(
                "dangling-output",
                "error",
                name,
                "declared output has no channel connection",
            )


def _check_gated_rails(netlist: Netlist):
    for dev in netlist.devices.values():
        if dev.kind is DeviceKind.ENH and netlist.is_rail(dev.gate):
            state = "always on" if dev.gate == netlist.vdd else "always off"
            yield Violation(
                "gated-rail",
                "warning",
                dev.name,
                f"enhancement gate tied to rail {dev.gate!r} ({state})",
            )
