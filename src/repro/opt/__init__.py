"""Performance improvement: critical-path-driven device resizing."""

from .advisor import (
    OptimizationStep,
    Suggestion,
    apply_suggestions,
    optimize,
    suggest_resizing,
)

__all__ = [
    "Suggestion",
    "OptimizationStep",
    "suggest_resizing",
    "apply_suggestions",
    "optimize",
]
