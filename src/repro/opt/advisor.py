"""Performance improvement: critical-path device resizing.

TV was not just a verifier -- its reports drove a tuning loop the MIPS
team ran by hand and Jouppi later systematized ("Timing Analysis and
Performance Improvement of MOS VLSI Designs", TCAD 1987): find the worst
path, widen the devices that dominate it, re-analyze, repeat until the
target cycle is met or the path stops improving.

:func:`suggest_resizing` turns one analysis into concrete suggestions
(device -> new width) by walking the critical path's worst RC spines and
ranking members by their resistance share.  :func:`optimize` runs the full
loop.  Depletion loads are never widened directly (that would wreck the
ratio); when a rise through a load dominates, the suggestion widens the
load *and* its pull-downs together, preserving legality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import AnalysisResult, TimingAnalyzer, TimingPath
from ..delay import device_resistance
from ..errors import ReproError
from ..netlist import DeviceKind, Netlist

__all__ = ["Suggestion", "OptimizationStep", "suggest_resizing", "optimize"]


@dataclass(frozen=True)
class Suggestion:
    """Widen one device (and its ratio partners, if any)."""

    device: str
    new_w: float
    reason: str
    partners: tuple[str, ...] = ()  # widened along for ratio legality


@dataclass
class OptimizationStep:
    """One iteration of the tuning loop."""

    iteration: int
    delay_before: float
    delay_after: float
    applied: list[Suggestion] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        return self.delay_before - self.delay_after


def _critical_path_of(result: AnalysisResult) -> TimingPath | None:
    if result.critical_path is not None:
        return result.critical_path
    return None


def _metric_of(result: AnalysisResult) -> float:
    if result.min_cycle is not None:
        return result.min_cycle
    return result.max_delay or 0.0


def suggest_resizing(
    netlist: Netlist,
    result: AnalysisResult,
    *,
    factor: float = 1.5,
    max_w_multiple: float = 16.0,
    limit: int = 4,
) -> list[Suggestion]:
    """Suggestions for the analysis's critical path.

    Devices on the path's worst RC spines are ranked by effective
    resistance; the top ``limit`` that are still below ``max_w_multiple``
    times the minimum width get ``factor``-wider.  Loads bring their
    pull-downs along (see module docstring).
    """
    if factor <= 1.0:
        raise ReproError("resize factor must be > 1")
    path = _critical_path_of(result)
    if path is None:
        return []
    tech = netlist.tech
    w_cap = max_w_multiple * tech.min_width()

    candidates: dict[str, float] = {}
    for step in path.steps:
        for name in step.devices:
            names = [name]
            if name.startswith("load@"):
                # Synthetic spine label for the (possibly parallel) pull-up
                # at a node: expand to the real depletion devices.
                node = name[len("load@"):]
                names = [
                    d.name
                    for d in netlist.channel_devices(node)
                    if d.kind is DeviceKind.DEP
                    and netlist.vdd in d.channel_nodes
                ]
            for real in names:
                if real not in netlist.devices:
                    continue
                dev = netlist.device(real)
                role = "pullup" if dev.kind is DeviceKind.DEP else "pulldown"
                r = device_resistance(
                    tech, dev, role, "fall" if role == "pulldown" else "rise"
                )
                candidates[real] = max(candidates.get(real, 0.0), r)

    ranked = sorted(candidates.items(), key=lambda kv: kv[1], reverse=True)
    suggestions: list[Suggestion] = []
    for name, r in ranked:
        if len(suggestions) >= limit:
            break
        dev = netlist.device(name)
        if dev.w * factor > w_cap:
            continue
        if dev.kind is DeviceKind.DEP:
            # Widening a load demands widening its pull-downs to keep the
            # output-low level legal.
            node = (
                dev.other_channel(netlist.vdd)
                if netlist.vdd in dev.channel_nodes
                else dev.source
            )
            partners = tuple(
                d.name
                for d in netlist.channel_devices(node)
                if d.kind is DeviceKind.ENH and d.w * factor <= w_cap
            )
            suggestions.append(
                Suggestion(
                    device=name,
                    new_w=dev.w * factor,
                    reason=f"pull-up dominates ({r / 1e3:.1f} kohm)",
                    partners=partners,
                )
            )
        else:
            suggestions.append(
                Suggestion(
                    device=name,
                    new_w=dev.w * factor,
                    reason=f"series resistance {r / 1e3:.1f} kohm on path",
                )
            )
    return suggestions


def apply_suggestions(
    netlist: Netlist, suggestions: list[Suggestion], factor: float = 1.5
) -> int:
    """Widen the suggested devices in place; returns devices touched."""
    touched = 0
    for suggestion in suggestions:
        dev = netlist.device(suggestion.device)
        dev.w = suggestion.new_w
        touched += 1
        for partner in suggestion.partners:
            p = netlist.device(partner)
            p.w = p.w * factor
            touched += 1
    return touched


def optimize(
    netlist: Netlist,
    *,
    target: float | None = None,
    iterations: int = 8,
    factor: float = 1.5,
    limit: int = 4,
    analyzer_kwargs: dict | None = None,
) -> list[OptimizationStep]:
    """The tuning loop: analyze -> widen the critical path -> repeat.

    Mutates ``netlist``.  Stops when the metric (min cycle for clocked
    designs, max delay otherwise) meets ``target``, stops improving, or
    ``iterations`` runs out.  Returns the step history.
    """
    analyzer_kwargs = analyzer_kwargs or {}
    history: list[OptimizationStep] = []
    # One analyzer for the whole loop: resizes invalidate only the touched
    # stages' cached arcs, so each re-analysis is incremental.
    analyzer = TimingAnalyzer(netlist, **analyzer_kwargs)
    result = analyzer.analyze()
    metric = _metric_of(result)

    for iteration in range(1, iterations + 1):
        if target is not None and metric <= target:
            break
        suggestions = suggest_resizing(
            netlist, result, factor=factor, limit=limit
        )
        if not suggestions:
            break
        snapshot = {
            name: dev.w for name, dev in netlist.devices.items()
        }
        apply_suggestions(netlist, suggestions, factor)
        touched = [s.device for s in suggestions] + [
            p for s in suggestions for p in s.partners
        ]
        analyzer.notify_changed(touched)
        result = analyzer.analyze()
        new_metric = _metric_of(result)
        if new_metric >= metric:
            # The step made things worse (widening adds diffusion load
            # somewhere else): roll it back and stop at the best point.
            for name, w in snapshot.items():
                netlist.device(name).w = w
            analyzer.notify_changed(touched)
            break
        history.append(
            OptimizationStep(
                iteration=iteration,
                delay_before=metric,
                delay_after=new_metric,
                applied=suggestions,
            )
        )
        metric = new_metric
    return history
