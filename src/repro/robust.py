"""Error policies, diagnostics, and coverage for degraded-mode analysis.

TV's value was running on *real extracted layout*, where wiring mistakes
are the norm.  A strictly fail-fast pipeline turns one bad corner of a
chip into zero information about the rest of it; this module provides the
vocabulary for degrading gracefully instead:

* **Error policies** -- :data:`STRICT` (today's fail-fast behaviour),
  :data:`QUARANTINE` (excise the stages implicated by ERC errors or
  extraction failures and analyze the rest), and :data:`BEST_EFFORT`
  (additionally downgrade recoverable flow/timing errors to
  diagnostics).  Select one with ``TimingAnalyzer(net, on_error=...)``
  or ``repro analyze --on-error=...``.
* :class:`Diagnostic` -- one typed record of something that went wrong
  and what the analyzer did about it; carried on
  :class:`~repro.core.analyzer.AnalysisResult.diagnostics` and in the
  JSON report's ``diagnostics`` section.
* :class:`Coverage` -- how much of the design the analysis actually
  covered (stages/devices/nodes analyzed vs quarantined).
* **Fault points** -- named injection sites
  (:func:`fault_point`/:func:`install_fault_handler`) used by the
  deterministic fault-injection harness in :mod:`repro.testing.faults`.
  With no handler installed a fault point is a single ``None`` check;
  the perf gate in :mod:`repro.bench.perf` keeps that free.

Everything here is dependency-free and importable from anywhere in the
package (it sits below :mod:`repro.netlist` in the layering).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ReproError

__all__ = [
    "STRICT",
    "QUARANTINE",
    "BEST_EFFORT",
    "ERROR_POLICIES",
    "validate_policy",
    "Diagnostic",
    "Coverage",
    "DIAGNOSTIC_ACTIONS",
    "fault_point",
    "install_fault_handler",
    "clear_fault_handler",
]

#: Fail fast: any ERC error or pipeline failure raises (the historical
#: behaviour and the default).
STRICT = "strict"
#: Excise the stages implicated by ERC errors or extraction failures and
#: analyze the rest, reporting diagnostics and coverage.
QUARANTINE = "quarantine"
#: Quarantine, plus downgrade recoverable flow/timing errors (e.g. a
#: netlist with no primary inputs) to diagnostics on a degraded result.
BEST_EFFORT = "best-effort"

#: Every recognized error policy, in increasing order of tolerance.
ERROR_POLICIES = (STRICT, QUARANTINE, BEST_EFFORT)

#: Actions a diagnostic may record (the ``action`` field).
DIAGNOSTIC_ACTIONS = (
    "quarantined",  # the implicated stage was excised from the analysis
    "downgraded",   # a fatal error became this diagnostic (best-effort)
    "skipped",      # a pipeline step was skipped after an internal failure
)


def validate_policy(policy: str) -> str:
    """Return ``policy`` if it names a known error policy, else raise.

    Raises :class:`~repro.errors.ReproError` so CLI and library callers
    get a typed error for a typo'd ``--on-error`` value.
    """
    if policy not in ERROR_POLICIES:
        raise ReproError(
            f"unknown error policy {policy!r}; choose from {ERROR_POLICIES}"
        )
    return policy


@dataclass(frozen=True)
class Diagnostic:
    """One typed record of a tolerated failure.

    ``code`` identifies the failure class (an ERC rule code such as
    ``"ratio"``, or a pipeline code such as ``"extraction-failure"`` /
    ``"erc-crash"`` / ``"no-primary-inputs"``); ``severity`` is
    ``"error"`` or ``"warning"``; ``subject`` names the node, device, or
    pipeline step at fault; ``stage`` is the implicated stage index (None
    when the failure is not attributable to one stage); ``action`` is one
    of :data:`DIAGNOSTIC_ACTIONS` and says what the analyzer did.
    """

    code: str
    severity: str
    subject: str
    stage: int | None
    action: str
    message: str

    def __str__(self) -> str:
        where = f" stage {self.stage}" if self.stage is not None else ""
        return (
            f"[{self.severity}] {self.code} @ {self.subject}{where}: "
            f"{self.message} ({self.action})"
        )

    def to_json(self) -> dict:
        """Serialize to the report schema's ``diagnostic`` object."""
        return {
            "code": self.code,
            "severity": self.severity,
            "subject": self.subject,
            "stage": self.stage,
            "action": self.action,
            "message": self.message,
        }


@dataclass(frozen=True)
class Coverage:
    """What fraction of the design one analysis actually covered.

    Counts are over the stage decomposition: a quarantined stage removes
    its devices and internal nodes from the analyzed set.  ``complete``
    is True iff nothing was quarantined.
    """

    stages_total: int
    stages_analyzed: int
    devices_total: int
    devices_analyzed: int
    nodes_total: int
    nodes_analyzed: int

    @property
    def stages_quarantined(self) -> int:
        """Stages excised from the analysis."""
        return self.stages_total - self.stages_analyzed

    @property
    def devices_quarantined(self) -> int:
        """Devices belonging to quarantined stages."""
        return self.devices_total - self.devices_analyzed

    @property
    def nodes_quarantined(self) -> int:
        """Internal nodes belonging to quarantined stages."""
        return self.nodes_total - self.nodes_analyzed

    @property
    def complete(self) -> bool:
        """True iff every stage was analyzed."""
        return self.stages_analyzed == self.stages_total

    @property
    def device_fraction(self) -> float:
        """Analyzed share of the device count (1.0 for an empty design)."""
        if self.devices_total == 0:
            return 1.0
        return self.devices_analyzed / self.devices_total

    def summary(self) -> str:
        """One-line human-readable coverage statement."""
        if self.complete:
            return (
                f"complete ({self.stages_total} stages, "
                f"{self.devices_total} devices)"
            )
        return (
            f"{self.device_fraction * 100.0:.1f}% of devices "
            f"({self.stages_analyzed}/{self.stages_total} stages, "
            f"{self.devices_analyzed}/{self.devices_total} devices, "
            f"{self.stages_quarantined} stage(s) quarantined)"
        )

    def to_json(self) -> dict:
        """Serialize to the report schema's ``coverage`` object."""
        return {
            "complete": self.complete,
            "stages_total": self.stages_total,
            "stages_analyzed": self.stages_analyzed,
            "stages_quarantined": self.stages_quarantined,
            "devices_total": self.devices_total,
            "devices_analyzed": self.devices_analyzed,
            "devices_quarantined": self.devices_quarantined,
            "nodes_total": self.nodes_total,
            "nodes_analyzed": self.nodes_analyzed,
            "nodes_quarantined": self.nodes_quarantined,
        }


# ----------------------------------------------------------------------
# Fault points: named injection sites for the testing harness.
#
# Production code calls ``fault_point(site, payload)`` at the few places
# where external failure modes concentrate (worker-task boundaries, the
# ERC entry).  With no handler installed -- the production state -- the
# call is one global read and one ``is None`` branch.  The harness in
# repro.testing.faults installs a handler that can raise (simulated
# exception), kill the process (simulated worker crash), sleep (simulated
# hang), or substitute the payload (simulated corrupt return value).
# ----------------------------------------------------------------------
_FAULT_HANDLER = None

#: Sites the pipeline currently instruments.
FAULT_SITES = (
    "erc",            # entry of the electrical-rules step
    "worker-task",    # start of one extraction task inside a pool worker
    "worker-result",  # a pool worker's return value (may be substituted)
    "stage-arcs",     # authoritative serial extraction of one stage
    # Durability sites (repro.serve.journal): the chaos harness tears
    # and SIGKILLs here to prove crash recovery.
    "journal-append",    # framed journal record bytes (substitutable)
    "journal-fsync",     # after the append write, before its fsync
    "snapshot-write",    # snapshot payload about to be persisted
    "journal-truncate",  # after the snapshot, before journal truncation
)


def install_fault_handler(handler) -> None:
    """Install ``handler(site, payload) -> replacement | None`` globally.

    Intended only for :mod:`repro.testing.faults`; installing a handler
    in production code is a bug.  The handler is inherited by fork-based
    pool workers (memory copy), which is what lets the harness inject
    faults *inside* worker processes deterministically.
    """
    global _FAULT_HANDLER
    _FAULT_HANDLER = handler


def clear_fault_handler() -> None:
    """Remove any installed fault handler (restores production state)."""
    global _FAULT_HANDLER
    _FAULT_HANDLER = None


def fault_point(site: str, payload=None):
    """Pass through ``payload``, giving an installed handler a shot at it.

    Returns ``payload`` unchanged when no handler is installed (the
    production fast path).  A handler may raise, block, terminate the
    process, or return a replacement payload; returning ``None`` keeps
    the original payload.
    """
    handler = _FAULT_HANDLER
    if handler is None:
        return payload
    replacement = handler(site, payload)
    return payload if replacement is None else replacement
