"""Timing-as-a-service: the resident incremental analysis daemon.

The paper's pitch is that static timing analysis is cheap enough to run
*constantly* during design iteration.  This package is the serving
surface that makes the claim operational: a long-lived daemon holding
parsed designs hot, answering analyze/explain/charge queries over
JSON-HTTP against the versioned report schema, accepting netlist deltas
that re-run only invalidated stages, and degrading -- never crashing --
under worker faults, deadlines, and overload.

Layers (each usable on its own):

* :class:`~repro.serve.rwlock.RWLock` -- writer-preferring
  readers-writer lock;
* :class:`~repro.serve.cache.ResultCache` / ``cache_key`` --
  content-addressed report cache (memory LRU + atomic on-disk layer);
* :class:`~repro.serve.session.DesignSession` -- one hot design: the
  engine, its edit epoch, locking, and memoization;
* :class:`~repro.serve.server.TimingServer` -- the HTTP daemon:
  routing, admission control, graceful drain.

Start one from Python::

    from repro.serve import TimingServer

    server = TimingServer(port=0).start()   # port=0: pick a free port
    ...                                      # requests go to server.port
    server.stop()

or from the shell: ``repro serve --port 8731 --workers auto``.
"""

from .cache import ResultCache, cache_key
from .rwlock import RWLock
from .server import HttpError, TimingServer
from .session import DesignSession

__all__ = [
    "RWLock",
    "ResultCache",
    "cache_key",
    "DesignSession",
    "TimingServer",
    "HttpError",
]
