"""Timing-as-a-service: the resident incremental analysis daemon.

The paper's pitch is that static timing analysis is cheap enough to run
*constantly* during design iteration.  This package is the serving
surface that makes the claim operational: a long-lived daemon holding
parsed designs hot, answering analyze/explain/charge queries over
JSON-HTTP against the versioned report schema, accepting netlist deltas
that re-run only invalidated stages, and degrading -- never crashing --
under worker faults, deadlines, and overload.

Layers (each usable on its own):

* :class:`~repro.serve.rwlock.RWLock` -- writer-preferring
  readers-writer lock;
* :class:`~repro.serve.cache.ResultCache` / ``cache_key`` --
  content-addressed report cache (memory LRU + atomic on-disk layer),
  keyed per report-schema version;
* :class:`~repro.serve.journal.DesignJournal` / ``JournalStore`` --
  per-design write-ahead journal + atomic snapshots, with torn-tail
  tolerant crash recovery;
* :class:`~repro.serve.session.DesignSession` -- one hot design: the
  engine, its edit epoch, locking, memoization, and idempotency window;
* :class:`~repro.serve.server.TimingServer` -- the HTTP daemon:
  routing, admission control, graceful drain, startup recovery;
* :class:`~repro.serve.client.TimingClient` -- stdlib client with
  bounded retry, backoff + jitter, Retry-After, and idempotent deltas.

Start one from Python::

    from repro.serve import TimingServer

    server = TimingServer(port=0).start()   # port=0: pick a free port
    ...                                      # requests go to server.port
    server.stop()

or from the shell: ``repro serve --port 8731 --workers auto``.
"""

from .cache import ResultCache, cache_key
from .client import ClientError, TimingClient
from .journal import DesignJournal, JournalStore
from .rwlock import RWLock
from .server import HttpError, TimingServer
from .session import DesignSession

__all__ = [
    "RWLock",
    "ResultCache",
    "cache_key",
    "DesignJournal",
    "JournalStore",
    "DesignSession",
    "TimingServer",
    "HttpError",
    "TimingClient",
    "ClientError",
]
