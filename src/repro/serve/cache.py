"""Content-addressed result cache for the serve daemon.

A timing report is a pure function of (netlist text, technology,
analysis options), so the daemon caches reports under the SHA-256 of
exactly that triple.  Two layers:

* an in-memory LRU (bounded, per-process) serving warm queries with a
  dict lookup;
* an optional on-disk layer (``<dir>/<sha>.json``) surviving restarts,
  written with :func:`repro.core.report.atomic_write_json` -- a SIGKILL
  mid-write leaves either the old file or no file, never a torn one.

A disk entry that fails to parse (however it got damaged) is treated as
a miss and deleted.  Degraded reports whose coverage was cut short by a
*deadline* are never stored: a later query with more time budget must
be able to do better.

Keys mix in the report schema version: a report is a function of the
schema that shapes it, so after a schema bump a persistent cache
directory can never serve stale-schema payloads -- old entries live
under old-version keys and are simply never addressed again.  Belt and
braces, a disk entry whose recorded ``schema_version`` disagrees with
the running one is evicted on read.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict

from ..core.report import REPORT_SCHEMA_VERSION, atomic_write_json

__all__ = ["ResultCache", "cache_key"]


def cache_key(sim_text: str, tech_json: dict, options: dict) -> str:
    """SHA-256 over the canonical (netlist, technology, options) triple.

    ``options`` must be JSON-serializable; keys are sorted so dict
    construction order never changes the hash.  The report schema
    version is part of the hashed state: bumping the schema retires
    every previously cached payload at once.
    """
    blob = json.dumps(
        {
            "sim": sim_text,
            "tech": tech_json,
            "options": options,
            "schema": REPORT_SCHEMA_VERSION,
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Bounded LRU of report payloads, optionally persisted to a directory.

    Thread-safe: the daemon's handler threads share one instance.
    ``memory_limit`` bounds only the in-memory layer; the disk layer
    keeps everything it is given (reports are a few kilobytes each).
    """

    def __init__(
        self, directory: str | os.PathLike | None = None, memory_limit: int = 256
    ) -> None:
        if memory_limit < 1:
            raise ValueError("memory_limit must be >= 1")
        self.directory = os.fspath(directory) if directory is not None else None
        self.memory_limit = memory_limit
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.corrupt_evictions = 0
        self.stale_evictions = 0
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)

    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, key + ".json")

    def get(self, key: str) -> dict | None:
        """The cached payload for ``key``, or None."""
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return payload
        if self.directory is not None:
            try:
                with open(self._path(key)) as handle:
                    payload = json.load(handle)
            except FileNotFoundError:
                payload = None
            except (OSError, ValueError):
                # Damaged entry: drop it and report a miss.
                try:
                    os.unlink(self._path(key))
                except OSError:
                    pass
                with self._lock:
                    self.corrupt_evictions += 1
                payload = None
            if payload is not None and self._stale(payload):
                # Written by a different schema version (keys normally
                # prevent this; a hand-copied or legacy entry cannot).
                try:
                    os.unlink(self._path(key))
                except OSError:
                    pass
                with self._lock:
                    self.stale_evictions += 1
                payload = None
            if payload is not None:
                with self._lock:
                    self._remember(key, payload)
                    self.hits += 1
                    self.disk_hits += 1
                return payload
        with self._lock:
            self.misses += 1
        return None

    @staticmethod
    def _stale(payload) -> bool:
        """True for a disk entry stamped with a different schema version."""
        if not isinstance(payload, dict):
            return False
        version = payload.get("schema_version")
        return version is not None and version != REPORT_SCHEMA_VERSION

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` in memory and (if configured) on disk."""
        with self._lock:
            self._remember(key, payload)
        if self.directory is not None:
            try:
                atomic_write_json(self._path(key), payload)
            except OSError:
                pass  # a read-only disk layer degrades to memory-only

    def _remember(self, key: str, payload: dict) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_limit:
            self._memory.popitem(last=False)

    def stats(self) -> dict:
        """Hit/miss counters and sizes for ``/stats``."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries_memory": len(self._memory),
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "corrupt_evictions": self.corrupt_evictions,
                "stale_evictions": self.stale_evictions,
                "hit_rate": (self.hits / total) if total else None,
                "persistent": self.directory is not None,
            }
