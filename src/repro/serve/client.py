"""Stdlib client for the timing daemon, with retries that are safe.

:class:`TimingClient` wraps the daemon's JSON-over-HTTP surface in
plain ``http.client`` -- no dependencies -- and layers on the retry
discipline a production caller needs:

* **bounded retry** with exponential backoff and full jitter on
  transient failures: connection refused/reset, timeouts, and the
  daemon's own backpressure statuses (429 at capacity, 503 draining);
* **Retry-After honored** -- when a 429/503 carries the header, the
  client waits at least that long before the next attempt;
* **idempotency keys on delta** -- each :meth:`delta` call draws one
  ``request_id`` and sends it on every retry of that call, and the
  server deduplicates, so an at-least-once retry never applies an edit
  twice -- even when the first attempt's *response* was lost, or the
  daemon crashed after journaling the edit and recovered.

Definite failures (400/404/422/504, and any unexpected status) raise
:class:`ClientError` immediately, carrying the HTTP status and decoded
error payload; retries are only spent on failures that retrying can fix.

Example::

    from repro.serve.client import TimingClient

    client = TimingClient(port=8731, retries=5)
    client.load("chip", sim_text)
    report = client.analyze("chip")["report"]
    client.delta("chip", [{"device": "m1", "w": 2e-5}])  # exactly-once
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import uuid

from ..errors import ReproError

__all__ = ["TimingClient", "ClientError"]

#: HTTP statuses that signal "try again shortly", not "you are wrong".
RETRY_STATUSES = (429, 503)


class ClientError(ReproError):
    """A definite request failure (or retries exhausted).

    ``status`` is the final HTTP status (``None`` when the transport
    never got a response); ``payload`` is the decoded error body when
    one was received; ``attempts`` counts tries made.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int | None = None,
        payload: dict | None = None,
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload
        self.attempts = attempts


class TimingClient:
    """One daemon endpoint plus a retry policy.

    ``retries`` is the number of *extra* attempts after the first (so
    ``retries=0`` disables retrying).  Backoff for attempt ``n`` (0-based)
    is ``min(backoff_cap, backoff * 2**n)`` scaled by full jitter
    (a uniform draw in ``[0.5, 1.5]``); a ``Retry-After`` header, when
    present, sets the floor instead.  ``rng`` and ``sleep`` are
    injectable for deterministic tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8731,
        *,
        timeout: float = 60.0,
        retries: int = 5,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0 or backoff_cap < 0:
            raise ValueError("backoff and backoff_cap must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        #: Counters for introspection/tests.
        self.attempts = 0
        self.retried = 0

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------
    def _attempt(self, method: str, path: str, body: dict | None):
        """One HTTP exchange; returns ``(status, payload, retry_after)``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            data = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if data else {}
            conn.request(method, path, body=data, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            retry_after = response.getheader("Retry-After")
            try:
                payload = json.loads(raw) if raw else {}
            except ValueError:
                payload = {"raw": raw.decode(errors="replace")}
            return response.status, payload, retry_after
        finally:
            conn.close()

    def _delay(self, attempt: int, retry_after: str | None) -> float:
        """Backoff before retry ``attempt`` (0-based), honoring Retry-After."""
        delay = min(self.backoff_cap, self.backoff * (2 ** attempt))
        delay *= 0.5 + self._rng.random()  # full jitter, never herding
        if retry_after is not None:
            try:
                delay = max(delay, float(retry_after))
            except ValueError:
                pass
        return delay

    def request(self, method: str, path: str, body: dict | None = None) -> dict:
        """Perform one logical request with the retry policy applied.

        Transient transport errors and 429/503 are retried up to
        ``retries`` times; anything else raises :class:`ClientError`
        with the decoded server error.
        """
        last_exc: Exception | None = None
        last_status: int | None = None
        last_payload: dict | None = None
        retry_after: str | None = None
        attempts = 0
        for attempt in range(self.retries + 1):
            if attempt:
                self._sleep(self._delay(attempt - 1, retry_after))
                self.retried += 1
            attempts += 1
            self.attempts += 1
            try:
                status, payload, retry_after = self._attempt(
                    method, path, body
                )
            except (OSError, socket.timeout, http.client.HTTPException) as exc:
                last_exc, last_status, last_payload = exc, None, None
                retry_after = None
                continue
            if status in RETRY_STATUSES:
                last_exc = None
                last_status, last_payload = status, payload
                continue
            if status >= 400:
                message = f"status {status}"
                error = payload.get("error") if isinstance(payload, dict) else None
                if isinstance(error, dict) and "message" in error:
                    message = error["message"]
                raise ClientError(
                    f"{method} {path} failed with HTTP {status}: {message}",
                    status=status,
                    payload=payload,
                    attempts=attempts,
                )
            return payload
        if last_exc is not None:
            raise ClientError(
                f"{method} {path} failed after {attempts} attempt(s): "
                f"{last_exc}",
                attempts=attempts,
            ) from last_exc
        raise ClientError(
            f"{method} {path} still refused (HTTP {last_status}) after "
            f"{attempts} attempt(s)",
            status=last_status,
            payload=last_payload,
            attempts=attempts,
        )

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Daemon liveness/identity payload."""
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        """Daemon operational counters."""
        return self.request("GET", "/stats")

    def designs(self) -> list[str]:
        """Names of the loaded designs."""
        return self.request("GET", "/designs")["designs"]

    def load(
        self,
        name: str,
        sim_text: str,
        *,
        tech: dict | None = None,
        model: str | None = None,
        on_error: str | None = None,
    ) -> dict:
        """Load (or re-load) a design from ``.sim`` text."""
        body: dict = {"sim": sim_text}
        if tech is not None:
            body["tech"] = tech
        if model is not None:
            body["model"] = model
        if on_error is not None:
            body["on_error"] = on_error
        return self.request("POST", f"/designs/{name}", body)

    def unload(self, name: str) -> dict:
        """Unload a design (and its durable journal state, if any)."""
        return self.request("DELETE", f"/designs/{name}")

    def analyze(self, name: str, **options) -> dict:
        """Full (or cached) analysis; returns the daemon's reply payload."""
        return self.request("POST", f"/designs/{name}/analyze", options)

    def explain(
        self,
        name: str,
        node: str | None = None,
        transition: str | None = None,
        **options,
    ) -> dict:
        """Provenance chain for ``node`` (default: critical endpoint)."""
        body = dict(options)
        if node is not None:
            body["node"] = node
        if transition is not None:
            body["transition"] = transition
        return self.request("POST", f"/designs/{name}/explain", body)

    def charge(self, name: str, *, threshold: float | None = None) -> dict:
        """Charge-sharing hazard check."""
        body = {} if threshold is None else {"threshold": threshold}
        return self.request("POST", f"/designs/{name}/charge", body)

    def delta(
        self,
        name: str,
        edits: list[dict],
        *,
        request_id: str | None = None,
        **options,
    ) -> dict:
        """Apply device edits exactly once, retries notwithstanding.

        One idempotency key is drawn per *call* and reused verbatim on
        every retry of that call, so the server (which remembers the key
        in memory, in its journal, and across crash recovery) applies
        the edit at most once no matter how many attempts it takes to
        get a response through.
        """
        if request_id is None:
            request_id = uuid.uuid4().hex
        body = dict(options, edits=edits, request_id=request_id)
        return self.request("POST", f"/designs/{name}/delta", body)
