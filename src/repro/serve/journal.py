"""Durability for the serve daemon: write-ahead journal + snapshots.

The daemon's sessions are all in-memory state: a crash or restart drops
every loaded design and every ``delta`` applied since load.  This module
makes that state durable with the classic two-piece recipe:

* a per-design **write-ahead journal** -- length-prefixed, CRC-32
  checksummed JSON records (``load`` / ``delta`` / ``unload``), appended
  and ``fsync``'d *before* the response that acknowledges the mutation
  leaves the daemon;
* an **atomic snapshot** written once the journal grows past a
  threshold: the design's load-time ``.sim`` text, the exact dimensions
  of every edited device, the edit epoch, and the recent idempotency-key
  window, written with ``atomic_write_json`` (temp file + rename) and
  followed by a journal truncation.

Recovery (:func:`recover_design`) replays snapshot + journal into a
:class:`RecoveredState` whose netlist state is *bit-identical* to the
pre-crash session: the snapshot carries the original load text verbatim
plus exact edited ``w``/``l`` floats (JSON round-trips ``float`` via
``repr``), never a re-serialized netlist -- ``sim_dumps`` formats at 12
significant digits, which is not a lossless round trip.

Failure tolerance is absolute: a torn tail (the crash landed mid-append)
or a corrupt record (bit rot, a partial ``fsync``) ends replay at the
longest valid prefix; everything after it is quarantined as typed
:class:`~repro.robust.Diagnostic` records the daemon surfaces in
``/healthz`` and ``/stats``.  Recovery never refuses to start the
daemon.

Crash-ordering windows, and why each is safe:

* crash before the journal append -- the edit was applied in memory but
  never acknowledged; recovery lacks it, and the client's retried
  ``delta`` (same idempotency key) applies it exactly once;
* crash after the append, before the response -- recovery replays the
  edit and remembers its request id, so the retry deduplicates;
* crash after the snapshot write, before the journal truncation --
  journal records at or below the snapshot epoch are skipped on replay;
* ``unload`` appends its record first, then removes the snapshot, then
  the journal -- a crash anywhere in that sequence still recovers to
  "not loaded".

The chaos harness (:mod:`repro.testing.faults`) can tear and kill at
the ``journal-append`` / ``journal-fsync`` / ``snapshot-write`` /
``journal-truncate`` fault sites; ``tests/test_serve_faults.py`` SIGKILLs
a live daemon at each one and asserts byte-identical recovery.
"""

from __future__ import annotations

import json
import os
import struct
import urllib.parse
import zlib
from dataclasses import dataclass, field

from ..core.report import atomic_write_json
from ..robust import Diagnostic, fault_point

__all__ = [
    "DesignJournal",
    "JournalStore",
    "RecoveredState",
    "read_journal",
    "recover_design",
]

#: Record framing: little-endian (payload byte length, CRC-32 of payload).
_FRAME = struct.Struct("<II")

#: A declared record length beyond this is treated as corruption, not a
#: real record (the largest legal record is a load carrying _MAX_BODY).
_MAX_RECORD = 256 * 1024 * 1024

#: Journal size that triggers snapshot compaction on the next append.
DEFAULT_COMPACT_BYTES = 4 * 1024 * 1024

#: Snapshot payload format version.
SNAPSHOT_VERSION = 1

#: Idempotency-key window carried through snapshots and recovery.
REQUEST_WINDOW = 64


def _design_filename(name: str) -> str:
    """Filesystem-safe stem for a design name (reversible quoting)."""
    return urllib.parse.quote(name, safe="")


def _design_name(stem: str) -> str:
    return urllib.parse.unquote(stem)


def _fsync_dir(directory: str) -> None:
    """Flush directory metadata (renames, creates) to stable storage."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class DesignJournal:
    """Append-only, checksummed, ``fsync``'d journal for one design.

    Appends are framed ``(length, crc32, payload)`` so recovery can
    detect a torn tail without any out-of-band state.  The companion
    snapshot file is written atomically by :meth:`compact`.  All calls
    must be serialized by the owning session's write lock.
    """

    def __init__(
        self,
        directory: str,
        name: str,
        *,
        compact_bytes: int | None = None,
    ) -> None:
        self.directory = os.fspath(directory)
        self.name = name
        stem = _design_filename(name)
        self.path = os.path.join(self.directory, stem + ".journal")
        self.snapshot_path = os.path.join(
            self.directory, stem + ".snapshot.json"
        )
        if compact_bytes is None:
            compact_bytes = int(
                os.environ.get(
                    "REPRO_JOURNAL_COMPACT_BYTES", DEFAULT_COMPACT_BYTES
                )
            )
        self.compact_bytes = compact_bytes
        self._fd: int | None = None
        self.appends = 0
        self.compactions = 0

    # -- plumbing ------------------------------------------------------
    def _file(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def close(self) -> None:
        """Release the journal file descriptor (idempotent)."""
        if self._fd is not None:
            try:
                os.close(self._fd)
            finally:
                self._fd = None

    def size(self) -> int:
        """Current journal size in bytes (0 if it does not exist yet)."""
        try:
            return os.stat(self.path).st_size
        except OSError:
            return 0

    # -- the write path ------------------------------------------------
    def append(self, record: dict) -> None:
        """Frame, append, and ``fsync`` one record.

        The record is durable when this returns; the daemon only
        acknowledges a mutation after its journal append returns.
        """
        payload = json.dumps(record, sort_keys=True).encode()
        framed = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        # Chaos harness hook: a handler may substitute a torn prefix
        # (simulating a crash mid-write) before killing the process.
        framed = fault_point("journal-append", framed)
        fd = self._file()
        os.write(fd, framed)
        fault_point("journal-fsync")
        os.fsync(fd)
        self.appends += 1

    def maybe_compact(self, state: dict) -> bool:
        """Snapshot + truncate once the journal outgrows the threshold."""
        if self.size() < self.compact_bytes:
            return False
        self.compact(state)
        return True

    def compact(self, state: dict) -> None:
        """Atomically persist ``state`` and truncate the journal.

        A crash after the snapshot lands but before the truncation is
        benign: replay skips journal records at or below the snapshot's
        epoch.
        """
        state = fault_point("snapshot-write", state)
        atomic_write_json(self.snapshot_path, state)
        _fsync_dir(self.directory)
        fault_point("journal-truncate")
        fd = self._file()
        os.ftruncate(fd, 0)
        os.fsync(fd)
        self.compactions += 1

    def remove(self) -> None:
        """Remove this design's durable state (the unload path).

        Order matters: the caller appends the ``unload`` record first,
        then this removes the snapshot *before* the journal, so a crash
        at any point still recovers to "not loaded".
        """
        self.close()
        for path in (self.snapshot_path, self.path):
            try:
                os.unlink(path)
            except OSError:
                pass
        _fsync_dir(self.directory)

    def stats(self) -> dict:
        """Per-design journal introspection for ``/stats``."""
        return {
            "journal_bytes": self.size(),
            "appends": self.appends,
            "compactions": self.compactions,
            "snapshot": os.path.exists(self.snapshot_path),
        }


# ----------------------------------------------------------------------
# Recovery.
# ----------------------------------------------------------------------
@dataclass
class RecoveredState:
    """Everything needed to rebuild one ``DesignSession`` exactly.

    ``dims`` maps edited device names to their exact final ``w``/``l``
    (only the fields a delta actually set); ``requests`` is the recent
    idempotency-key window as ``(request_id, epoch)`` pairs, oldest
    first, so retried deltas deduplicate across the crash.
    """

    name: str
    sim_text: str
    tech: dict | None
    model: str
    on_error: str
    epoch: int = 0
    dims: dict[str, dict] = field(default_factory=dict)
    requests: list[tuple[str, int]] = field(default_factory=list)

    def apply_delta(self, record: dict) -> None:
        """Fold one journal ``delta`` record into the state."""
        for edit in record.get("edits", ()):
            dims = self.dims.setdefault(str(edit["device"]), {})
            if "w" in edit:
                dims["w"] = float(edit["w"])
            if "l" in edit:
                dims["l"] = float(edit["l"])
        self.epoch = int(record["epoch"])
        request_id = record.get("request_id")
        if request_id is not None:
            self.requests.append((str(request_id), self.epoch))
            del self.requests[:-REQUEST_WINDOW]


def _diag(code: str, severity: str, subject: str, message: str) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        subject=subject,
        stage=None,
        action="quarantined",
        message=message,
    )


def read_journal(
    path: str, subject: str
) -> tuple[list[dict], list[Diagnostic]]:
    """Decode the longest valid record prefix of a journal file.

    Returns the decoded records plus diagnostics for whatever follows
    the valid prefix: ``journal-torn-tail`` for a record the crash cut
    short (expected after a kill mid-append) or ``journal-corrupt-record``
    for a checksum/decode failure (bit rot).  Never raises on damaged
    content; an unreadable file yields zero records and a diagnostic.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return [], []
    except OSError as exc:
        return [], [
            _diag(
                "journal-unreadable", "error", subject,
                f"cannot read journal {path!r}: {exc}",
            )
        ]
    records: list[dict] = []
    offset = 0
    total = len(blob)
    while offset < total:
        header = blob[offset:offset + _FRAME.size]
        if len(header) < _FRAME.size:
            return records, [
                _diag(
                    "journal-torn-tail", "warning", subject,
                    f"torn record header at byte {offset}: "
                    f"{total - offset} trailing byte(s) quarantined",
                )
            ]
        length, crc = _FRAME.unpack(header)
        if length > _MAX_RECORD:
            return records, [
                _diag(
                    "journal-corrupt-record", "error", subject,
                    f"implausible record length {length} at byte "
                    f"{offset}: {total - offset} byte(s) quarantined",
                )
            ]
        payload = blob[offset + _FRAME.size:offset + _FRAME.size + length]
        if len(payload) < length:
            return records, [
                _diag(
                    "journal-torn-tail", "warning", subject,
                    f"torn record payload at byte {offset} (expected "
                    f"{length} byte(s), found {len(payload)}): "
                    f"{total - offset} trailing byte(s) quarantined",
                )
            ]
        if zlib.crc32(payload) != crc:
            return records, [
                _diag(
                    "journal-corrupt-record", "error", subject,
                    f"checksum mismatch at byte {offset}: "
                    f"{total - offset} byte(s) quarantined",
                )
            ]
        try:
            record = json.loads(payload)
        except ValueError:
            record = None
        if not isinstance(record, dict) or "type" not in record:
            return records, [
                _diag(
                    "journal-corrupt-record", "error", subject,
                    f"checksummed record at byte {offset} is not a "
                    f"journal record: {total - offset} byte(s) quarantined",
                )
            ]
        records.append(record)
        offset += _FRAME.size + length
    return records, []


def _load_snapshot(
    path: str, subject: str
) -> tuple[RecoveredState | None, list[Diagnostic]]:
    """Decode a snapshot file; a damaged one is a diagnostic, not an error."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return None, []
    except (OSError, ValueError) as exc:
        return None, [
            _diag(
                "snapshot-corrupt", "error", subject,
                f"snapshot {path!r} is unreadable ({exc}); falling back "
                "to journal replay",
            )
        ]
    try:
        state = RecoveredState(
            name=str(payload["design"]),
            sim_text=str(payload["sim"]),
            tech=payload.get("tech"),
            model=str(payload["model"]),
            on_error=str(payload["on_error"]),
            epoch=int(payload["epoch"]),
            dims={
                str(dev): {
                    key: float(value) for key, value in dims.items()
                }
                for dev, dims in payload.get("dims", {}).items()
            },
            requests=[
                (str(rid), int(epoch))
                for rid, epoch in payload.get("requests", [])
            ],
        )
    except (KeyError, TypeError, ValueError) as exc:
        return None, [
            _diag(
                "snapshot-corrupt", "error", subject,
                f"snapshot {path!r} has an invalid shape ({exc}); "
                "falling back to journal replay",
            )
        ]
    return state, []


def recover_design(
    directory: str, name: str
) -> tuple[RecoveredState | None, list[Diagnostic]]:
    """Rebuild one design's state from its snapshot + journal.

    Returns ``(state, diagnostics)``; ``state`` is ``None`` when the
    design was unloaded, or when nothing recoverable remains (in which
    case a diagnostic says so).  Damage never raises.
    """
    stem = _design_filename(name)
    snapshot_path = os.path.join(directory, stem + ".snapshot.json")
    journal_path = os.path.join(directory, stem + ".journal")
    state, diagnostics = _load_snapshot(snapshot_path, name)
    had_snapshot_damage = bool(diagnostics)
    records, journal_diags = read_journal(journal_path, name)
    diagnostics.extend(journal_diags)
    unloaded = False
    for record in records:
        kind = record.get("type")
        if kind == "load":
            try:
                state = RecoveredState(
                    name=name,
                    sim_text=str(record["sim"]),
                    tech=record.get("tech"),
                    model=str(record.get("model", "elmore")),
                    on_error=str(record.get("on_error", "strict")),
                )
                unloaded = False
            except (KeyError, TypeError, ValueError) as exc:
                diagnostics.append(
                    _diag(
                        "journal-corrupt-record", "error", name,
                        f"load record is invalid ({exc}); skipped",
                    )
                )
        elif kind == "delta":
            if state is None:
                diagnostics.append(
                    _diag(
                        "journal-orphan-record", "warning", name,
                        "delta record precedes any load/snapshot; skipped",
                    )
                )
                continue
            try:
                epoch = int(record["epoch"])
            except (KeyError, TypeError, ValueError):
                diagnostics.append(
                    _diag(
                        "journal-corrupt-record", "error", name,
                        "delta record carries no epoch; skipped",
                    )
                )
                continue
            if epoch <= state.epoch:
                continue  # compacted into the snapshot already
            state.apply_delta(record)
        elif kind == "unload":
            state = None
            unloaded = True
        else:
            diagnostics.append(
                _diag(
                    "journal-unknown-record", "warning", name,
                    f"unknown record type {kind!r}; skipped",
                )
            )
    if state is None and not unloaded:
        if records or had_snapshot_damage or os.path.exists(snapshot_path):
            diagnostics.append(
                _diag(
                    "journal-unrecoverable", "error", name,
                    "no usable snapshot or load record survives; the "
                    "design was not recovered (files left in place)",
                )
            )
    return state, diagnostics


class JournalStore:
    """All designs' durable state under one ``--journal-dir``."""

    def __init__(
        self, directory: str, *, compact_bytes: int | None = None
    ) -> None:
        self.directory = os.fspath(directory)
        self.compact_bytes = compact_bytes
        os.makedirs(self.directory, exist_ok=True)
        self._journals: dict[str, DesignJournal] = {}

    def journal(self, name: str) -> DesignJournal:
        """The (cached) journal handle for one design."""
        journal = self._journals.get(name)
        if journal is None:
            journal = DesignJournal(
                self.directory, name, compact_bytes=self.compact_bytes
            )
            self._journals[name] = journal
        return journal

    def begin(self, name: str, load_record: dict) -> DesignJournal:
        """Start a fresh journal for a (re)loaded design.

        Any previous durable state for the name is discarded first --
        an explicit re-load supersedes the old session entirely.
        """
        journal = self.journal(name)
        journal.remove()
        journal.append(dict(load_record, type="load"))
        return journal

    def unload(self, name: str) -> None:
        """Durably forget a design (record first, then remove files)."""
        journal = self._journals.pop(name, None)
        if journal is None:
            journal = DesignJournal(
                self.directory, name, compact_bytes=self.compact_bytes
            )
        try:
            journal.append({"type": "unload"})
        except OSError:
            pass
        journal.remove()

    def design_names(self) -> list[str]:
        """Design names with any durable state in the directory."""
        names = set()
        try:
            entries = os.listdir(self.directory)
        except OSError:
            return []
        for entry in entries:
            if entry.endswith(".journal"):
                names.add(_design_name(entry[: -len(".journal")]))
            elif entry.endswith(".snapshot.json"):
                names.add(_design_name(entry[: -len(".snapshot.json")]))
        return sorted(names)

    def recover(
        self,
    ) -> tuple[dict[str, RecoveredState], list[Diagnostic]]:
        """Replay every design in the store.

        Returns recovered states plus every quarantine diagnostic.
        Designs whose journals end in ``unload`` have their leftover
        files cleaned up.
        """
        states: dict[str, RecoveredState] = {}
        diagnostics: list[Diagnostic] = []
        for name in self.design_names():
            state, diags = recover_design(self.directory, name)
            diagnostics.extend(diags)
            if state is not None:
                states[name] = state
            elif not diags:
                # A clean unload interrupted mid-cleanup: finish the job.
                self.journal(name).remove()
                self._journals.pop(name, None)
        return states, diagnostics

    def close(self) -> None:
        """Release every open journal descriptor."""
        for journal in self._journals.values():
            journal.close()

    def stats(self) -> dict:
        """Store-level introspection for ``/stats``."""
        return {
            "directory": self.directory,
            "designs": self.design_names(),
        }
