"""A writer-preferring readers-writer lock for per-design sessions.

The serve daemon lets any number of clients *read* one design
concurrently (cache-hit queries, charge checks, stats) while edits --
netlist deltas, engine runs that mutate analyzer caches -- take the
exclusive write side.  Writer preference keeps a steady stream of cheap
reads from starving a delta: once a writer is waiting, new readers
queue behind it.

The lock is not reentrant and read->write upgrades deadlock by design
(two upgraders would wait on each other); callers decide the side up
front, which the :class:`~repro.serve.session.DesignSession` methods
do.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["RWLock"]


class RWLock:
    """Readers-writer lock, writer-preferring, context-manager based.

    Use :meth:`read_locked` / :meth:`write_locked`::

        lock = RWLock()
        with lock.read_locked():
            ...  # shared with other readers
        with lock.write_locked():
            ...  # exclusive
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        """Block until no writer holds or awaits the lock, then share it."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Drop a shared hold; wakes waiting writers at zero readers."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Block until the lock is exclusively ours."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        """Drop the exclusive hold; wakes all waiters."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        """Context manager holding the shared (read) side."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """Context manager holding the exclusive (write) side."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def stats(self) -> dict:
        """Instantaneous holder counts (for ``/stats`` introspection)."""
        with self._cond:
            return {
                "readers": self._readers,
                "writer": self._writer,
                "writers_waiting": self._writers_waiting,
            }
