"""The resident timing daemon: JSON-over-HTTP on the stdlib HTTP stack.

:class:`TimingServer` wraps a ``ThreadingHTTPServer`` and a registry of
:class:`~repro.serve.session.DesignSession` objects.  Endpoints (all
request/response bodies are JSON):

========================== ====== =====================================
``/healthz``               GET    liveness + server identity/versions
``/stats``                 GET    uptime, counters, cache hit rate,
                                  pool diagnostics, per-design stats
``/designs``               GET    loaded design names
``/designs/NAME``          POST   load a design (``{"sim": ...}``)
``/designs/NAME``          DELETE unload a design
``/designs/NAME/analyze``  POST   full/cached analysis -> report
``/designs/NAME/explain``  POST   provenance chain for a node
``/designs/NAME/charge``   POST   charge-sharing hazard check
``/designs/NAME/delta``    POST   device edits + incremental re-analysis
========================== ====== =====================================

Robustness contract:

* **Admission control** -- at most ``max_inflight`` analysis requests
  run at once; excess requests are refused immediately with 429 and a
  ``Retry-After`` header instead of queueing without bound.
* **Deadlines** -- ``deadline_ms`` in any analysis request bounds its
  extraction; under degraded policies an overrun yields a schema-valid
  *partial* report (``diagnostics``/``coverage`` tell the truth), under
  ``strict`` it maps to HTTP 504.
* **Typed failures** -- bad JSON/fields are 400, an unknown design or
  node is 404, netlist/analysis errors are 422 carrying the exception
  text; the daemon never dies on a request, and a client that hangs up
  mid-response is counted and survived.
* **Graceful shutdown** -- SIGTERM/SIGINT (or :meth:`TimingServer.stop`)
  stop admissions with 503, drain in-flight requests, then tear down the
  persistent extraction pool (``shutdown_pool``) so no worker process
  outlives the daemon.
* **Durability** -- with ``journal_dir`` set, loads and deltas are
  journaled (:mod:`repro.serve.journal`) before they are acknowledged,
  and a restarted daemon replays snapshot + journal to rebuild every
  session bit-identically; torn or corrupt journal tails are quarantined
  as typed diagnostics in ``/healthz``/``/stats``, never a refusal to
  start.  Deltas accept a client ``request_id`` idempotency key so
  at-least-once retries apply exactly once, crash or no crash.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .. import __version__
from ..core import REPORT_SCHEMA_VERSION
from ..delay import pool_diagnostics, shutdown_pool
from ..errors import DeadlineError, ReproError, TimingError
from ..robust import ERROR_POLICIES, Diagnostic
from ..tech import Technology
from .cache import ResultCache
from .journal import JournalStore
from .session import DesignSession

__all__ = ["TimingServer", "HttpError"]

#: Hard cap on request body size (a .sim netlist of ~1M devices).
_MAX_BODY = 64 * 1024 * 1024


class HttpError(Exception):
    """A request failure with a definite HTTP status."""

    def __init__(self, status: int, message: str, **extra) -> None:
        super().__init__(message)
        self.status = status
        self.extra = extra


class TimingServer:
    """The daemon: session registry, shared cache, admission control.

    ``start()`` binds and serves on a background thread (tests, bench,
    embedding); ``serve_forever()`` serves on the calling thread (the
    CLI).  Either way ``stop()`` drains and shuts down cleanly.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int | str = 1,
        max_inflight: int = 8,
        cache_dir: str | None = None,
        journal_dir: str | None = None,
        default_deadline: float | None = None,
        default_on_error: str = "strict",
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if default_on_error not in ERROR_POLICIES:
            raise ValueError(f"unknown error policy {default_on_error!r}")
        self.workers = workers
        self.max_inflight = max_inflight
        self.default_deadline = default_deadline
        self.default_on_error = default_on_error
        self.cache = ResultCache(cache_dir)
        self.sessions: dict[str, DesignSession] = {}
        self._sessions_lock = threading.Lock()
        self.journal_store = (
            JournalStore(journal_dir) if journal_dir is not None else None
        )
        self.recovered_designs: list[str] = []
        self.recovery_diagnostics: list = []
        if self.journal_store is not None:
            self._recover_sessions()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._draining = threading.Event()
        self._drained = threading.Condition(self._inflight_lock)
        self.started_monotonic = time.monotonic()
        self.requests = 0
        self.rejected_busy = 0
        self.rejected_draining = 0
        self.client_disconnects = 0
        self.errors = 0
        handler = _bind_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._serving = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def start(self) -> "TimingServer":
        """Serve on a background thread; returns once accepting."""
        self._serving = True
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` is called."""
        self._serving = True
        self.httpd.serve_forever()

    def stop(self, drain_timeout: float = 10.0) -> None:
        """Drain in-flight requests, stop serving, reap the worker pool.

        New analysis requests are refused with 503 the moment this is
        called; requests already admitted get up to ``drain_timeout``
        seconds to finish.  Idempotent.
        """
        if self._draining.is_set():
            return
        self._draining.set()
        deadline = time.monotonic() + drain_timeout
        with self._inflight_lock:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._drained.wait(remaining)
        # shutdown() is called from a different thread than
        # serve_forever; that is exactly its contract.
        if self._thread is not None:
            self.httpd.shutdown()
            self._thread.join(timeout=drain_timeout)
        elif self._serving:
            shutdown_thread = threading.Thread(
                target=self.httpd.shutdown, daemon=True
            )
            shutdown_thread.start()
            shutdown_thread.join(timeout=drain_timeout)
        # If serve_forever() never ran there is nothing to shut down --
        # shutdown() would block forever on socketserver's is-shut-down
        # event, which only serve_forever() ever sets.
        self.httpd.server_close()
        if self.journal_store is not None:
            self.journal_store.close()
        shutdown_pool()

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------
    def _recover_sessions(self) -> None:
        """Rebuild every journaled design at startup.

        Replay failures (a snapshot whose netlist no longer parses, say)
        are quarantined as diagnostics; the daemon always starts.
        """
        states, diagnostics = self.journal_store.recover()
        self.recovery_diagnostics.extend(diagnostics)
        for name, state in sorted(states.items()):
            try:
                tech = (
                    Technology.from_dict(state.tech)
                    if state.tech is not None
                    else None
                )
                session = DesignSession(
                    name,
                    state.sim_text,
                    tech=tech,
                    model=state.model,
                    on_error=state.on_error,
                    workers=self.workers,
                    cache=self.cache,
                    journal=self.journal_store.journal(name),
                )
                session.restore(state.dims, state.epoch, state.requests)
            except Exception as exc:  # noqa: BLE001 - never refuse to start
                self.recovery_diagnostics.append(
                    Diagnostic(
                        code="journal-recovery-failed",
                        severity="error",
                        subject=name,
                        stage=None,
                        action="quarantined",
                        message=f"recovered state does not rebuild: {exc}",
                    )
                )
                continue
            self.sessions[name] = session
            self.recovered_designs.append(name)

    # ------------------------------------------------------------------
    # Admission.
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        """Admit one analysis request or raise 429/503."""
        if self._draining.is_set():
            self.rejected_draining += 1
            raise HttpError(503, "server is shutting down")
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                self.rejected_busy += 1
                raise HttpError(
                    429,
                    f"server is at capacity ({self.max_inflight} requests "
                    "in flight); retry shortly",
                    retry_after=1,
                )
            self._inflight += 1

    def _release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            self._drained.notify_all()

    # ------------------------------------------------------------------
    # Session registry.
    # ------------------------------------------------------------------
    def session(self, name: str) -> DesignSession:
        """The loaded session for ``name``, or a 404 :class:`HttpError`."""
        with self._sessions_lock:
            session = self.sessions.get(name)
        if session is None:
            raise HttpError(404, f"no design {name!r} is loaded")
        return session

    def load(self, name: str, body: dict) -> dict:
        """Parse and register a design from a load request body."""
        sim_text = body.get("sim")
        if not isinstance(sim_text, str) or not sim_text.strip():
            raise HttpError(400, "body must carry the netlist in 'sim'")
        tech = None
        if "tech" in body:
            if not isinstance(body["tech"], dict):
                raise HttpError(400, "'tech' must be a parameter object")
            try:
                tech = Technology.from_dict(body["tech"])
            except (TypeError, ValueError) as exc:
                raise HttpError(400, f"bad technology: {exc}") from exc
        on_error = body.get("on_error", self.default_on_error)
        if on_error not in ERROR_POLICIES:
            raise HttpError(400, f"unknown error policy {on_error!r}")
        model = body.get("model", "elmore")
        session = DesignSession(
            name,
            sim_text,
            tech=tech,
            model=model,
            on_error=on_error,
            workers=self.workers,
            cache=self.cache,
        )
        if self.journal_store is not None:
            # Journal only once the design actually loads, so a parse
            # failure never leaves a load record that cannot replay.
            try:
                session.journal = self.journal_store.begin(
                    name,
                    {
                        "sim": sim_text,
                        "tech": None if tech is None else tech.to_dict(),
                        "model": model,
                        "on_error": on_error,
                    },
                )
            except OSError as exc:
                session.journal_error = str(exc)
        with self._sessions_lock:
            self.sessions[name] = session
        return {
            "design": name,
            "epoch": session.epoch,
            "devices": len(session.netlist.devices),
            "stages": len(session.analyzer.stage_graph),
            "policy": session.analyzer.on_error,
        }

    def unload(self, name: str) -> dict:
        """Drop a loaded design (its cache entries stay addressable)."""
        with self._sessions_lock:
            if name not in self.sessions:
                raise HttpError(404, f"no design {name!r} is loaded")
            del self.sessions[name]
        if self.journal_store is not None:
            self.journal_store.unload(name)
        return {"design": name, "unloaded": True}

    # ------------------------------------------------------------------
    # Introspection payloads.
    # ------------------------------------------------------------------
    def server_identity(self) -> dict:
        """Tool name, package version, report schema version."""
        return {
            "tool": "repro",
            "version": __version__,
            "schema_version": REPORT_SCHEMA_VERSION,
        }

    def healthz(self) -> dict:
        """Liveness payload: status, identity, uptime, design count."""
        payload = {
            "status": "draining" if self._draining.is_set() else "ok",
            "server": self.server_identity(),
            "uptime_seconds": time.monotonic() - self.started_monotonic,
            "designs": len(self.sessions),
        }
        if self.journal_store is not None:
            payload["journal"] = {
                "enabled": True,
                "recovered_designs": len(self.recovered_designs),
                "recovery_diagnostics": len(self.recovery_diagnostics),
            }
        return payload

    def stats(self) -> dict:
        """Operational counters: admission, cache, pool, per-design."""
        with self._sessions_lock:
            designs = {
                name: session.stats()
                for name, session in sorted(self.sessions.items())
            }
        with self._inflight_lock:
            inflight = self._inflight
        payload = {
            "server": self.server_identity(),
            "uptime_seconds": time.monotonic() - self.started_monotonic,
            "requests": self.requests,
            "inflight": inflight,
            "max_inflight": self.max_inflight,
            "rejected_busy": self.rejected_busy,
            "rejected_draining": self.rejected_draining,
            "client_disconnects": self.client_disconnects,
            "errors": self.errors,
            "cache": self.cache.stats(),
            "pool": pool_diagnostics(),
            "designs": designs,
        }
        if self.journal_store is not None:
            payload["journal"] = {
                **self.journal_store.stats(),
                "recovered_designs": list(self.recovered_designs),
                "recovery_diagnostics": [
                    diag.to_json() for diag in self.recovery_diagnostics
                ],
            }
        return payload


# ----------------------------------------------------------------------
# Request option parsing (shared by analyze/explain/delta).
# ----------------------------------------------------------------------
def _analysis_options(server: TimingServer, body: dict) -> dict:
    options: dict = {}
    arrivals = body.get("input_arrivals")
    if arrivals is not None:
        if not isinstance(arrivals, dict):
            raise HttpError(400, "'input_arrivals' must map node to seconds")
        try:
            options["input_arrivals"] = {
                str(k): float(v) for k, v in arrivals.items()
            }
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad input arrival: {exc}") from exc
    if "top_k" in body:
        try:
            options["top_k"] = int(body["top_k"])
        except (TypeError, ValueError) as exc:
            raise HttpError(400, "'top_k' must be an integer") from exc
    if "on_error" in body:
        if body["on_error"] not in ERROR_POLICIES:
            raise HttpError(
                400, f"unknown error policy {body['on_error']!r}"
            )
        options["on_error"] = body["on_error"]
    if "corner" in body and body["corner"] is not None:
        corner = body["corner"]
        if not isinstance(corner, (str, dict)):
            raise HttpError(
                400,
                "'corner' must be a corner name or a technology "
                "parameter object",
            )
        options["corner"] = corner
    deadline_ms = body.get("deadline_ms")
    if deadline_ms is None and server.default_deadline is not None:
        options["deadline"] = server.default_deadline
    elif deadline_ms is not None:
        try:
            deadline = float(deadline_ms) / 1000.0
        except (TypeError, ValueError) as exc:
            raise HttpError(400, "'deadline_ms' must be a number") from exc
        if deadline <= 0:
            raise HttpError(400, "'deadline_ms' must be positive")
        options["deadline"] = deadline
    return options


def _cache_mode(body: dict) -> bool:
    mode = body.get("cache", "use")
    if mode not in ("use", "bypass"):
        raise HttpError(400, "'cache' must be 'use' or 'bypass'")
    return mode == "use"


def _bind_handler(server: TimingServer):
    """The request-handler class closed over one :class:`TimingServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # The daemon's log is its /stats endpoint; per-request stderr
        # chatter would swamp a busy server.
        def log_message(self, format, *args):  # noqa: A002
            pass

        # ------------------------------------------------------------
        # Plumbing.
        # ------------------------------------------------------------
        def _reply(self, status: int, payload: dict, headers=()) -> None:
            body = (json.dumps(payload) + "\n").encode()
            try:
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for key, value in headers:
                    self.send_header(key, str(value))
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                # The client hung up mid-response.  Its problem, not the
                # daemon's: count it and keep serving everyone else.
                server.client_disconnects += 1
                self.close_connection = True

        def _reply_error(self, exc: HttpError) -> None:
            headers = []
            if "retry_after" in exc.extra:
                headers.append(("Retry-After", exc.extra["retry_after"]))
            server.errors += 1
            self._reply(
                exc.status,
                {"ok": False, "error": {"status": exc.status,
                                        "message": str(exc)}},
                headers,
            )

        def _body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length > _MAX_BODY:
                raise HttpError(400, "request body too large")
            if length == 0:
                return {}
            try:
                raw = self.rfile.read(length)
            except (ConnectionResetError, TimeoutError) as exc:
                server.client_disconnects += 1
                raise HttpError(400, "client hung up mid-request") from exc
            try:
                body = json.loads(raw)
            except ValueError as exc:
                raise HttpError(400, f"request body is not JSON: {exc}")
            if not isinstance(body, dict):
                raise HttpError(400, "request body must be a JSON object")
            return body

        def _dispatch(self, method: str) -> None:
            server.requests += 1
            try:
                payload, status, headers = self._route(method)
            except HttpError as exc:
                self._reply_error(exc)
                return
            except DeadlineError as exc:
                self._reply_error(HttpError(504, str(exc)))
                return
            except TimingError as exc:
                # "no arrival at ..." is an addressing problem: 404.
                self._reply_error(HttpError(404, str(exc)))
                return
            except ReproError as exc:
                self._reply_error(HttpError(422, str(exc)))
                return
            except Exception as exc:  # noqa: BLE001 - the daemon survives
                server.errors += 1
                self._reply(
                    500,
                    {"ok": False,
                     "error": {"status": 500,
                               "message": f"internal error "
                                          f"({type(exc).__name__}: {exc})"}},
                )
                return
            self._reply(status, payload, headers)

        # ------------------------------------------------------------
        # Routing.
        # ------------------------------------------------------------
        def _route(self, method: str):
            path = self.path.split("?", 1)[0].rstrip("/")
            if method == "GET" and path == "/healthz":
                return {"ok": True, **server.healthz()}, 200, ()
            if method == "GET" and path == "/stats":
                return {"ok": True, **server.stats()}, 200, ()
            if method == "GET" and path == "/designs":
                return (
                    {"ok": True, "designs": sorted(server.sessions)},
                    200,
                    (),
                )
            if path.startswith("/designs/"):
                rest = path[len("/designs/"):]
                name, _, action = rest.partition("/")
                if not name:
                    raise HttpError(404, "design name missing from path")
                return self._route_design(method, name, action)
            raise HttpError(404, f"no route for {method} {path}")

        def _route_design(self, method: str, name: str, action: str):
            if method == "POST" and action == "":
                body = self._body()
                server._admit()
                try:
                    return {"ok": True, **server.load(name, body)}, 200, ()
                finally:
                    server._release()
            if method == "DELETE" and action == "":
                return {"ok": True, **server.unload(name)}, 200, ()
            if method != "POST" or action not in (
                "analyze", "explain", "charge", "delta",
            ):
                raise HttpError(
                    404, f"no route for {method} /designs/{name}/{action}"
                )
            body = self._body()
            session = server.session(name)
            server._admit()
            try:
                return self._run_action(session, action, body)
            finally:
                server._release()

        def _run_action(self, session: DesignSession, action: str,
                        body: dict):
            started = time.perf_counter()
            if action == "analyze":
                options = _analysis_options(server, body)
                report, cached, epoch = session.analyze(
                    use_cache=_cache_mode(body), **options
                )
                return self._analysis_reply(
                    session, report, cached, epoch, started
                )
            if action == "delta":
                edits = body.get("edits")
                if not isinstance(edits, list) or not edits:
                    raise HttpError(
                        400, "'edits' must be a non-empty list of objects"
                    )
                request_id = body.get("request_id")
                if request_id is not None:
                    if (
                        not isinstance(request_id, str)
                        or not request_id
                        or len(request_id) > 200
                    ):
                        raise HttpError(
                            400,
                            "'request_id' must be a non-empty string of "
                            "at most 200 characters",
                        )
                options = _analysis_options(server, body)
                report, cached, epoch, deduplicated = session.delta(
                    edits,
                    use_cache=_cache_mode(body),
                    request_id=request_id,
                    **options,
                )
                return self._analysis_reply(
                    session, report, cached, epoch, started,
                    deduplicated=deduplicated,
                )
            if action == "explain":
                options = _analysis_options(server, body)
                node = body.get("node")
                transition = body.get("transition")
                if transition not in (None, "rise", "fall"):
                    raise HttpError(400, "'transition' must be rise or fall")
                sensitivity = body.get("sensitivity", False)
                if not isinstance(sensitivity, bool):
                    raise HttpError(400, "'sensitivity' must be a boolean")
                explanation, epoch = session.explain(
                    node if node is None else str(node), transition,
                    sensitivity=sensitivity, **options
                )
                payload = {
                    "ok": True,
                    "design": session.name,
                    "epoch": epoch,
                    "elapsed_ms": (time.perf_counter() - started) * 1e3,
                    "explanation": explanation,
                }
                return payload, 200, ()
            assert action == "charge"
            threshold = body.get("threshold", 0.5)
            try:
                threshold = float(threshold)
            except (TypeError, ValueError) as exc:
                raise HttpError(400, "'threshold' must be a number") from exc
            charge, epoch = session.charge(threshold=threshold)
            payload = {
                "ok": True,
                "design": session.name,
                "epoch": epoch,
                "elapsed_ms": (time.perf_counter() - started) * 1e3,
                "charge": charge,
            }
            return payload, 200, ()

        def _analysis_reply(self, session, report, cached, epoch, started,
                            deduplicated=None):
            payload = {
                "ok": True,
                "design": session.name,
                "epoch": epoch,
                "cached": cached,
                "elapsed_ms": (time.perf_counter() - started) * 1e3,
                "report": report,
            }
            if deduplicated is not None:
                payload["deduplicated"] = deduplicated
            return payload, 200, ()

        # ------------------------------------------------------------
        def do_GET(self):  # noqa: N802 - stdlib naming
            self._dispatch("GET")

        def do_POST(self):  # noqa: N802
            self._dispatch("POST")

        def do_DELETE(self):  # noqa: N802
            self._dispatch("DELETE")

    return Handler
