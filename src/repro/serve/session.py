"""Per-design sessions: the serving side of the session/engine split.

A :class:`DesignSession` owns everything the daemon keeps hot for one
loaded design: the parsed netlist, a :class:`~repro.core.TimingAnalyzer`
(the *engine* -- structural products and warm arc caches), an edit
epoch, and a writer-preferring :class:`~repro.serve.rwlock.RWLock`
coordinating concurrent clients.  Reads (cache-hit queries, charge
checks) share the lock; engine runs and netlist deltas take the write
side.  The analyzer's own internal lock (see ``TimingAnalyzer``
"Thread safety") is the second line of defence; the session lock exists
so *reads can be concurrent*, which an exclusive engine lock alone
cannot give.

Reports are memoized two ways:

* JSON payloads in the shared content-addressed
  :class:`~repro.serve.cache.ResultCache` -- keyed on the hash of
  (current ``.sim`` text, technology, options), so a delta automatically
  misses and an edit toggled back automatically hits again;
* live :class:`~repro.core.AnalysisResult` objects (a tiny per-session
  LRU) so ``explain`` can reuse the arrival maps of the analysis it is
  explaining instead of re-running it.

Per-request error policies: ``on_error`` may be overridden per call
(e.g. a best-effort query against a strictly-loaded design).  The
override applies to *extraction and analysis*; ERC ran once at load
time under the session policy, so load-time quarantines are part of the
session, not the request.

Per-request corners: ``corner`` retargets a query to another technology
point (a corner shorthand like ``"slow"`` or a full parameter dict)
without reloading the design.  Cache keys include the resolved
parameter point, and under the strict Elmore configuration the corner
run *evaluates* the session's parametric delay terms
(:mod:`repro.delay.parametric`) instead of re-extracting -- a warm
what-if costs one evaluation pass.

Durability: with a :class:`~repro.serve.journal.DesignJournal` attached,
every applied delta is appended (checksummed, ``fsync``'d) *before* the
response acknowledging it is produced, and the journal compacts into an
atomic snapshot once it outgrows its threshold.  Deltas may carry a
client-supplied **idempotency key** (``request_id``): a replayed
duplicate returns the original epoch and payload instead of re-editing,
so an at-least-once retrying client (:class:`~repro.serve.client.
TimingClient`) never double-applies an edit -- including across a crash,
because the key window rides the journal and snapshot.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager

from .. import robust
from ..core import TimingAnalyzer, charge_sharing_report
from ..errors import NetlistError
from ..netlist import sim_dumps, sim_loads
from ..tech import NMOS4, Technology
from .cache import ResultCache, cache_key
from .rwlock import RWLock

__all__ = ["DesignSession"]

#: Live AnalysisResult objects kept per session for explain reuse.
_RESULT_MEMO_LIMIT = 4

#: Recent delta idempotency keys remembered for dedupe (per design).
_REQUEST_WINDOW = 64


class DesignSession:
    """One loaded design plus the machinery to query and edit it safely."""

    def __init__(
        self,
        name: str,
        sim_text: str,
        *,
        tech: Technology | None = None,
        model: str = "elmore",
        on_error: str = robust.STRICT,
        workers: int | str = 1,
        cache: ResultCache | None = None,
        journal=None,
    ) -> None:
        self.name = name
        self.netlist = sim_loads(sim_text, name=name, tech=tech or NMOS4)
        self.model = model
        self.analyzer = TimingAnalyzer(
            self.netlist,
            model=model,
            workers=workers,
            on_error=on_error,
        )
        self.cache = cache if cache is not None else ResultCache()
        #: Optional DesignJournal making edits durable (see repro.serve.journal).
        self.journal = journal
        self.journal_error: str | None = None
        self.lock = RWLock()
        #: Bumped by every applied delta; clients use it to detect edits.
        self.epoch = 0
        self.loaded_at = time.time()
        self.analyses = 0
        self.deltas = 0
        self.deduplicated = 0
        self.last_coverage: str | None = None
        #: The .sim text as loaded, kept verbatim: snapshots persist this
        #: plus exact edited dimensions, because re-serializing through
        #: sim_dumps rounds floats to 12 significant digits.
        self._load_sim_text = sim_text
        self._sim_text: str | None = sim_text
        self._results: OrderedDict[str, object] = OrderedDict()
        #: Exact final w/l of every device edited since load.
        self._edited_dims: dict[str, dict] = {}
        #: request_id -> (epoch, payload | None), oldest first.
        self._applied_requests: OrderedDict[str, tuple[int, dict | None]] = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # Option plumbing.
    # ------------------------------------------------------------------
    def _policy_for(self, on_error: str | None) -> str:
        if on_error is None:
            return self.analyzer.on_error
        return robust.validate_policy(on_error)

    @contextmanager
    def _policy(self, policy: str):
        """Temporarily run the engine under ``policy``.

        Only ever entered under the write lock, so no concurrent request
        can observe the swapped policy.
        """
        analyzer = self.analyzer
        if policy == analyzer.on_error:
            yield
            return
        old = (analyzer.on_error, analyzer.calculator.on_error)
        analyzer.on_error = policy
        analyzer.calculator.on_error = policy
        try:
            yield
        finally:
            analyzer.on_error, analyzer.calculator.on_error = old

    def current_sim_text(self) -> str:
        """The design's current ``.sim`` text (tracks deltas)."""
        if self._sim_text is None:
            self._sim_text = sim_dumps(self.netlist)
        return self._sim_text

    def _resolve_corner(self, corner) -> Technology | None:
        """Per-request technology override: a corner shorthand name or a
        full parameter dict (``Technology.to_dict`` shape)."""
        if corner is None:
            return None
        try:
            if isinstance(corner, str):
                return self.netlist.tech.corner(corner)
            if isinstance(corner, dict):
                return Technology.from_dict(corner)
        except (KeyError, TypeError, ValueError) as exc:
            raise NetlistError(f"bad corner: {exc}") from exc
        raise NetlistError(
            "corner must be a name ('slow'/'typ'/'fast') or a "
            "technology parameter object"
        )

    def _key(
        self,
        policy: str,
        top_k: int,
        input_arrivals: dict[str, float] | None,
        corner: Technology | None = None,
    ) -> str:
        options = {
            "model": self.model,
            "policy": policy,
            "top_k": top_k,
            "input_arrivals": input_arrivals or {},
            # The resolved parameter point, so two shorthand spellings of
            # the same corner share an entry and a custom point never
            # collides with the base tech.
            "corner": None if corner is None else corner.to_dict(),
        }
        return cache_key(
            self.current_sim_text(), self.netlist.tech.to_dict(), options
        )

    @staticmethod
    def _cacheable(result) -> bool:
        """Deadline-cut results must not be cached (more time may do better)."""
        return not any(
            d.code == "deadline-exceeded" for d in result.diagnostics
        )

    def _remember(self, key: str, result) -> None:
        self._results[key] = result
        self._results.move_to_end(key)
        while len(self._results) > _RESULT_MEMO_LIMIT:
            self._results.popitem(last=False)

    def _run(
        self,
        key: str,
        policy: str,
        input_arrivals: dict[str, float] | None,
        top_k: int,
        deadline: float | None,
        corner: Technology | None = None,
    ):
        """Engine run under the write lock.

        Returns ``(engine, result)`` -- the engine is the session
        analyzer, or a corner sibling when ``corner`` is given, and is
        memoized alongside the result so a later ``explain`` against the
        same options uses the analyzer that actually produced it.
        """
        with self._policy(policy):
            engine = self.analyzer
            if corner is not None:
                from ..core.mcmm import Scenario

                # Strict Elmore with no deadline is the envelope in which
                # parametric term evaluation is exact; elsewhere the
                # sibling extracts concretely at its corner.
                term_source = None
                if (
                    deadline is None
                    and engine.on_error == robust.STRICT
                    and self.model == "elmore"
                ):
                    term_source = engine.calculator.parametric_source()
                engine = self.analyzer._scenario_analyzer(
                    Scenario(name="corner", tech=corner),
                    term_source=term_source,
                )
            result = engine.analyze(
                input_arrivals=input_arrivals,
                top_k=top_k,
                deadline=deadline,
            )
        self.analyses += 1
        self.last_coverage = (
            result.coverage.summary() if result.coverage is not None else None
        )
        self._remember(key, (engine, result))
        return engine, result

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def analyze(
        self,
        *,
        input_arrivals: dict[str, float] | None = None,
        top_k: int = 5,
        on_error: str | None = None,
        deadline: float | None = None,
        corner=None,
        use_cache: bool = True,
    ) -> tuple[dict, bool, int]:
        """Full analysis; returns ``(report payload, cached, epoch)``.

        The fast path holds only the read lock: hash the current design
        state, look the report up in the content-addressed cache.  On a
        miss the write lock is taken, the cache re-checked (another
        client may have just filled it), and the engine run.  ``deadline``
        is the per-request extraction budget in seconds (see
        ``TimingAnalyzer.analyze``); under the ``strict`` policy an
        overrun raises :class:`~repro.errors.DeadlineError`.  ``corner``
        retargets this one request to another technology point (see the
        module docstring); results are cached per parameter point.
        """
        policy = self._policy_for(on_error)
        tech = self._resolve_corner(corner)
        if use_cache:
            with self.lock.read_locked():
                key = self._key(policy, top_k, input_arrivals, tech)
                payload = self.cache.get(key)
                if payload is not None:
                    return payload, True, self.epoch
        with self.lock.write_locked():
            key = self._key(policy, top_k, input_arrivals, tech)
            if use_cache:
                payload = self.cache.get(key)
                if payload is not None:
                    return payload, True, self.epoch
            _engine, result = self._run(
                key, policy, input_arrivals, top_k, deadline, tech
            )
            payload = result.to_json()
            if use_cache and self._cacheable(result):
                self.cache.put(key, payload)
            return payload, False, self.epoch

    def explain(
        self,
        node: str | None = None,
        transition: str | None = None,
        *,
        input_arrivals: dict[str, float] | None = None,
        top_k: int = 5,
        on_error: str | None = None,
        deadline: float | None = None,
        corner=None,
        sensitivity: bool = False,
    ) -> tuple[dict, int]:
        """Causal chain behind a node's worst arrival, as JSON.

        Reuses the memoized analysis for the same options when one
        exists (the common "analyze, then explain the critical path"
        flow costs one engine run, not two).  ``node=None`` explains the
        critical-path endpoint.  ``corner`` explains the design at
        another technology point; ``sensitivity=True`` attaches
        per-parameter arrival slopes (see ``TimingAnalyzer.explain``).
        """
        policy = self._policy_for(on_error)
        tech = self._resolve_corner(corner)
        with self.lock.write_locked():
            key = self._key(policy, top_k, input_arrivals, tech)
            held = self._results.get(key)
            if held is None:
                engine, result = self._run(
                    key, policy, input_arrivals, top_k, deadline, tech
                )
            else:
                self._results.move_to_end(key)
                engine, result = held
            if node is None:
                if not result.paths:
                    raise NetlistError(
                        f"design {self.name!r} has no critical path to "
                        "explain; name a node"
                    )
                node = result.paths[0].endpoint
            with self._policy(policy):
                explanation = engine.explain(
                    node,
                    transition,
                    result=result,
                    sensitivity=sensitivity,
                )
            return explanation.to_json(), self.epoch

    def charge(self, *, threshold: float = 0.5) -> tuple[dict, int]:
        """Charge-sharing hazard check (read-only; shares the lock)."""
        with self.lock.read_locked():
            hazards = charge_sharing_report(
                self.netlist, self.analyzer.stage_graph, threshold=threshold
            )
            payload = {
                "schema": "repro-charge-report",
                "netlist": self.netlist.name,
                "threshold": threshold,
                "hazards": [
                    {
                        "node": h.node,
                        "node_class": h.node_class,
                        "c_store": h.c_store,
                        "c_shared": h.c_shared,
                        "retention": h.ratio,
                        "via": list(h.via),
                    }
                    for h in hazards
                ],
            }
            return payload, self.epoch

    # ------------------------------------------------------------------
    # Edits.
    # ------------------------------------------------------------------
    def delta(
        self,
        edits: list[dict],
        *,
        input_arrivals: dict[str, float] | None = None,
        top_k: int = 5,
        on_error: str | None = None,
        deadline: float | None = None,
        corner=None,
        use_cache: bool = True,
        request_id: str | None = None,
    ) -> tuple[dict, bool, int, bool]:
        """Apply device edits and re-analyze incrementally.

        Each edit is ``{"device": name, "w": metres?, "l": metres?}``.
        The edits route through ``notify_changed``, so only the stages
        touching an edited device are re-extracted -- every other
        stage's arcs stay cached in the engine.  Atomic: the write lock
        spans edit + re-analysis, so no client ever reads a half-edited
        design, and the returned epoch identifies the new state.

        ``request_id`` is a client-supplied idempotency key.  A key that
        already applied is *not* re-applied: the call returns the
        original epoch (and the original payload, when this process
        still remembers it) with the final ``deduplicated`` flag set, so
        an at-least-once retry never edits twice.  The edit and its key
        are journaled (when a journal is attached) before this returns.

        Returns ``(payload, cached, epoch, deduplicated)``.
        """
        policy = self._policy_for(on_error)
        tech = self._resolve_corner(corner)
        with self.lock.write_locked():
            if request_id is not None and request_id in self._applied_requests:
                return self._replay_duplicate(
                    request_id, policy, input_arrivals, top_k, deadline, tech
                )
            # Validate every edit before touching anything, so a bad
            # request can never leave the design half-edited or a bogus
            # record in the journal.
            applied: list[dict] = []
            for edit in edits:
                if not isinstance(edit, dict) or "device" not in edit:
                    raise NetlistError(
                        "each edit must be an object with a 'device' field"
                    )
                dev = self.netlist.device(str(edit["device"]))
                if "w" not in edit and "l" not in edit:
                    raise NetlistError(
                        f"edit for {dev.name!r} changes neither 'w' nor 'l'"
                    )
                record = {"device": dev.name}
                if "w" in edit:
                    record["w"] = float(edit["w"])
                if "l" in edit:
                    record["l"] = float(edit["l"])
                applied.append(record)
            changed: list[str] = []
            for record in applied:
                dev = self.netlist.device(record["device"])
                dims = self._edited_dims.setdefault(dev.name, {})
                if "w" in record:
                    dev.w = dims["w"] = record["w"]
                if "l" in record:
                    dev.l = dims["l"] = record["l"]
                changed.append(dev.name)
            self.analyzer.notify_changed(changed)
            self.epoch += 1
            self.deltas += 1
            self._sim_text = None
            self._results.clear()
            if request_id is not None:
                self._remember_request(request_id, self.epoch, None)
            self._journal_delta(applied, request_id)
            key = self._key(policy, top_k, input_arrivals, tech)
            if use_cache:
                payload = self.cache.get(key)
                if payload is not None:
                    if request_id is not None:
                        self._remember_request(request_id, self.epoch, payload)
                    return payload, True, self.epoch, False
            _engine, result = self._run(
                key, policy, input_arrivals, top_k, deadline, tech
            )
            payload = result.to_json()
            if use_cache and self._cacheable(result):
                self.cache.put(key, payload)
            if request_id is not None:
                self._remember_request(request_id, self.epoch, payload)
            return payload, False, self.epoch, False

    def _replay_duplicate(
        self, request_id, policy, input_arrivals, top_k, deadline, tech
    ) -> tuple[dict, bool, int, bool]:
        """Answer a retried delta without re-applying its edits.

        Returns the payload produced when the key first applied when
        this process still remembers it; after a crash the window is
        rebuilt from the journal without payloads, so the answer is
        recomputed against the current state (identical for the common
        retry-the-last-edit case) under the recorded epoch.
        """
        epoch, payload = self._applied_requests[request_id]
        self.deduplicated += 1
        if payload is not None:
            return payload, True, epoch, True
        key = self._key(policy, top_k, input_arrivals, tech)
        payload = self.cache.get(key)
        cached = payload is not None
        if payload is None:
            _engine, result = self._run(
                key, policy, input_arrivals, top_k, deadline, tech
            )
            payload = result.to_json()
            if self._cacheable(result):
                self.cache.put(key, payload)
        self._remember_request(request_id, epoch, payload)
        return payload, cached, epoch, True

    def _remember_request(
        self, request_id: str, epoch: int, payload: dict | None
    ) -> None:
        self._applied_requests[request_id] = (epoch, payload)
        self._applied_requests.move_to_end(request_id)
        while len(self._applied_requests) > _REQUEST_WINDOW:
            self._applied_requests.popitem(last=False)

    # ------------------------------------------------------------------
    # Durability.
    # ------------------------------------------------------------------
    def _journal_delta(
        self, applied: list[dict], request_id: str | None
    ) -> None:
        """Append the applied delta to the journal (and maybe compact).

        A failing journal (disk full, permissions) degrades the session
        to memory-only with a recorded reason instead of refusing edits;
        the daemon surfaces ``journal_error`` in ``/stats``.
        """
        if self.journal is None:
            return
        record = {"type": "delta", "epoch": self.epoch, "edits": applied}
        if request_id is not None:
            record["request_id"] = request_id
        try:
            self.journal.append(record)
            self.journal.maybe_compact(self.snapshot_state())
        except OSError as exc:
            self.journal_error = str(exc)
            self.journal = None

    def snapshot_state(self) -> dict:
        """The design's durable state, exactly (see module docstring)."""
        return {
            "version": 1,
            "design": self.name,
            "epoch": self.epoch,
            "sim": self._load_sim_text,
            "dims": {
                dev: dict(dims) for dev, dims in self._edited_dims.items()
            },
            "model": self.model,
            "on_error": self.analyzer.on_error,
            "tech": self.netlist.tech.to_dict(),
            "requests": [
                [rid, epoch]
                for rid, (epoch, _payload) in self._applied_requests.items()
            ],
        }

    def restore(
        self,
        dims: dict[str, dict],
        epoch: int,
        requests: list[tuple[str, int]],
    ) -> None:
        """Re-apply recovered edits so the session matches the pre-crash one.

        ``dims`` carries the exact final ``w``/``l`` floats from the
        journal/snapshot, so the in-memory netlist -- and therefore every
        ``analyze``/``explain`` payload and cache key -- is bit-identical
        to the state the crashed daemon held.
        """
        changed: list[str] = []
        for name, dd in dims.items():
            dev = self.netlist.device(name)
            if "w" in dd:
                dev.w = float(dd["w"])
            if "l" in dd:
                dev.l = float(dd["l"])
            self._edited_dims[name] = dict(dd)
            changed.append(name)
        if changed:
            self.analyzer.notify_changed(changed)
        self.epoch = epoch
        self._sim_text = None
        self._results.clear()
        for rid, req_epoch in requests:
            self._remember_request(rid, req_epoch, None)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Per-design introspection for ``/stats``."""
        stats = {
            "devices": len(self.netlist.devices),
            "stages": len(self.analyzer.stage_graph),
            "epoch": self.epoch,
            "policy": self.analyzer.on_error,
            "model": self.model,
            "analyses": self.analyses,
            "deltas": self.deltas,
            "deduplicated": self.deduplicated,
            "coverage": self.last_coverage,
            "lock": self.lock.stats(),
        }
        if self.journal is not None:
            stats["journal"] = self.journal.stats()
        if self.journal_error is not None:
            stats["journal_error"] = self.journal_error
        return stats
