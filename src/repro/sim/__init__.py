"""Reference simulators.

Public surface:

* :class:`SpiceLite`, :class:`TransientOptions` -- the numerical transient
  simulator (the package's SPICE2 stand-in)
* :func:`measure_step_delay`, :class:`DelayMeasurement` -- one-shot delay
  measurements
* :class:`Waveform` -- sampled traces with crossing/slew measurements
* stimulus builders: :func:`constant`, :func:`step`, :func:`pulse`,
  :func:`piecewise`, :func:`two_phase_waveforms`
* :class:`SwitchSim`, :data:`X` -- the three-valued switch-level functional
  simulator
* :class:`RSim` -- event-driven switch-level simulator with RC-derived
  event delays (the RSIM-class middle ground)
* :func:`mos_current`, :func:`threshold` -- level-1 device equations
"""

from .devices import mos_current, threshold
from .measure import DelayMeasurement, measure_step_delay
from .rsim import Event, RSim
from .spicelite import SpiceLite, TransientOptions
from .stimuli import (
    Stimulus,
    constant,
    piecewise,
    pulse,
    step,
    two_phase_waveforms,
)
from .switchsim import SwitchSim, X
from .vectors import DeckResult, Failure, VectorCommand, parse_deck, run_deck
from .waveforms import Waveform

__all__ = [
    "SpiceLite",
    "TransientOptions",
    "DelayMeasurement",
    "measure_step_delay",
    "Waveform",
    "Stimulus",
    "constant",
    "step",
    "pulse",
    "piecewise",
    "two_phase_waveforms",
    "SwitchSim",
    "X",
    "RSim",
    "Event",
    "VectorCommand",
    "Failure",
    "DeckResult",
    "parse_deck",
    "run_deck",
    "mos_current",
    "threshold",
]
