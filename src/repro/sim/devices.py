"""Level-1 (Shichman-Hodges) MOS device equations for SPICE-lite.

The golden-reference simulator needs a nonlinear DC model -- the whole point
of comparing against it is to measure how much the static linear-RC
abstraction gives up.  We use the classic level-1 model that SPICE2 itself
defaulted to in 1983:

* cutoff:      Vgs <= Vt            Ids = 0
* triode:      Vds <  Vgs - Vt      Ids = beta * (Vgs - Vt - Vds/2) * Vds
* saturation:  Vds >= Vgs - Vt      Ids = beta/2 * (Vgs - Vt)^2

with channel-length modulation ``(1 + lambda * Vds)`` applied in both
conducting regions (keeping the current continuous at the region boundary),
and source/drain symmetry handled by swapping terminals when Vds < 0.

:func:`mos_current` returns the drain->source current and its analytic
partial derivatives with respect to the three terminal voltages, as needed
by the Newton iteration.  The derivatives are verified against finite
differences in the test suite.
"""

from __future__ import annotations

from ..netlist import DeviceKind, Transistor
from ..tech import Technology

__all__ = ["mos_current", "threshold"]


def threshold(tech: Technology, kind: DeviceKind) -> float:
    """Threshold voltage of a device kind, volts."""
    return tech.vt_enh if DeviceKind(kind) is DeviceKind.ENH else tech.vt_dep


def mos_current(
    tech: Technology,
    kind: DeviceKind,
    vg: float,
    vs: float,
    vd: float,
    w: float,
    l: float,
) -> tuple[float, float, float, float]:
    """Drain current and derivatives of a level-1 MOS device.

    Returns ``(ids, d_ids/d_vg, d_ids/d_vs, d_ids/d_vd)`` where ``ids`` is
    the current flowing from the drain terminal to the source terminal
    (positive when ``vd > vs`` and the channel conducts).
    """
    if vd >= vs:
        i, dg, ds_, dd = _forward(tech, kind, vg, vs, vd, w, l)
        return i, dg, ds_, dd
    # Swap source and drain: the physical device is symmetric.
    i, dg, ds_, dd = _forward(tech, kind, vg, vd, vs, w, l)
    # i' flows from (old vs) to (old vd); our convention wants drain->source.
    return -i, -dg, -dd, -ds_


def _forward(
    tech: Technology,
    kind: DeviceKind,
    vg: float,
    vs: float,
    vd: float,
    w: float,
    l: float,
) -> tuple[float, float, float, float]:
    """Level-1 current for vd >= vs, with derivatives (vg, vs, vd order)."""
    vt = threshold(tech, kind)
    beta = tech.beta(w, l)
    lam = tech.channel_lambda

    vgs = vg - vs
    vds = vd - vs
    vov = vgs - vt
    if vov <= 0.0:
        return 0.0, 0.0, 0.0, 0.0

    clm = 1.0 + lam * vds
    if vds < vov:
        # Triode.
        core = (vov - 0.5 * vds) * vds
        i = beta * core * clm
        d_core_dvgs = vds
        d_core_dvds = vov - vds
        di_dvgs = beta * d_core_dvgs * clm
        di_dvds = beta * (d_core_dvds * clm + core * lam)
    else:
        # Saturation.
        core = 0.5 * vov * vov
        i = beta * core * clm
        di_dvgs = beta * vov * clm
        di_dvds = beta * core * lam

    # Chain rule: vgs = vg - vs, vds = vd - vs.
    dg = di_dvgs
    dd = di_dvds
    ds_ = -di_dvgs - di_dvds
    return i, dg, ds_, dd
