"""Single-shot delay measurements on top of SPICE-lite.

These helpers package the standard experiment: hold the circuit in a known
state, step one input, and measure the 50%-crossing delay to an output.
They are what the accuracy experiments (R-T1, R-T2, R-F2) call in their
inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..netlist import Netlist
from .spicelite import SpiceLite, TransientOptions
from .stimuli import Stimulus, constant, step
from .waveforms import Waveform

__all__ = ["DelayMeasurement", "measure_step_delay"]


@dataclass(frozen=True)
class DelayMeasurement:
    """Result of one step-response measurement.

    ``delay`` is input-50% to output-50%; ``output_direction`` is what the
    output actually did; ``output_transition_time`` is its 10-90% figure.
    """

    delay: float
    input_direction: str
    output_direction: str
    output_transition_time: float
    waveform: Waveform


def measure_step_delay(
    netlist: Netlist,
    trigger: str,
    output: str,
    *,
    input_state: dict[str, int] | None = None,
    direction: str = "rise",
    t_step: float = 5e-9,
    t_stop: float | None = None,
    ramp: float = 1e-9,
    options: TransientOptions | None = None,
) -> DelayMeasurement:
    """Step ``trigger`` and measure the delay to ``output``.

    ``input_state`` gives the logic level (0/1) of every other input and
    clock; unlisted ones default to 0.  ``direction`` is the trigger's
    transition.  The measurement threshold is the technology's ``v_meas``.
    """
    if direction not in ("rise", "fall"):
        raise SimulationError(f"unknown direction {direction!r}")
    tech = netlist.tech
    drive_names = set(netlist.inputs) | set(netlist.clocks)
    if trigger not in drive_names:
        raise SimulationError(f"{trigger!r} is not an input or clock")
    input_state = dict(input_state or {})

    stimuli: dict[str, Stimulus] = {}
    for name in drive_names:
        if name == trigger:
            continue
        level = tech.vdd if input_state.get(name, 0) else 0.0
        stimuli[name] = constant(level)
    if direction == "rise":
        stimuli[trigger] = step(t_step, 0.0, tech.vdd, ramp)
    else:
        stimuli[trigger] = step(t_step, tech.vdd, 0.0, ramp)

    if t_stop is None:
        t_stop = t_step + 60e-9

    sim = SpiceLite(netlist, options=options)
    wave = sim.transient(stimuli, t_stop, record=[trigger, output])

    t_in = wave.crossing_after(trigger, tech.v_meas, direction, t_step * 0.5)
    if t_in is None:
        raise SimulationError(f"trigger {trigger!r} never crossed threshold")
    t_rise = wave.crossing_after(output, tech.v_meas, "rise", t_in)
    t_fall = wave.crossing_after(output, tech.v_meas, "fall", t_in)

    candidates = [
        (t, d) for t, d in ((t_rise, "rise"), (t_fall, "fall")) if t is not None
    ]
    if not candidates:
        raise SimulationError(
            f"output {output!r} did not switch after {trigger!r} {direction} "
            f"(final value {wave.final_value(output):.2f} V)"
        )
    t_out, out_dir = min(candidates)

    # The output starts moving as soon as the input ramp begins -- before
    # the input's 50% crossing -- so slew is measured from the step start.
    # Thresholds are 10-90% of the *observed swing*: ratioed nMOS lows and
    # pass-degraded highs never reach the rails.
    slew_from = t_step * 0.5
    v_start = wave.value_at(output, slew_from)
    v_final = wave.final_value(output)
    v_10 = v_start + 0.1 * (v_final - v_start)
    v_90 = v_start + 0.9 * (v_final - v_start)
    if out_dir == "rise":
        trans = wave.transition_time(output, v_10, v_90, "rise", slew_from)
    else:
        trans = wave.transition_time(output, v_90, v_10, "fall", slew_from)

    return DelayMeasurement(
        delay=t_out - t_in,
        input_direction=direction,
        output_direction=out_dir,
        output_transition_time=trans,
        waveform=wave,
    )
