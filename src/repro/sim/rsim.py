"""RSIM-class event-driven switch-level simulator with timing.

Between the static analyzer (no values, worst-case times) and SPICE-lite
(exact values and times, tiny capacity) sat the third tool of the 1983
flow: an *event-driven* switch-level simulator whose logic values come
from the switch model and whose event delays come from the RC model --
RSIM.  It answers "when does this vector's effect reach that node?" at
logic-simulation cost.

This implementation reuses the package's existing substrates:

* values: the same three-valued stage resolution as
  :class:`repro.sim.switchsim.SwitchSim`;
* delays: per-node rise/fall figures precomputed from the static
  calculator's timing arcs (the fastest arc driving the node -- see
  ``_precompute_delays``), so an event's latency is the same RC physics
  the analyzer uses.

Because rsim times one concrete vector while the analyzer times the worst
case over all vectors, ``rsim settle time <= TV arrival`` holds on any
node of a *flow-clean* design (one where no closed pass switch can
backdrive its source) -- a cross-engine invariant the test suite checks
exactly on the adders.  On structures with electrically bidirectional
switches (muxes whose sources fight through the closed pass), the switch
simulator reproduces back-conduction that design-intent static analysis
rightly excludes, so the bound there holds with a small tolerance; the
static analyzer remains the signoff authority.

Example::

    rsim = RSim(netlist)
    rsim.drive("a", 0)
    rsim.settle()                  # establish initial state
    rsim.drive("a", 1)             # event at current time
    rsim.settle()
    print(rsim.now, rsim.value("out"), rsim.history("out"))
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..delay import FALL, RISE, StageDelayCalculator
from ..errors import SimulationError
from ..netlist import Netlist
from ..stages import StageGraph, decompose
from .switchsim import SwitchSim, X

__all__ = ["RSim", "Event"]


@dataclass(frozen=True)
class Event:
    """One scheduled value change."""

    time: float
    node: str
    value: object


class RSim:
    """Event-driven switch-level simulator with RC-derived delays."""

    def __init__(
        self,
        netlist: Netlist,
        *,
        calculator: StageDelayCalculator | None = None,
        default_delay: float = 0.5e-9,
        max_events_per_node: int = 64,
    ):
        self.netlist = netlist
        if calculator is None:
            # The delay table needs oriented pass devices.
            from ..flow import infer_flow

            infer_flow(netlist)
        self.graph: StageGraph = decompose(netlist)
        self._switch = SwitchSim(netlist, self.graph)
        self._calculator = calculator or StageDelayCalculator(
            netlist, self.graph
        )
        self.default_delay = default_delay
        self.max_events_per_node = max_events_per_node

        self.now = 0.0
        self._queue: list[tuple[float, int, str, object]] = []
        self._sequence = 0
        self._event_counts: dict[str, int] = {}
        self._history: dict[str, list[tuple[float, object]]] = {}
        self._delays = self._precompute_delays()

    # ------------------------------------------------------------------
    # Delay table.
    # ------------------------------------------------------------------
    def _precompute_delays(self) -> dict[str, tuple[float, float]]:
        """Per-node (rise, fall) latency from the static timing arcs.

        The simulator does not know which arc caused a change, so it uses
        the *fastest* intrinsic arc delay into the node.  That choice makes
        the cross-engine invariant hold by construction: every hop of the
        active path is charged no more than its static arc delay, so an
        event-simulated settle time never exceeds the analyzer's worst-case
        arrival.  (It also makes rsim an optimistic estimator -- the same
        trade RSIM made; sign-off numbers come from the static analyzer.)
        Nodes no arc covers fall back to ``default_delay``.
        """
        table: dict[str, tuple[float | None, float | None]] = {}

        def better(old: float | None, new: float | None) -> float | None:
            if new is None:
                return old
            if old is None:
                return new
            return min(old, new)

        for arc in self._calculator.all_arcs(active_clocks=None):
            rise = arc.rise.delay if arc.rise else None
            fall = arc.fall.delay if arc.fall else None
            old_rise, old_fall = table.get(arc.output, (None, None))
            table[arc.output] = (
                better(old_rise, rise),
                better(old_fall, fall),
            )
        return {
            node: (rise or 0.0, fall or 0.0)
            for node, (rise, fall) in table.items()
        }

    def _delay_for(self, node: str, value: object) -> float:
        rise, fall = self._delays.get(node, (0.0, 0.0))
        if value == 1:
            chosen = rise
        elif value == 0:
            chosen = fall
        else:
            chosen = min(rise, fall)  # X arrives as early as possible
        return chosen if chosen > 0.0 else self.default_delay

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def value(self, node: str) -> object:
        """Current logic value of a node: 0, 1, or X."""
        return self._switch.value(node)

    def history(self, node: str) -> list[tuple[float, object]]:
        """Recorded (time, value) changes of a node."""
        return list(self._history.get(node, ()))

    def drive(self, name: str, value: object, at: float | None = None) -> None:
        """Schedule an input/clock change (defaults to the current time)."""
        time = self.now if at is None else at
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({time} < {self.now})"
            )
        if name not in self.netlist.inputs and name not in self.netlist.clocks:
            raise SimulationError(f"{name!r} is not an input or clock")
        self._schedule(time, name, value)

    def drive_word(self, nodes: list[str], value: int) -> None:
        """Drive a little-endian input word at the current time."""
        for bit, name in enumerate(nodes):
            self.drive(name, (value >> bit) & 1)

    def word(self, nodes: list[str]) -> int | None:
        """Read nodes as an unsigned little-endian word; None on any X."""
        return self._switch.word(nodes)

    def settle(self, limit: float | None = None) -> float:
        """Process events until the queue drains (or ``limit`` is hit).

        Returns the time of the last processed event.  Raises on runaway
        activity (oscillation): more than ``max_events_per_node`` changes
        of one node within a single settle call.
        """
        self._event_counts = {}
        last = self.now
        while self._queue:
            time, _seq, node, value = heapq.heappop(self._queue)
            if limit is not None and time > limit:
                # Not yet due: put it back and stop.
                self._schedule(time, node, value)
                self.now = limit
                return last
            self.now = max(self.now, time)
            last = self.now
            self._apply(node, value)
        return last

    def run_vector(self, assignments: dict[str, object]) -> float:
        """Drive several inputs at the current time and settle.

        Returns the settle time (time of the last event).
        """
        for name, value in assignments.items():
            self.drive(name, value)
        return self.settle()

    def settle_time_of(self, node: str, since: float) -> float | None:
        """Last change of ``node`` at or after ``since`` (None if quiet)."""
        changes = [t for t, _v in self._history.get(node, ()) if t >= since]
        return max(changes) if changes else None

    # ------------------------------------------------------------------
    # Engine.
    # ------------------------------------------------------------------
    def _schedule(self, time: float, node: str, value: object) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, node, value))

    def _apply(self, node: str, value: object) -> None:
        if self._switch._values.get(node) == value:
            return
        count = self._event_counts.get(node, 0) + 1
        self._event_counts[node] = count
        if count > self.max_events_per_node:
            raise SimulationError(
                f"node {node!r} changed {count} times in one settle: "
                "oscillating feedback"
            )
        self._switch._values[node] = value
        self._history.setdefault(node, []).append((self.now, value))

        # Re-evaluate every stage this node can influence: the stage that
        # owns it and every stage it gates.
        affected = []
        own = self.graph.stage_of(node)
        if own is not None:
            affected.append(own)
        affected.extend(self.graph.stages_gated_by(node))
        if node in self.netlist.inputs or node in self.netlist.clocks:
            affected.extend(self.graph.stages_at_boundary(node))

        seen = set()
        for stage in affected:
            if stage.index in seen:
                continue
            seen.add(stage.index)
            self._evaluate_stage(stage)

    def _evaluate_stage(self, stage) -> None:
        """Compute the stage's new values; schedule differences as events.

        Latency is charged at the stage's *outputs* -- the granularity of
        the static timing arcs.  Internal cascade nodes are invisible
        outside the stage, so they are settled immediately with a bounded
        local fixpoint (no events, no oscillation accounting); only output
        changes enter the event queue.  This keeps the cross-engine
        invariant exact: each inter-stage hop costs no more than its
        static arc, so a vector's settle time never exceeds the analyzer's
        worst-case arrival.
        """
        switch = self._switch
        outputs = stage.outputs
        retracted = {n: switch._values[n] for n in outputs}

        limit = 4 * len(stage.nodes) + 8
        pending: dict[str, object] = {}
        for _sweep in range(limit):
            before = {n: switch._values[n] for n in stage.nodes}
            switch._evaluate_stage(stage)
            # Hold outputs at their externally visible values; they change
            # only through scheduled events.
            pending = {}
            for node in outputs:
                new = switch._values[node]
                if new != retracted[node]:
                    pending[node] = new
                    switch._values[node] = retracted[node]
            internal_changed = any(
                switch._values[n] != before[n]
                for n in stage.nodes
                if n not in outputs
            )
            if not internal_changed:
                break
        else:
            raise SimulationError(
                f"stage #{stage.index} did not settle internally in "
                f"{limit} sweeps (oscillating feedback)"
            )
        for node, new in pending.items():
            self._schedule(self.now + self._delay_for(node, new), node, new)
