"""SPICE-lite: a transistor-level transient circuit simulator.

This is the package's stand-in for SPICE2 -- the golden reference every
static estimate is judged against (experiments R-T1, R-T2, R-F2) and the
"three orders of magnitude slower" comparison point of R-T3.  It is a real
(if small) circuit simulator:

* nodal formulation over the netlist's internal nodes; rails, primary
  inputs, and clocks are ideal voltage sources driven by
  :mod:`repro.sim.stimuli` waveforms;
* level-1 MOS devices (:mod:`repro.sim.devices`), a grounded linear
  capacitor per node (:meth:`repro.netlist.Netlist.node_capacitance`), and a
  ``gmin`` leak to ground for conditioning;
* backward-Euler integration with full Newton iteration per step (L-stable,
  so initial conditions can be settled by integration rather than a fragile
  DC solve), with automatic step halving on nonconvergence.

Dense numpy linear algebra keeps the implementation transparent; intended
circuit sizes are the golden-reference cones and blocks (up to a few
hundred nodes), exactly the sizes SPICE itself was usable at in 1983.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError, SimulationError
from ..netlist import Netlist
from ..tech import Technology
from .devices import mos_current
from .stimuli import Stimulus, constant
from .waveforms import Waveform

__all__ = ["SpiceLite", "TransientOptions"]


@dataclass(frozen=True)
class TransientOptions:
    """Integration controls."""

    dt: float = 0.1e-9  #: nominal timestep, seconds
    settle: float = 40e-9  #: pre-roll with inputs frozen at t=0 values
    newton_tol: float = 1e-6  #: volts
    newton_max_iter: int = 40
    max_step_halvings: int = 10
    newton_clamp: float = 2.0  #: max |dV| per Newton update, volts
    gmin: float = 1e-9  #: siemens to ground at every node


class SpiceLite:
    """Transient simulator for one netlist."""

    def __init__(
        self,
        netlist: Netlist,
        *,
        tech: Technology | None = None,
        options: TransientOptions | None = None,
    ):
        self.netlist = netlist
        self.tech = tech or netlist.tech
        self.options = options or TransientOptions()

        self._forced = [
            n
            for n in netlist.nodes
            if netlist.is_boundary(n)
        ]
        self._unknowns = [
            n
            for n in netlist.nodes
            if not netlist.is_boundary(n) and netlist.channel_devices(n)
        ]
        dangling = [
            n
            for n in netlist.nodes
            if not netlist.is_boundary(n)
            and not netlist.channel_devices(n)
            and netlist.gate_loads(n)
        ]
        if dangling:
            raise SimulationError(
                f"cannot simulate {netlist.name!r}: floating gate node(s) "
                f"{sorted(dangling)[:5]}"
            )

        self._index = {n: i for i, n in enumerate(self._unknowns)}
        self._caps = np.array(
            [netlist.node_capacitance(n, self.tech) for n in self._unknowns]
        )
        if np.any(self._caps <= 0):  # pragma: no cover - floor guarantees > 0
            raise SimulationError("every node needs positive capacitance")

        # Pre-resolve device terminals to (kind, is_unknown, index-or-name).
        self._devices = []
        for dev in netlist.devices.values():
            self._devices.append(
                (
                    dev.kind,
                    self._slot(dev.gate),
                    self._slot(dev.source),
                    self._slot(dev.drain),
                    dev.w,
                    dev.l,
                )
            )

    def _slot(self, node: str) -> tuple[bool, object]:
        if node in self._index:
            return (True, self._index[node])
        return (False, node)

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._unknowns)

    def transient(
        self,
        stimuli: dict[str, Stimulus],
        t_stop: float,
        *,
        record: list[str] | None = None,
        v_init: dict[str, float] | None = None,
    ) -> Waveform:
        """Integrate from t=0 to ``t_stop`` and return the waveform.

        ``stimuli`` drives primary inputs and clocks by name; unlisted
        inputs are held at 0 V.  Rails are implicit.  A settle pre-roll
        (inputs frozen at their t=0 values) establishes the initial
        operating point unless ``v_init`` pins every node.
        """
        opt = self.options
        for name in stimuli:
            if name not in self.netlist.inputs and name not in self.netlist.clocks:
                raise SimulationError(
                    f"stimulus for {name!r}, which is not an input or clock"
                )
        drive: dict[str, Stimulus] = {
            name: stimuli.get(name, constant(0.0))
            for name in list(self.netlist.inputs) + list(self.netlist.clocks)
        }

        v = np.zeros(len(self._unknowns))
        if v_init:
            for name, value in v_init.items():
                if name in self._index:
                    v[self._index[name]] = value
        else:
            v = self._settle(v, drive)

        recorded = record or (self._unknowns + self._forced)
        wave = Waveform(recorded)
        record_unknown = [
            (i, self._index[n]) for i, n in enumerate(recorded) if n in self._index
        ]
        record_forced = [
            (i, n) for i, n in enumerate(recorded) if n not in self._index
        ]

        def snapshot(t: float, v_now: np.ndarray) -> None:
            row = np.empty(len(recorded))
            for slot, idx in record_unknown:
                row[slot] = v_now[idx]
            for slot, name in record_forced:
                row[slot] = self._forced_value(name, drive, t)
            wave.append(t, row)

        snapshot(0.0, v)
        t = 0.0
        while t < t_stop - 1e-18:
            h = min(opt.dt, t_stop - t)
            v, h_used = self._step(v, drive, t, h)
            t += h_used
            snapshot(t, v)
        return wave

    # ------------------------------------------------------------------
    def _forced_value(
        self, name: str, drive: dict[str, Stimulus], t: float
    ) -> float:
        if name == self.netlist.vdd:
            return self.tech.vdd
        if name == self.netlist.gnd:
            return 0.0
        return drive[name](t)

    def _settle(self, v: np.ndarray, drive: dict[str, Stimulus]) -> np.ndarray:
        """Integrate with inputs frozen at t=0 to reach the operating point."""
        opt = self.options
        frozen = {name: constant(wave(0.0)) for name, wave in drive.items()}
        t = -opt.settle
        while t < -1e-18:
            h = min(4.0 * opt.dt, -t)
            v, h_used = self._step(v, frozen, t, h)
            t += h_used
        return v

    def _step(
        self,
        v_old: np.ndarray,
        drive: dict[str, Stimulus],
        t: float,
        h: float,
    ) -> tuple[np.ndarray, float]:
        """One backward-Euler step with halving on nonconvergence."""
        opt = self.options
        for _attempt in range(opt.max_step_halvings + 1):
            converged, v_new = self._newton(v_old, drive, t + h, h)
            if converged:
                return v_new, h
            h *= 0.5
        raise ConvergenceError(
            f"backward-Euler step failed to converge at t={t:.3e}s even "
            f"after {opt.max_step_halvings} halvings"
        )

    def _newton(
        self,
        v_old: np.ndarray,
        drive: dict[str, Stimulus],
        t_new: float,
        h: float,
    ) -> tuple[bool, np.ndarray]:
        opt = self.options
        n = len(self._unknowns)
        v = v_old.copy()
        inv_h = 1.0 / h
        forced_cache: dict[str, float] = {}

        def forced(name: str) -> float:
            value = forced_cache.get(name)
            if value is None:
                value = self._forced_value(name, drive, t_new)
                forced_cache[name] = value
            return value

        for _iteration in range(opt.newton_max_iter):
            f = self._caps * (v - v_old) * inv_h + opt.gmin * v
            jac = np.zeros((n, n))
            diag = self._caps * inv_h + opt.gmin
            jac[np.arange(n), np.arange(n)] = diag

            for kind, g_slot, s_slot, d_slot, w, l in self._devices:
                vg = v[g_slot[1]] if g_slot[0] else forced(g_slot[1])
                vs = v[s_slot[1]] if s_slot[0] else forced(s_slot[1])
                vd = v[d_slot[1]] if d_slot[0] else forced(d_slot[1])
                ids, dg, ds_, dd = mos_current(
                    self.tech, kind, vg, vs, vd, w, l
                )
                # Current leaves the drain node and enters the source node.
                if d_slot[0]:
                    row = d_slot[1]
                    f[row] += ids
                    if g_slot[0]:
                        jac[row, g_slot[1]] += dg
                    if s_slot[0]:
                        jac[row, s_slot[1]] += ds_
                    if d_slot[0]:
                        jac[row, d_slot[1]] += dd
                if s_slot[0]:
                    row = s_slot[1]
                    f[row] -= ids
                    if g_slot[0]:
                        jac[row, g_slot[1]] -= dg
                    if s_slot[0]:
                        jac[row, s_slot[1]] -= ds_
                    if d_slot[0]:
                        jac[row, d_slot[1]] -= dd

            try:
                delta = np.linalg.solve(jac, -f)
            except np.linalg.LinAlgError:
                return False, v
            max_delta = float(np.max(np.abs(delta))) if n else 0.0
            if max_delta > opt.newton_clamp:
                delta *= opt.newton_clamp / max_delta
            v = v + delta
            if max_delta < opt.newton_tol:
                return True, v
        return False, v
