"""Stimulus waveforms for SPICE-lite transient simulation.

A stimulus is just a callable ``t -> volts``.  This module provides the
builders every experiment needs: constant levels, single steps with a
controlled ramp, pulses, and the two-phase non-overlapping clock pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..clocks import TwoPhaseClock
from ..errors import SimulationError

__all__ = [
    "Stimulus",
    "constant",
    "step",
    "pulse",
    "piecewise",
    "two_phase_waveforms",
]

Stimulus = Callable[[float], float]


def constant(level: float) -> Stimulus:
    """A DC level."""
    return lambda t: level


def step(
    t0: float,
    v_from: float,
    v_to: float,
    ramp: float = 1e-9,
) -> Stimulus:
    """A single transition at ``t0`` with a linear ramp of ``ramp`` seconds."""
    if ramp <= 0:
        raise SimulationError("step ramp must be positive")

    def wave(t: float) -> float:
        if t <= t0:
            return v_from
        if t >= t0 + ramp:
            return v_to
        return v_from + (v_to - v_from) * (t - t0) / ramp

    return wave


def pulse(
    t0: float,
    width: float,
    v_low: float,
    v_high: float,
    ramp: float = 1e-9,
) -> Stimulus:
    """low -> high at ``t0``, back to low at ``t0 + width``."""
    up = step(t0, v_low, v_high, ramp)
    down = step(t0 + width, v_high, v_low, ramp)

    def wave(t: float) -> float:
        return up(t) if t < t0 + width else down(t)

    return wave


def piecewise(points: list[tuple[float, float]]) -> Stimulus:
    """Linear interpolation through ``(time, volts)`` points."""
    if len(points) < 1:
        raise SimulationError("piecewise stimulus needs at least one point")
    times = [p[0] for p in points]
    if any(b <= a for a, b in zip(times, times[1:])):
        raise SimulationError("piecewise times must be strictly increasing")

    def wave(t: float) -> float:
        if t <= points[0][0]:
            return points[0][1]
        if t >= points[-1][0]:
            return points[-1][1]
        for (t_a, v_a), (t_b, v_b) in zip(points, points[1:]):
            if t_a <= t <= t_b:
                return v_a + (v_b - v_a) * (t - t_a) / (t_b - t_a)
        return points[-1][1]  # pragma: no cover - unreachable

    return wave


def two_phase_waveforms(
    clock: TwoPhaseClock,
    width1: float,
    width2: float,
    vdd: float,
    *,
    cycles: int = 2,
    ramp: float = 1e-9,
    start: float = 0.0,
) -> dict[str, Stimulus]:
    """Non-overlapping phi1/phi2 waveforms for transient verification.

    Layout of one cycle: phi1 high for ``width1``, gap, phi2 high for
    ``width2``, gap.  Returns ``{phase_label: stimulus}``.
    """
    gap = clock.nonoverlap
    period = width1 + width2 + 2.0 * gap
    points1: list[tuple[float, float]] = [(start, 0.0)]
    points2: list[tuple[float, float]] = [(start, 0.0)]
    t = start
    for _cycle in range(cycles):
        points1 += [(t + ramp, vdd), (t + width1, vdd), (t + width1 + ramp, 0.0)]
        t2 = t + width1 + gap
        points2 += [
            (t2, 0.0),
            (t2 + ramp, vdd),
            (t2 + width2, vdd),
            (t2 + width2 + ramp, 0.0),
        ]
        t += period
        points1.append((t, 0.0))
    return {
        clock.phase1: piecewise(points1),
        clock.phase2: piecewise(points2),
    }
