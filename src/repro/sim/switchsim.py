"""Switch-level functional simulator (esim-class).

The timing analyzer never executes the circuit; to *trust* the benchmark
generators (is this netlist really a 32-bit adder?) the test suite needs a
functional reference.  :class:`SwitchSim` is a three-valued (0/1/X)
switch-level simulator in the esim tradition:

* enhancement devices conduct when their gate is 1, are open at 0, and
  "maybe conduct" at X; depletion devices always conduct;
* a node resolves, in strength order: definite conducting path to gnd
  (ratioed pull-downs always win) -> 0; definite path to an externally
  driven boundary node -> that value (conflicting boundary values -> X);
  definite path to vdd (depletion load or precharge switch) -> 1;
* a node with no conducting path retains its stored value (dynamic charge
  storage -- what makes nMOS latches work), going X only if a "maybe" path
  could disturb it;
* evaluation relaxes stage by stage to a global fixpoint; failure to settle
  is reported as an oscillation error.

Charge *sharing* ratios are not modelled (a stored node disturbed by a
maybe-path goes X rather than computing capacitance ratios) -- the standard
switch-level simplification.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..netlist import DeviceKind, Netlist, Transistor
from ..stages import Stage, StageGraph, decompose

__all__ = ["SwitchSim", "X"]

#: The unknown logic value.
X = "x"

_VALID = (0, 1, X)


class SwitchSim:
    """Three-valued switch-level simulator for one netlist."""

    def __init__(self, netlist: Netlist, graph: StageGraph | None = None):
        self.netlist = netlist
        self.graph = graph or decompose(netlist)
        self._values: dict[str, object] = {
            name: X for name in netlist.nodes
        }
        self._values[netlist.vdd] = 1
        self._values[netlist.gnd] = 0
        self._drive_names = set(netlist.inputs) | set(netlist.clocks)
        for name in self._drive_names:
            self._values[name] = X

    # ------------------------------------------------------------------
    def value(self, node: str) -> object:
        """Current value of a node: 0, 1, or X."""
        try:
            return self._values[node]
        except KeyError:
            raise SimulationError(f"no node {node!r}") from None

    def values(self, nodes: list[str]) -> list[object]:
        """Current values of several nodes."""
        return [self.value(n) for n in nodes]

    def word(self, nodes: list[str]) -> int | None:
        """Interpret nodes as an unsigned little-endian word; None if any X."""
        total = 0
        for bit, name in enumerate(nodes):
            v = self.value(name)
            if v is X:
                return None
            total |= int(v) << bit
        return total

    def set_input(self, name: str, value: object) -> None:
        """Drive one input or clock to 0, 1, or X (no settling)."""
        if name not in self._drive_names:
            raise SimulationError(f"{name!r} is not an input or clock")
        if value not in _VALID:
            raise SimulationError(f"logic value must be 0, 1, or X")
        self._values[name] = value

    def set_inputs(self, assignments: dict[str, object]) -> None:
        """Drive several inputs/clocks (no settling)."""
        for name, value in assignments.items():
            self.set_input(name, value)

    def set_word(self, nodes: list[str], value: int) -> None:
        """Drive a little-endian input word."""
        for bit, name in enumerate(nodes):
            self.set_input(name, (value >> bit) & 1)

    # ------------------------------------------------------------------
    def settle(self, max_sweeps: int | None = None) -> int:
        """Relax all stages to a fixpoint; returns the number of sweeps.

        Raises :class:`SimulationError` if the circuit oscillates.
        """
        if max_sweeps is None:
            max_sweeps = 4 * len(self.graph) + 20
        for sweep in range(1, max_sweeps + 1):
            changed = False
            for stage in self.graph:
                if self._evaluate_stage(stage):
                    changed = True
            if not changed:
                return sweep
        raise SimulationError(
            f"switch-level simulation did not settle in {max_sweeps} sweeps "
            "(oscillating feedback?)"
        )

    def step(self, assignments: dict[str, object]) -> None:
        """Apply inputs and settle (one 'vector' of a functional test)."""
        self.set_inputs(assignments)
        self.settle()

    # ------------------------------------------------------------------
    def _device_state(self, dev: Transistor) -> str:
        """'on', 'off', or 'maybe'."""
        if dev.kind is DeviceKind.DEP:
            return "on"
        gate = self._values[dev.gate]
        if gate == 1:
            return "on"
        if gate == 0:
            return "off"
        return "maybe"

    def _evaluate_stage(self, stage: Stage) -> bool:
        """Re-resolve one stage's internal nodes; True if anything changed."""
        netlist = self.netlist
        devices = [netlist.device(n) for n in stage.device_names]
        if not stage.nodes:
            return False

        # Adjacency with per-edge conduction state.
        adjacency: dict[str, list[tuple[str, str]]] = {}
        for dev in devices:
            state = self._device_state(dev)
            if state == "off":
                continue
            a, b = dev.channel_nodes
            adjacency.setdefault(a, []).append((b, state))
            adjacency.setdefault(b, []).append((a, state))

        sources: list[tuple[str, object]] = []
        if netlist.gnd in adjacency:
            sources.append((netlist.gnd, 0))
        if netlist.vdd in adjacency:
            sources.append((netlist.vdd, 1))
        for boundary in stage.boundary:
            if netlist.is_rail(boundary):
                continue
            sources.append((boundary, self._values[boundary]))

        definite: dict[str, set] = {n: set() for n in stage.nodes}
        maybe: dict[str, set] = {n: set() for n in stage.nodes}
        gnd_definite: set[str] = set()
        gnd_maybe: set[str] = set()
        vdd_definite: set[str] = set()
        vdd_maybe: set[str] = set()

        for origin, label in sources:
            def_reach, may_reach = self._reach(origin, adjacency, stage.nodes)
            if origin == netlist.gnd:
                gnd_definite, gnd_maybe = def_reach, may_reach
            elif origin == netlist.vdd:
                vdd_definite, vdd_maybe = def_reach, may_reach
            else:
                # Rail strength is tracked separately; only boundary-driven
                # values participate in the pass-value label sets.
                for node in def_reach:
                    definite[node].add(label)
                for node in may_reach:
                    maybe[node].add(label)

        changed = False
        for node in stage.nodes:
            new = self._resolve(
                node,
                definite[node],
                maybe[node],
                node in gnd_definite,
                node in gnd_maybe,
                node in vdd_definite,
                node in vdd_maybe,
            )
            if new != self._values[node]:
                self._values[node] = new
                changed = True
        return changed

    def _reach(
        self,
        origin: str,
        adjacency: dict[str, list[tuple[str, str]]],
        internal: frozenset[str],
    ) -> tuple[set[str], set[str]]:
        """Internal nodes reachable from origin: (definite, incl-maybe)."""
        def bfs(allow_maybe: bool) -> set[str]:
            seen = {origin}
            frontier = [origin]
            reached: set[str] = set()
            while frontier:
                node = frontier.pop()
                for neighbor, state in adjacency.get(node, ()):
                    if state == "maybe" and not allow_maybe:
                        continue
                    if neighbor in seen:
                        continue
                    seen.add(neighbor)
                    if neighbor in internal:
                        reached.add(neighbor)
                        frontier.append(neighbor)
                    # Conduction does not continue through boundary nodes:
                    # they are voltage sources.
            return reached

        return bfs(False), bfs(True)

    def _resolve(
        self,
        node: str,
        definite_labels: set,
        maybe_labels: set,
        gnd_def: bool,
        gnd_may: bool,
        vdd_def: bool,
        vdd_may: bool,
    ) -> object:
        # Strength 1: a definite conducting path to gnd always wins
        # (ratioed design rule).
        if gnd_def:
            return 0
        # Strength 2: externally driven boundary values through definite
        # pass paths.
        boundary_def = {v for v in definite_labels if v in (0, 1)}
        if X in definite_labels:
            return X
        if boundary_def == {0, 1}:
            return X  # bus contention
        if boundary_def == {0}:
            # A driven 0 wins against the (weaker) pull-up; only a possible
            # gnd path cannot weaken it further.
            return 0
        if boundary_def == {1}:
            # A driven 1 loses to any *possible* pull-down.
            return X if gnd_may else 1
        # Strength 3: pull-up / precharge to vdd -- but a maybe-conducting
        # pull-down or maybe-driven 0 makes the level unknowable.
        if vdd_def:
            if gnd_may or 0 in maybe_labels or X in maybe_labels:
                return X
            return 1
        # Nothing definite: stored charge, possibly disturbed.
        stored = self._values[node]
        disturbers = set(maybe_labels)
        if gnd_may:
            disturbers.add(0)
        if vdd_may:
            disturbers.add(1)
        if X in disturbers:
            return X
        if any(v != stored for v in disturbers):
            return X
        return stored
