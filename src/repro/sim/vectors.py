"""Test-vector files and the regression runner.

Real 1983 flows kept a deck of test vectors next to every block: apply
inputs, clock the design, compare observed outputs.  This module gives the
package the same infrastructure over the switch-level simulator, with a
small line-oriented file format:

::

    | comment
    set a=1 b=0 cin=1          drive inputs (0/1/x)
    cycle                      one full two-phase cycle (phi1 then phi2)
    cycle 3                    three cycles
    settle                     settle combinational logic (no clocks)
    expect sum=0 cout=1        assert node values
    expect sum0=x              x asserts "unknown here"

Words on ``set``/``expect`` lines are ``name=value`` pairs.  ``run_deck``
executes a parsed deck and returns a :class:`DeckResult` listing every
expectation checked and every failure -- the CLI's ``simulate`` subcommand
is a thin wrapper over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..netlist import Netlist
from .switchsim import SwitchSim, X

__all__ = [
    "VectorCommand",
    "Failure",
    "DeckResult",
    "parse_deck",
    "run_deck",
]


@dataclass(frozen=True)
class VectorCommand:
    """One parsed deck line."""

    line: int
    op: str  # "set" | "cycle" | "settle" | "expect"
    assignments: tuple[tuple[str, object], ...] = ()
    count: int = 1


@dataclass(frozen=True)
class Failure:
    """One failed expectation."""

    line: int
    node: str
    expected: object
    actual: object

    def __str__(self) -> str:
        return (
            f"line {self.line}: {self.node} expected {self.expected}, "
            f"got {self.actual}"
        )


@dataclass
class DeckResult:
    """Outcome of a deck run."""

    commands: int = 0
    expectations: int = 0
    failures: list[Failure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        """PASS/FAIL banner plus one line per failed expectation."""
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"{status}: {self.expectations} expectation(s) over "
            f"{self.commands} command(s), {len(self.failures)} failure(s)"
        ]
        lines.extend(f"  {f}" for f in self.failures)
        return "\n".join(lines)


def _parse_value(token: str, line: int) -> object:
    if token in ("0", "1"):
        return int(token)
    if token.lower() == "x":
        return X
    raise SimulationError(f"line {line}: value must be 0, 1, or x: {token!r}")


def parse_deck(text: str) -> list[VectorCommand]:
    """Parse deck text into commands (see module docstring)."""
    commands: list[VectorCommand] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("|"):
            continue
        op, *rest = line.split()
        if op in ("set", "expect"):
            if not rest:
                raise SimulationError(
                    f"line {lineno}: {op} needs name=value pairs"
                )
            assignments = []
            for token in rest:
                name, eq, value = token.partition("=")
                if not eq or not name:
                    raise SimulationError(
                        f"line {lineno}: malformed pair {token!r}"
                    )
                assignments.append((name, _parse_value(value, lineno)))
            commands.append(
                VectorCommand(lineno, op, tuple(assignments))
            )
        elif op == "cycle":
            count = 1
            if rest:
                try:
                    count = int(rest[0])
                except ValueError:
                    raise SimulationError(
                        f"line {lineno}: cycle count must be an integer"
                    ) from None
                if count < 1:
                    raise SimulationError(
                        f"line {lineno}: cycle count must be >= 1"
                    )
            commands.append(VectorCommand(lineno, "cycle", count=count))
        elif op == "settle":
            commands.append(VectorCommand(lineno, "settle"))
        else:
            raise SimulationError(f"line {lineno}: unknown command {op!r}")
    return commands


def run_deck(
    netlist: Netlist,
    commands: list[VectorCommand],
    *,
    phase1: str = "phi1",
    phase2: str = "phi2",
) -> DeckResult:
    """Execute a deck on the switch-level simulator."""
    sim = SwitchSim(netlist)
    result = DeckResult()
    clocked = bool(netlist.clocks)

    for command in commands:
        result.commands += 1
        if command.op == "set":
            for name, value in command.assignments:
                sim.set_input(name, value)
        elif command.op == "settle":
            sim.settle()
        elif command.op == "cycle":
            if not clocked:
                raise SimulationError(
                    f"line {command.line}: 'cycle' needs a clocked design "
                    "(use 'settle' for combinational logic)"
                )
            for _ in range(command.count):
                sim.step({phase1: 1, phase2: 0})
                sim.step({phase1: 0, phase2: 1})
                sim.step({phase1: 0, phase2: 0})
        else:  # expect
            sim.settle()
            for name, expected in command.assignments:
                result.expectations += 1
                actual = sim.value(name)
                if actual != expected:
                    result.failures.append(
                        Failure(command.line, name, expected, actual)
                    )
    return result
