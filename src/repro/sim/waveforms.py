"""Waveform capture and measurement.

SPICE-lite records every node's voltage at every accepted timestep in a
:class:`Waveform`.  Measurements mirror what a 1983 bench tech would do with
scope cursors: threshold crossings, 50% delays between two signals, and
10-90% transition times.
"""

from __future__ import annotations

import bisect

import numpy as np

from ..errors import SimulationError

__all__ = ["Waveform"]


class Waveform:
    """Sampled node voltages over time."""

    def __init__(self, node_order: list[str]):
        self._index = {name: i for i, name in enumerate(node_order)}
        self._times: list[float] = []
        self._samples: list[np.ndarray] = []

    def append(self, t: float, voltages: np.ndarray) -> None:
        """Record one sample row (times must strictly increase)."""
        if self._times and t <= self._times[-1]:
            raise SimulationError("waveform samples must advance in time")
        self._times.append(t)
        self._samples.append(np.array(voltages, dtype=float, copy=True))

    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        return np.array(self._times)

    @property
    def nodes(self) -> list[str]:
        return list(self._index)

    def __len__(self) -> int:
        return len(self._times)

    def trace(self, node: str) -> np.ndarray:
        """The full voltage trace of one node."""
        try:
            column = self._index[node]
        except KeyError:
            raise SimulationError(f"waveform has no node {node!r}") from None
        return np.array([s[column] for s in self._samples])

    def value_at(self, node: str, t: float) -> float:
        """Linearly interpolated voltage of ``node`` at time ``t``."""
        times = self._times
        if not times:
            raise SimulationError("empty waveform")
        trace = self.trace(node)
        if t <= times[0]:
            return float(trace[0])
        if t >= times[-1]:
            return float(trace[-1])
        i = bisect.bisect_right(times, t)
        t0, t1 = times[i - 1], times[i]
        v0, v1 = trace[i - 1], trace[i]
        return float(v0 + (v1 - v0) * (t - t0) / (t1 - t0))

    # ------------------------------------------------------------------
    def crossings(
        self, node: str, threshold: float, direction: str = "any"
    ) -> list[float]:
        """All times the node crosses ``threshold``.

        ``direction`` is ``"rise"``, ``"fall"``, or ``"any"``.
        """
        if direction not in ("rise", "fall", "any"):
            raise SimulationError(f"unknown direction {direction!r}")
        trace = self.trace(node)
        times = self._times
        found: list[float] = []
        for i in range(1, len(times)):
            v0, v1 = trace[i - 1], trace[i]
            rising = v0 < threshold <= v1
            falling = v0 > threshold >= v1
            if direction == "rise" and not rising:
                continue
            if direction == "fall" and not falling:
                continue
            if not (rising or falling):
                continue
            t0, t1 = times[i - 1], times[i]
            frac = (threshold - v0) / (v1 - v0)
            found.append(t0 + frac * (t1 - t0))
        return found

    def crossing_after(
        self,
        node: str,
        threshold: float,
        direction: str,
        after: float,
    ) -> float | None:
        """First qualifying crossing at or after time ``after``."""
        for t in self.crossings(node, threshold, direction):
            if t >= after:
                return t
        return None

    def delay(
        self,
        from_node: str,
        to_node: str,
        threshold: float,
        *,
        from_direction: str = "any",
        to_direction: str = "any",
        after: float = 0.0,
    ) -> float:
        """50%-style delay: first crossing of ``from_node`` after ``after``
        to the next qualifying crossing of ``to_node``."""
        start = self.crossing_after(from_node, threshold, from_direction, after)
        if start is None:
            raise SimulationError(
                f"{from_node!r} never crosses {threshold} V after {after}"
            )
        end = self.crossing_after(to_node, threshold, to_direction, start)
        if end is None:
            raise SimulationError(
                f"{to_node!r} never crosses {threshold} V after {start}"
            )
        return end - start

    def transition_time(
        self,
        node: str,
        v_low: float,
        v_high: float,
        direction: str,
        after: float = 0.0,
    ) -> float:
        """10-90%-style transition time between two thresholds."""
        if direction == "rise":
            t0 = self.crossing_after(node, v_low, "rise", after)
            t1 = self.crossing_after(node, v_high, "rise", t0 or after)
        elif direction == "fall":
            t0 = self.crossing_after(node, v_high, "fall", after)
            t1 = self.crossing_after(node, v_low, "fall", t0 or after)
        else:
            raise SimulationError(f"unknown direction {direction!r}")
        if t0 is None or t1 is None:
            raise SimulationError(
                f"{node!r} has no complete {direction} transition after {after}"
            )
        return t1 - t0

    def final_value(self, node: str) -> float:
        """Voltage at the last sample."""
        return float(self.trace(node)[-1])
