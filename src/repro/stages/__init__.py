"""Stage decomposition and static node classification.

Public surface:

* :func:`decompose` -- split a netlist into channel-connected stages
* :class:`Stage`, :class:`StageGraph`
* :class:`NodeClass`, :func:`classify_node`, :func:`classify_nodes`
* :class:`StageArchetype`, :func:`archetype_of`, :func:`archetype_census`
"""

from .archetypes import StageArchetype, archetype_census, archetype_of
from .classify import NodeClass, classify_node, classify_nodes
from .decompose import decompose
from .stage import Stage, StageGraph

__all__ = [
    "decompose",
    "Stage",
    "StageGraph",
    "NodeClass",
    "classify_node",
    "classify_nodes",
    "StageArchetype",
    "archetype_of",
    "archetype_census",
]
