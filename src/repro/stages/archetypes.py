"""Stage archetype recognition.

nMOS design practice used a small repertoire of stage shapes; recognizing
them lets the delay calculator pick the right model and makes reports read
the way a designer thinks:

``RESTORING``    one or more depletion-loaded outputs with enhancement
                 pull-down networks to gnd: NAND/NOR/inverter/AOI logic
``PASS``         pure pass-transistor network (no pull-up, no static path
                 to a rail inside the stage): buses, muxes, shifters,
                 latch input switches
``PRECHARGED``   clock-precharged dynamic stage (precharge device to vdd,
                 conditional discharge path): Manchester carry, dynamic PLAs
``SUPERBUFFER``  the two-output driver idiom: an inverting restoring gate
                 whose output and input both drive a second, larger
                 totem-pole output (low-impedance both ways)
``MIXED``        restoring outputs *and* pass devices in one stage (common:
                 a gate output feeding an attached pass switch)
``DEGENERATE``   a boundary-to-boundary device with no internal node
"""

from __future__ import annotations

import enum

from ..netlist import DeviceKind, Netlist, Transistor
from .stage import Stage, StageGraph

__all__ = ["StageArchetype", "archetype_of", "archetype_census"]


class StageArchetype(enum.Enum):
    RESTORING = "restoring"
    PASS = "pass"
    PRECHARGED = "precharged"
    SUPERBUFFER = "superbuffer"
    MIXED = "mixed"
    DEGENERATE = "degenerate"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def archetype_of(netlist: Netlist, stage: Stage) -> StageArchetype:
    """Classify one stage (see module docstring)."""
    if not stage.nodes:
        return StageArchetype.DEGENERATE

    devices = [netlist.device(n) for n in stage.device_names]

    followers = [
        d
        for d in devices
        if d.kind is DeviceKind.DEP
        and not d.is_load
        and netlist.vdd in d.channel_nodes
    ]
    pulled_up = {n for n in stage.nodes if netlist.has_pullup(n)}
    pulled_up |= {
        d.other_channel(netlist.vdd) for d in followers
    } & stage.nodes
    precharged = {
        n
        for n in stage.nodes
        if any(
            d.kind is DeviceKind.ENH
            and d.gate in netlist.clocks
            and d.other_channel(n) == netlist.vdd
            for d in netlist.channel_devices(n)
        )
    }
    pass_devices = [
        d
        for d in devices
        if _is_pass_like(netlist, stage, d, pulled_up)
    ]
    touches_gnd = netlist.gnd in stage.boundary

    if precharged and not pulled_up:
        return StageArchetype.PRECHARGED

    if pulled_up:
        if followers:
            return StageArchetype.SUPERBUFFER
        if pass_devices:
            return StageArchetype.MIXED
        return StageArchetype.RESTORING

    if not touches_gnd:
        return StageArchetype.PASS

    # No pull-up but a gnd path: a bare pull-down network (e.g. an
    # open-drain driver onto a shared precharged node in another stage's
    # locality) -- electrically it behaves like pass/dynamic circuitry.
    return StageArchetype.MIXED


def _is_pass_like(
    netlist: Netlist,
    stage: Stage,
    dev: Transistor,
    pulled_up: set[str],
) -> bool:
    """True for devices routing signal rather than pulling a gate output.

    A series device *inside* a pull-down chain (NAND interior) has only
    anonymous internal terminals; a pass switch carries signal to a node
    the outside world sees -- a non-pulled-up stage output or a non-rail
    boundary node.
    """
    if dev.kind is not DeviceKind.ENH:
        return False
    if netlist.is_rail(dev.source) or netlist.is_rail(dev.drain):
        return False
    if dev.gate in netlist.clocks:
        return False  # clocked switches are counted by the latch analysis
    for terminal in dev.channel_nodes:
        if terminal in pulled_up:
            continue
        if terminal in stage.outputs:
            return True
        if terminal in stage.boundary and not netlist.is_rail(terminal):
            return True
    return False


def archetype_census(netlist: Netlist, graph: StageGraph) -> dict[StageArchetype, int]:
    """Count stages per archetype -- a one-line design fingerprint."""
    census: dict[StageArchetype, int] = {a: 0 for a in StageArchetype}
    for stage in graph:
        census[archetype_of(netlist, stage)] += 1
    return census
