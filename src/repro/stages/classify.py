"""Static node classification.

TV classifies every node of the netlist before timing analysis, because the
delay model and the clocking rules depend on what a node *is*: a restoring
gate output behaves differently from a precharged bus or a dynamic storage
node.  Classification is purely structural (value-independent), matching the
static character of the whole analysis.

Classes, in decision order:

``RAIL``        vdd or gnd
``INPUT``       declared primary input
``CLOCK``       declared clock node
``GATE_OUTPUT`` node with a depletion pull-up: output of restoring logic
``PRECHARGED``  node pulled to vdd through a clock-gated enhancement device
                (dynamic/precharged logic, e.g. Manchester carry, buses)
``STORAGE``     node whose every channel connection is a clock-gated pass
                device: a dynamic latch node that holds charge while its
                clocks are low
``PASS``        other internal node of a pass-transistor network
``GATE_ONLY``   node that only gates devices (no channel connection);
                normally a boundary or an extraction artifact
``ISOLATED``    node connected to nothing
"""

from __future__ import annotations

import enum

from ..netlist import DeviceKind, Netlist

__all__ = ["NodeClass", "classify_node", "classify_nodes"]


class NodeClass(enum.Enum):
    RAIL = "rail"
    INPUT = "input"
    CLOCK = "clock"
    GATE_OUTPUT = "gate-output"
    PRECHARGED = "precharged"
    STORAGE = "storage"
    PASS = "pass"
    GATE_ONLY = "gate-only"
    ISOLATED = "isolated"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify_node(netlist: Netlist, node_name: str) -> NodeClass:
    """Classify one node (see module docstring for the decision order)."""
    if netlist.is_rail(node_name):
        return NodeClass.RAIL
    if node_name in netlist.inputs:
        return NodeClass.INPUT
    if node_name in netlist.clocks:
        return NodeClass.CLOCK

    channel = netlist.channel_devices(node_name)
    if not channel:
        if netlist.gate_loads(node_name):
            return NodeClass.GATE_ONLY
        return NodeClass.ISOLATED

    # A tied-gate depletion load, or a gated depletion follower from vdd
    # (superbuffer output stage), both mark a restoring output.
    if netlist.has_pullup(node_name) or any(
        dev.kind is DeviceKind.DEP and dev.other_channel(node_name) == netlist.vdd
        for dev in channel
    ):
        return NodeClass.GATE_OUTPUT

    if _is_precharged(netlist, node_name):
        return NodeClass.PRECHARGED

    if _is_storage(netlist, node_name):
        return NodeClass.STORAGE

    return NodeClass.PASS


def classify_nodes(netlist: Netlist) -> dict[str, NodeClass]:
    """Classify every node of the netlist."""
    return {name: classify_node(netlist, name) for name in netlist.nodes}


def _is_precharged(netlist: Netlist, node_name: str) -> bool:
    """True if a clock-gated enhancement device pulls the node to vdd."""
    for dev in netlist.channel_devices(node_name):
        if (
            dev.kind is DeviceKind.ENH
            and dev.gate in netlist.clocks
            and dev.other_channel(node_name) == netlist.vdd
        ):
            return True
    return False


def _is_storage(netlist: Netlist, node_name: str) -> bool:
    """True if every channel connection is a clock-gated pass device.

    Such a node is isolated from all drivers whenever its clocks are low, so
    it stores state dynamically -- the nMOS "pass transistor + inverter"
    latch idiom.  The node must also actually feed something (gate a device
    or be a declared output) to count as storage rather than debris.
    """
    channel = netlist.channel_devices(node_name)
    for dev in channel:
        if dev.kind is not DeviceKind.ENH or dev.gate not in netlist.clocks:
            return False
    feeds_something = bool(netlist.gate_loads(node_name)) or (
        node_name in netlist.outputs
    )
    return feeds_something
