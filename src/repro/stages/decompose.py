"""Channel-connected component (stage) decomposition.

The decomposition walks the netlist's channel graph -- nodes joined by
transistor source/drain pairs -- with every *boundary* node (rail, primary
input, clock) acting as a cut point.  Each connected component of internal
nodes, together with all devices touching it, forms one
:class:`~repro.stages.stage.Stage`.

Devices whose channel runs directly between two boundary nodes (e.g. a pass
transistor bridging two primary inputs) belong to no internal component; each
such device becomes its own degenerate stage so no device is lost.

The algorithm is a single union-find pass over the devices followed by one
gathering pass, O(devices * alpha); this linearity is what makes whole-chip
static analysis cheap (paper claim #5).
"""

from __future__ import annotations

from ..netlist import Netlist, Transistor
from .stage import Stage, StageGraph

__all__ = ["decompose"]


class _UnionFind:
    """Minimal union-find over string keys."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, key: str) -> str:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self.find(parent)
        self._parent[key] = root
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def decompose(netlist: Netlist) -> StageGraph:
    """Decompose a netlist into its stage graph."""
    uf = _UnionFind()
    degenerate: list[Transistor] = []
    # Boundary membership is checked several times per device; one hoisted
    # set turns each check into a single hash probe.
    boundary_nodes = {netlist.vdd, netlist.gnd}
    boundary_nodes.update(netlist.inputs)
    boundary_nodes.update(netlist.clocks)

    for dev in netlist.devices.values():
        s_internal = dev.source not in boundary_nodes
        d_internal = dev.drain not in boundary_nodes
        if s_internal and d_internal:
            uf.union(dev.source, dev.drain)
        elif s_internal:
            uf.find(dev.source)
        elif d_internal:
            uf.find(dev.drain)
        else:
            degenerate.append(dev)

    # Gather members per component root.
    component_nodes: dict[str, set[str]] = {}
    for name in netlist.nodes:
        if name in boundary_nodes:
            continue
        if not netlist.iter_channel_devices(name):
            continue  # gate-only or floating nodes belong to no stage
        root = uf.find(name)
        component_nodes.setdefault(root, set()).add(name)

    component_devices: dict[str, list[Transistor]] = {r: [] for r in component_nodes}
    for dev in netlist.devices.values():
        for terminal in dev.channel_nodes:
            if terminal not in boundary_nodes:
                component_devices[uf.find(terminal)].append(dev)
                break  # each device joins exactly one component

    # Deterministic ordering: by smallest node name in the component.
    ordered_roots = sorted(component_nodes, key=lambda r: min(component_nodes[r]))

    stages: list[Stage] = []
    for root in ordered_roots:
        nodes = component_nodes[root]
        devices = component_devices[root]
        stages.append(
            _build_stage(netlist, len(stages), nodes, devices, boundary_nodes)
        )
    for dev in degenerate:
        stages.append(
            _build_stage(netlist, len(stages), set(), [dev], boundary_nodes)
        )

    return StageGraph(netlist, stages)


def _build_stage(
    netlist: Netlist,
    index: int,
    nodes: set[str],
    devices: list[Transistor],
    boundary_nodes: set[str],
) -> Stage:
    gate_inputs: set[str] = set()
    boundary: set[str] = set()
    for dev in devices:
        gate_inputs.add(dev.gate)
        for terminal in dev.channel_nodes:
            if terminal in boundary_nodes:
                boundary.add(terminal)

    member_names = {d.name for d in devices}
    declared_outputs = netlist.outputs
    outputs: set[str] = set()
    for node in nodes:
        if node in declared_outputs:
            outputs.add(node)
            continue
        # Externally visible iff the node gates a device of another stage.
        # (Gating a member device -- a depletion load's tied gate, or a
        # feedback/bootstrap structure -- keeps the node internal.)
        for load in netlist.iter_gate_loads(node):
            if load.name not in member_names:
                outputs.add(node)
                break

    devices_sorted = sorted(devices, key=lambda d: d.name)
    return Stage(
        index=index,
        nodes=frozenset(nodes),
        device_names=tuple(d.name for d in devices_sorted),
        gate_inputs=frozenset(gate_inputs),
        boundary=frozenset(boundary),
        outputs=frozenset(outputs),
    )
