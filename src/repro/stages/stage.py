"""Stage data model.

TV analyzes circuits in units of *stages*: maximal groups of transistors
connected through their sources and drains, with the externally driven nodes
(power rails, primary inputs, clocks) acting as cut points.  A stage is the
natural electrical unit of an nMOS circuit -- a restoring gate with its
pull-up and pull-down network, a pass-transistor network, a precharged bus --
because charge flows freely inside a stage and only crosses stage boundaries
through transistor gates or boundary nodes.

:class:`Stage` is a frozen record produced by
:func:`repro.stages.decompose.decompose`; :class:`StageGraph` holds the full
decomposition plus the node-to-stage index and inter-stage connectivity used
by the timing-graph builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import StageError
from ..netlist import Netlist, Transistor

__all__ = ["Stage", "StageGraph"]


@dataclass(frozen=True)
class Stage:
    """One channel-connected transistor group.

    Attributes
    ----------
    index:
        Position in the owning :class:`StageGraph` (stable, 0-based).
    nodes:
        Internal channel nodes of the stage (never rails/inputs/clocks).
    device_names:
        Names of the member devices: every device with at least one channel
        terminal among ``nodes`` (or, for degenerate boundary-to-boundary
        devices, the device itself).
    gate_inputs:
        Nodes gating member devices.  May include internal nodes (feedback
        structures) and boundary nodes (clocks gating pass devices).
    boundary:
        Externally driven channel terminals touching the stage: rails,
        primary inputs, clocks.
    outputs:
        Internal nodes observable outside the stage: they gate devices of
        *other* stages or are declared primary outputs.
    """

    index: int
    nodes: frozenset[str]
    device_names: tuple[str, ...]
    gate_inputs: frozenset[str]
    boundary: frozenset[str]
    outputs: frozenset[str]

    @property
    def external_gate_inputs(self) -> frozenset[str]:
        """Gate inputs coming from outside the stage."""
        return self.gate_inputs - self.nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Stage(#{self.index}, {len(self.nodes)} nodes, "
            f"{len(self.device_names)} devices, outputs={sorted(self.outputs)})"
        )


class StageGraph:
    """The complete stage decomposition of a netlist.

    Provides the node-to-stage index and the derived stage-level
    connectivity: stage A *feeds* stage B when an output of A is an external
    gate input of B.  (Channel connections never cross stages except through
    boundary nodes, by construction.)
    """

    def __init__(self, netlist: Netlist, stages: list[Stage]):
        self.netlist = netlist
        self.stages: tuple[Stage, ...] = tuple(stages)
        self._stage_of: dict[str, int] = {}
        for stage in self.stages:
            for node in stage.nodes:
                if node in self._stage_of:
                    raise StageError(
                        f"node {node!r} assigned to stages "
                        f"{self._stage_of[node]} and {stage.index}"
                    )
                self._stage_of[node] = stage.index

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages)

    def __getitem__(self, index: int) -> Stage:
        return self.stages[index]

    def stage_of(self, node_name: str) -> Stage | None:
        """The stage owning a node, or None for boundary/unconnected nodes."""
        idx = self._stage_of.get(node_name)
        return None if idx is None else self.stages[idx]

    def devices_of(self, stage: Stage) -> list[Transistor]:
        """Resolve a stage's member devices against the netlist."""
        return [self.netlist.device(name) for name in stage.device_names]

    def successors(self, stage: Stage) -> list[Stage]:
        """Stages gated by an output of ``stage``."""
        seen: set[int] = set()
        result: list[Stage] = []
        for out in stage.outputs:
            for dev in self.netlist.gate_loads(out):
                target = self.stage_of(dev.source) or self.stage_of(dev.drain)
                if target is None or target.index == stage.index:
                    continue
                if target.index not in seen:
                    seen.add(target.index)
                    result.append(target)
        return result

    def stages_gated_by(self, node_name: str) -> list[Stage]:
        """Stages having ``node_name`` as an *external* gate input.

        The stage owning the node itself is excluded: a depletion load's
        tied gate (or internal feedback) does not make a node an input of
        its own stage.
        """
        own = self.stage_of(node_name)
        seen: set[int] = set()
        result: list[Stage] = []
        for dev in self.netlist.gate_loads(node_name):
            for terminal in dev.channel_nodes:
                target = self.stage_of(terminal)
                if target is None or (own is not None and target is own):
                    continue
                if target.index not in seen:
                    seen.add(target.index)
                    result.append(target)
        return result

    def stages_at_boundary(self, node_name: str) -> list[Stage]:
        """Stages whose channel network touches boundary node ``node_name``."""
        return [s for s in self.stages if node_name in s.boundary]

    def summary(self) -> dict[str, float]:
        """Aggregate statistics used in reports."""
        sizes = [len(s.device_names) for s in self.stages] or [0]
        return {
            "stages": len(self.stages),
            "devices": sum(sizes),
            "max_stage_devices": max(sizes),
            "mean_stage_devices": sum(sizes) / max(1, len(self.stages)),
        }
