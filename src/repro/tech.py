"""Technology model: nMOS process parameters and derived electrical values.

The TV timing analyzer (Jouppi, DAC 1983) was built for the Stanford MIPS
project, fabricated in a circa-1983 nMOS process (4 um drawn features,
lambda = 2 um in Mead-Conway terms, Vdd = 5 V, depletion-load ratioed logic).
:class:`Technology` captures the process parameters needed by both the static
RC delay models (effective resistances, node capacitances) and the SPICE-lite
device equations (threshold voltages, transconductance).

Units are strict SI throughout the package: seconds, ohms, farads, volts,
amps.  Device geometry (``w``, ``l``) is in metres.  Convenience constants
``UM``, ``FF``, ``NS``, ``PF``, ``KOHM`` are provided for readable literals.

Effective-resistance model
--------------------------
A conducting MOS transistor is modelled, for delay estimation, as a linear
resistor whose value scales with the number of "squares" of channel::

    R_eff = r_sq * (l / w)

where ``r_sq`` depends on the device kind and on the transition being driven
(an enhancement pull-down discharging a node sees a different average
operating point than a pass transistor transmitting a rising signal).  This
is the classic Mead-Conway / TV abstraction; the values below are calibrated
so that the Elmore estimates land within ~10-20% of the package's SPICE-lite
transient simulations (see ``benchmarks/bench_t1_stage_accuracy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

__all__ = [
    "Technology",
    "NMOS4",
    "UM",
    "NS",
    "PS",
    "FF",
    "PF",
    "KOHM",
]

# Readable unit constants (all values in the package are plain SI floats).
UM = 1e-6  #: one micrometre, in metres
NS = 1e-9  #: one nanosecond, in seconds
PS = 1e-12  #: one picosecond, in seconds
FF = 1e-15  #: one femtofarad, in farads
PF = 1e-12  #: one picofarad, in farads
KOHM = 1e3  #: one kiloohm, in ohms


@dataclass(frozen=True)
class Technology:
    """Parameters of an nMOS depletion-load process.

    The default values (see :data:`NMOS4`) model a 4 um drawn process:
    lambda = 2 um, Vdd = 5 V, minimum enhancement device 4 lambda wide by
    2 lambda long, standard 4:1 pull-up/pull-down ratio for restoring logic.
    """

    name: str = "nmos-4um"

    # Supply and device thresholds (volts).
    vdd: float = 5.0
    vt_enh: float = 1.0  #: enhancement threshold
    vt_dep: float = -3.0  #: depletion threshold (negative: always on)

    # Level-1 (Shichman-Hodges) transconductance parameter, A/V^2,
    # i.e. mu_n * Cox.  Used only by SPICE-lite.
    kprime: float = 25e-6
    channel_lambda: float = 0.02  #: channel-length modulation, 1/V

    # Geometry.
    lam: float = 2.0 * UM  #: Mead-Conway lambda (half the drawn feature size)

    # Effective resistances, ohms per square of channel (R = r_sq * l/w).
    r_sq_enh_pulldown: float = 11.0 * KOHM  #: enh device discharging a node
    r_sq_enh_pass: float = 15.0 * KOHM  #: enh pass device, mid-rail signal
    r_sq_dep_pullup: float = 11.0 * KOHM  #: depletion load charging a node

    # A pass transistor pulling its output *high* saturates as the output
    # approaches Vdd - Vt; its effective resistance for a rising transfer is
    # derated by this factor on top of ``r_sq_enh_pass``.
    pass_rise_derate: float = 1.6

    # Capacitances.
    c_gate_area: float = 0.45e-3  #: gate oxide capacitance, F/m^2 (0.45 fF/um^2)
    c_diff_area: float = 0.12e-3  #: source/drain diffusion capacitance, F/m^2
    c_diff_len: float = 4.0 * UM  #: assumed diffusion extent used for C_diff

    # Delay-model calibration: an Elmore RC product is multiplied by these
    # factors to yield a 50%-crossing delay.  0.69 = ln 2 is the ideal
    # single-pole value; the rise factor is larger because a depletion load
    # is a degrading current source near Vdd, not a linear resistor.
    k_fall: float = 0.69
    k_rise: float = 1.0

    # Logic thresholds used by the waveform measurement and switch-level
    # simulator (volts).
    v_low: float = 1.0
    v_high: float = 3.0
    v_meas: float = 2.2  #: delay-measurement crossing (approx. inverter Vth)

    # Minimum node capacitance floor, farads.  Every physical node has some
    # parasitic; this also keeps SPICE-lite's nodal matrix nonsingular.
    c_node_floor: float = 2.0 * FF

    def corner(self, which: str) -> "Technology":
        """A process corner of this technology.

        1983 signoff ran three corners: ``"slow"`` (weak devices, fat
        capacitance -- the shipping limit), ``"typ"`` (this technology,
        unchanged), and ``"fast"`` (strong devices, lean capacitance --
        the race-hazard limit).  Min-delay checks belong on the fast
        corner; cycle-time signoff on the slow one.
        """
        if which == "typ":
            return self
        if which == "slow":
            r_scale, c_scale, name = 1.35, 1.15, f"{self.name}-slow"
        elif which == "fast":
            r_scale, c_scale, name = 0.75, 0.9, f"{self.name}-fast"
        else:
            raise ValueError(
                f"unknown corner {which!r}: choose slow, typ, or fast"
            )
        return replace(
            self,
            name=name,
            r_sq_enh_pulldown=self.r_sq_enh_pulldown * r_scale,
            r_sq_enh_pass=self.r_sq_enh_pass * r_scale,
            r_sq_dep_pullup=self.r_sq_dep_pullup * r_scale,
            kprime=self.kprime / r_scale,
            c_gate_area=self.c_gate_area * c_scale,
            c_diff_area=self.c_diff_area * c_scale,
        )

    @classmethod
    def corners(cls, base: "Technology | None" = None) -> dict:
        """The classic three-corner set, ``{"slow": ..., "typ": ..., "fast": ...}``."""
        base = base or NMOS4
        return {which: base.corner(which) for which in ("slow", "typ", "fast")}

    @classmethod
    def from_dict(cls, data: dict) -> "Technology":
        """Build a technology from a plain mapping (e.g. parsed JSON).

        Unknown keys are rejected loudly -- a typo in a process file must
        not silently fall back to the default value.
        """
        valid = {f.name for f in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise ValueError(
                f"unknown technology parameter(s): {sorted(unknown)}; "
                f"valid keys: {sorted(valid)}"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, path) -> "Technology":
        """Load a technology from a JSON process file."""
        import json
        import pathlib

        text = pathlib.Path(path).read_text()
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"{path}: technology file must hold an object")
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        """The full parameter set as a plain mapping (JSON-serializable)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def scaled(self, factor: float, name: str | None = None) -> "Technology":
        """Return a constant-field-scaled copy of this technology.

        ``factor`` < 1 shrinks the process: lambda scales by ``factor``,
        capacitances per area are unchanged (to first order the oxide thins
        with the process, raising C/area, while junctions shrink; we keep the
        per-area figures and let geometry carry the scaling), and effective
        resistances per square are unchanged (R_sq is geometry-independent).
        Used by the scaling sweeps in the benchmark harness.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            lam=self.lam * factor,
            c_diff_len=self.c_diff_len * factor,
        )

    # ------------------------------------------------------------------
    # Derived per-device electrical values.
    # ------------------------------------------------------------------
    def min_width(self) -> float:
        """Minimum drawn transistor width (4 lambda), metres."""
        return 4.0 * self.lam

    def min_length(self) -> float:
        """Minimum drawn transistor length (2 lambda), metres."""
        return 2.0 * self.lam

    def r_eff(self, kind: str, w: float, l: float, *, pass_mode: bool = False) -> float:
        """Effective resistance of a conducting device, ohms.

        ``kind`` is ``"enh"`` or ``"dep"``; ``pass_mode`` selects the pass
        transistor operating point for enhancement devices (a pass device
        transmitting a high level saturates near Vdd - Vt and is effectively
        more resistive than a grounded-source pull-down).
        """
        if w <= 0 or l <= 0:
            raise ValueError(f"device geometry must be positive (w={w}, l={l})")
        squares = l / w
        if kind == "enh":
            r_sq = self.r_sq_enh_pass if pass_mode else self.r_sq_enh_pulldown
        elif kind == "dep":
            r_sq = self.r_sq_dep_pullup
        else:
            raise ValueError(f"unknown device kind {kind!r}")
        return r_sq * squares

    def c_gate(self, w: float, l: float) -> float:
        """Gate capacitance of a device, farads."""
        return self.c_gate_area * w * l

    def c_diff(self, w: float) -> float:
        """Source/drain diffusion capacitance of a device terminal, farads."""
        return self.c_diff_area * w * self.c_diff_len

    def beta(self, w: float, l: float) -> float:
        """Level-1 device transconductance ``kprime * w / l``, A/V^2."""
        return self.kprime * w / l


#: The package-default technology: a 4 um nMOS depletion-load process of the
#: kind the MIPS chip was fabricated in.
NMOS4 = Technology()
