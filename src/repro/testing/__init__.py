"""Test-support utilities for the repro package.

This subpackage is imported only by tests and tooling -- nothing in the
production pipeline depends on it.  Its one module,
:mod:`repro.testing.faults`, provides the deterministic fault-injection
harness (crash / hang / corrupt-return plans targeted at the
:mod:`repro.robust` fault points) and the seeded netlist/``.sim``
mutation fuzzer used to prove that every failure path yields a typed
:class:`~repro.errors.ReproError` or a clean degraded result.
"""

from .faults import FaultPlan, NetlistFuzzer, install_plan_from_env

__all__ = ["FaultPlan", "NetlistFuzzer", "install_plan_from_env"]
