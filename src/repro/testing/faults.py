"""Deterministic fault injection and seeded netlist fuzzing.

Two tools for proving the pipeline degrades instead of dying:

* :class:`FaultPlan` -- a scripted set of faults (raise, hard process
  kill, SIGKILL, delay, corrupt or tear a payload) bound to the named
  injection sites of :mod:`repro.robust` (``"worker-task"``,
  ``"worker-result"``, ``"stage-arcs"``, ``"erc"``, and the durability
  sites ``"journal-append"`` / ``"journal-fsync"`` /
  ``"snapshot-write"`` / ``"journal-truncate"``).  Install it, run an
  analysis, and the plan fires exactly the faults you scripted --
  deterministically, with per-process counters (fork-based pool workers
  inherit the plan by memory copy, so a ``times=1`` crash fires once in
  *each* worker that reaches the site).  ``skip=N`` arms a fault only
  after the site has been passed N times, which is how the chaos suite
  kills a daemon at exactly the Nth journal append.
  :func:`install_plan_from_env` builds and installs a plan from the
  ``REPRO_FAULT_PLAN`` environment variable (a JSON list of specs), so
  subprocess tests can script faults inside a real ``repro serve``
  daemon and SIGKILL it mid-append or mid-compaction.
* :class:`NetlistFuzzer` -- a seeded mutation fuzzer: structural netlist
  mutations (drop/rewire/short devices, float gates, flip kinds) built
  through the ordinary :class:`~repro.netlist.Netlist` API, plus textual
  ``.sim`` corruption for parser fuzzing.  Same seed, same mutations.

Neither tool is imported by production code; the production hook is the
single ``None`` check inside :func:`repro.robust.fault_point`.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from contextlib import contextmanager

from .. import robust
from ..netlist import Netlist

__all__ = [
    "FaultPlan",
    "NetlistFuzzer",
    "CORRUPT_SENTINEL",
    "install_plan_from_env",
]

#: Environment variable :func:`install_plan_from_env` reads.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Replacement payload used by :meth:`FaultPlan.corrupt`.  Structurally
#: invalid for every instrumented site, so supervision must detect and
#: discard it.
CORRUPT_SENTINEL = "<corrupted-by-fault-plan>"


class _Spec:
    """One scripted fault: a mode, its parameters, and a firing budget."""

    def __init__(self, mode: str, times: int | None, skip: int = 0, **params):
        self.mode = mode
        self.times = times  # None = unlimited
        self.skip = skip    # site passes to let through before arming
        self.params = params

    def take(self) -> bool:
        """Consume one firing; False once the budget is exhausted."""
        if self.skip > 0:
            self.skip -= 1
            return False
        if self.times is None:
            return True
        if self.times <= 0:
            return False
        self.times -= 1
        return True


class FaultPlan:
    """A deterministic, scripted set of faults.

    Build a plan by chaining the scripting methods, then activate it with
    :meth:`installed` (preferred, a context manager) or
    :meth:`install`/:meth:`uninstall`::

        plan = FaultPlan().crash("worker-task", times=1)
        with plan.installed():
            result = analyzer.analyze()

    Each scripted fault fires at most ``times`` times *per process*
    (``times=None`` means every time).  ``fired`` records the
    ``(site, mode)`` pairs that fired in the current process, in order --
    faults fired inside fork-pool workers mutate the worker's copy and
    are not visible here.
    """

    def __init__(self):
        self._specs: dict[str, list[_Spec]] = {}
        #: ``(site, mode)`` pairs fired in this process, in order.
        self.fired: list[tuple[str, str]] = []

    # -- scripting -----------------------------------------------------
    def _add(self, site: str, spec: _Spec) -> "FaultPlan":
        self._specs.setdefault(site, []).append(spec)
        return self

    def crash(
        self,
        site: str,
        *,
        times: int | None = 1,
        skip: int = 0,
        exc_type: type = RuntimeError,
        message: str = "injected fault",
    ) -> "FaultPlan":
        """Raise ``exc_type(message)`` when ``site`` is reached."""
        return self._add(
            site,
            _Spec("crash", times, skip, exc_type=exc_type, message=message),
        )

    def hard_crash(
        self,
        site: str,
        *,
        times: int | None = 1,
        skip: int = 0,
        exit_code: int = 13,
    ) -> "FaultPlan":
        """Kill the whole process (``os._exit``) when ``site`` is reached.

        In a fork-pool worker this simulates a segfaulting/OOM-killed
        worker: the parent sees a ``BrokenProcessPool``.  Do not script
        this on a parent-side site unless you mean it.
        """
        return self._add(
            site, _Spec("hard-crash", times, skip, exit_code=exit_code)
        )

    def kill9(
        self, site: str, *, times: int | None = 1, skip: int = 0
    ) -> "FaultPlan":
        """SIGKILL the whole process when ``site`` is reached.

        The crash-recovery chaos tests script this inside a real daemon
        subprocess: no atexit handlers, no flushes, no cleanup -- the
        closest a test can get to a power cut.
        """
        return self._add(site, _Spec("kill9", times, skip))

    def delay(
        self,
        site: str,
        seconds: float,
        *,
        times: int | None = 1,
        skip: int = 0,
    ) -> "FaultPlan":
        """Sleep ``seconds`` when ``site`` is reached (a simulated hang)."""
        return self._add(site, _Spec("delay", times, skip, seconds=seconds))

    def corrupt(
        self,
        site: str,
        *,
        times: int | None = 1,
        skip: int = 0,
        replacement=CORRUPT_SENTINEL,
    ) -> "FaultPlan":
        """Substitute the site's payload with ``replacement``.

        Meaningful only on value-carrying sites (``"worker-result"``);
        the default sentinel is structurally invalid, so the parent-side
        corrupt-return detection must discard it.
        """
        return self._add(
            site, _Spec("corrupt", times, skip, replacement=replacement)
        )

    def torn(
        self,
        site: str,
        *,
        times: int | None = 1,
        skip: int = 0,
        fraction: float = 0.5,
    ) -> "FaultPlan":
        """Truncate a sliceable payload to its leading ``fraction``.

        Meaningful on ``"journal-append"`` (the framed record bytes):
        paired with :meth:`kill9` on ``"journal-fsync"`` it simulates a
        crash mid-write -- a torn record lands on disk and the process
        dies before acknowledging anything.
        """
        return self._add(site, _Spec("torn", times, skip, fraction=fraction))

    # -- activation ----------------------------------------------------
    def install(self) -> None:
        """Register this plan as the process-global fault handler."""
        robust.install_fault_handler(self._handle)

    def uninstall(self) -> None:
        """Clear the process-global fault handler."""
        robust.clear_fault_handler()

    @contextmanager
    def installed(self):
        """Context manager: install on entry, always clear on exit."""
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    # -- the handler ---------------------------------------------------
    def _handle(self, site: str, payload):
        """Fault-handler callback invoked by :func:`repro.robust.fault_point`."""
        for spec in self._specs.get(site, ()):
            if not spec.take():
                continue
            self.fired.append((site, spec.mode))
            if spec.mode == "crash":
                raise spec.params["exc_type"](spec.params["message"])
            if spec.mode == "hard-crash":
                os._exit(spec.params["exit_code"])
            if spec.mode == "kill9":
                os.kill(os.getpid(), signal.SIGKILL)
            if spec.mode == "delay":
                time.sleep(spec.params["seconds"])
                return None
            if spec.mode == "corrupt":
                return spec.params["replacement"]
            if spec.mode == "torn":
                if payload is None:
                    return None
                keep = max(1, int(len(payload) * spec.params["fraction"]))
                return payload[:keep]
        return None


def install_plan_from_env(var: str = FAULT_PLAN_ENV) -> FaultPlan | None:
    """Build and install a :class:`FaultPlan` scripted in the environment.

    ``var`` holds a JSON list of fault specs, each
    ``{"site": ..., "mode": ...}`` plus the mode's keyword parameters
    (``times``, ``skip``, ``seconds``, ``exit_code``, ``fraction``,
    ``message``).  Returns the installed plan, or ``None`` when the
    variable is unset/empty.  This is how subprocess chaos tests arm
    faults inside a real ``repro serve`` daemon::

        REPRO_FAULT_PLAN='[{"site": "journal-fsync", "mode": "kill9",
                            "skip": 2}]' repro serve --journal-dir d ...
    """
    spec_text = os.environ.get(var)
    if not spec_text:
        return None
    plan = FaultPlan()
    for spec in json.loads(spec_text):
        mode = spec["mode"]
        site = spec["site"]
        times = spec.get("times", 1)
        skip = spec.get("skip", 0)
        if mode == "crash":
            plan.crash(site, times=times, skip=skip,
                       message=spec.get("message", "injected fault"))
        elif mode == "hard-crash":
            plan.hard_crash(site, times=times, skip=skip,
                            exit_code=spec.get("exit_code", 13))
        elif mode == "kill9":
            plan.kill9(site, times=times, skip=skip)
        elif mode == "delay":
            plan.delay(site, spec["seconds"], times=times, skip=skip)
        elif mode == "corrupt":
            plan.corrupt(site, times=times, skip=skip,
                         replacement=spec.get("replacement", CORRUPT_SENTINEL))
        elif mode == "torn":
            plan.torn(site, times=times, skip=skip,
                      fraction=spec.get("fraction", 0.5))
        else:
            raise ValueError(f"unknown fault mode {mode!r} in {var}")
    plan.install()
    return plan


# ----------------------------------------------------------------------
# Seeded netlist mutation fuzzing.
# ----------------------------------------------------------------------
class NetlistFuzzer:
    """Seeded structural netlist mutator and ``.sim`` text corruptor.

    ``NetlistFuzzer(seed)`` is fully deterministic: the same seed applied
    to the same input produces the same mutant.  Mutants are rebuilt
    through the ordinary :class:`~repro.netlist.Netlist` API, so they are
    always *constructible* circuits -- broken electrically (floating
    gates, shorted nodes, missing devices), which is exactly the class of
    damage layout extraction produces, and which analysis must survive
    with a typed error or a degraded result.
    """

    #: Structural mutation kinds :meth:`mutate` draws from.
    MUTATIONS = (
        "drop-device",
        "rewire-terminal",
        "short-nodes",
        "flip-kind",
        "float-gate",
        "drop-input",
    )

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = random.Random(seed)

    # -- structural mutation -------------------------------------------
    def mutate(self, netlist: Netlist, *, mutations: int = 2) -> Netlist:
        """Return a rebuilt copy of ``netlist`` with seeded damage.

        Applies ``mutations`` randomly chosen operations from
        :data:`MUTATIONS`.  The result is a fresh :class:`Netlist` (the
        input is never modified).
        """
        plan = [
            self.rng.choice(self.MUTATIONS) for _ in range(max(1, mutations))
        ]
        dropped: set[str] = set()
        rewires: dict[str, tuple[str, str]] = {}  # device -> (slot, node)
        renames: dict[str, str] = {}  # node -> node (shorts, floats)
        flipped: set[str] = set()
        dropped_inputs: set[str] = set()

        devices = sorted(netlist.devices)
        nodes = sorted(netlist.nodes)
        fresh = 0
        for op in plan:
            if not devices:
                break
            if op == "drop-device":
                dropped.add(self.rng.choice(devices))
            elif op == "rewire-terminal":
                name = self.rng.choice(devices)
                slot = self.rng.choice(("gate", "source", "drain"))
                rewires[name] = (slot, self.rng.choice(nodes))
            elif op == "short-nodes":
                a, b = self.rng.choice(nodes), self.rng.choice(nodes)
                if a != b:
                    renames[a] = b
            elif op == "flip-kind":
                flipped.add(self.rng.choice(devices))
            elif op == "float-gate":
                name = self.rng.choice(devices)
                fresh += 1
                rewires[name] = ("gate", f"__float{fresh}")
            elif op == "drop-input":
                inputs = sorted(netlist.inputs)
                if inputs:
                    dropped_inputs.add(self.rng.choice(inputs))
        return self._rebuild(
            netlist, dropped, rewires, renames, flipped, dropped_inputs
        )

    def _rebuild(
        self, net, dropped, rewires, renames, flipped, dropped_inputs
    ) -> Netlist:
        """Reconstruct ``net`` through the public API with edits applied."""

        def mapped(node: str) -> str:
            seen = {node}
            while node in renames and renames[node] not in seen:
                node = renames[node]
                seen.add(node)
            return node

        out = Netlist(f"{net.name}-mut{self.seed}", tech=net.tech)
        for name in net.nodes:
            target = mapped(name)
            if not out.is_rail(target):
                out.add_node(target, net.node(name).cap)
        for name in sorted(net.devices):
            if name in dropped:
                continue
            dev = net.devices[name]
            terminals = {
                "gate": dev.gate,
                "source": dev.source,
                "drain": dev.drain,
            }
            if name in rewires:
                slot, node = rewires[name]
                terminals[slot] = node
            kind = dev.kind
            if name in flipped:
                kind = "dep" if dev.kind.value == "enh" else "enh"
            source = mapped(terminals["source"])
            drain = mapped(terminals["drain"])
            if source == drain:
                continue  # a self-loop device cannot be constructed
            out.add_transistor(
                kind,
                mapped(terminals["gate"]),
                source,
                drain,
                w=dev.w,
                l=dev.l,
                name=name,
            )
        for node in sorted(net.inputs):
            target = mapped(node)
            if node not in dropped_inputs and not out.is_rail(target):
                out.set_input(target)
        for node in sorted(net.outputs):
            target = mapped(node)
            if not out.is_rail(target):
                out.set_output(target)
        for node, phase in sorted(net.clocks.items()):
            target = mapped(node)
            if not out.is_rail(target) and target not in out.clocks:
                out.set_clock(target, phase)
        return out

    # -- .sim text corruption ------------------------------------------
    #: Textual corruption kinds :meth:`corrupt_sim` draws from.
    TEXT_MUTATIONS = (
        "truncate",
        "delete-line",
        "duplicate-line",
        "garble-token",
        "garble-number",
        "insert-garbage",
    )

    def corrupt_sim(self, text: str, *, mutations: int = 2) -> str:
        """Return a damaged copy of ``.sim`` file text.

        Applies ``mutations`` randomly chosen operations from
        :data:`TEXT_MUTATIONS`: truncation mid-record, deleted or
        duplicated lines, garbled tokens and numbers, injected garbage
        records.  Parsing the result must raise
        :class:`~repro.errors.SimFormatError` (with a line number) or
        succeed -- never an untyped exception.
        """
        for _ in range(max(1, mutations)):
            op = self.rng.choice(self.TEXT_MUTATIONS)
            lines = text.splitlines()
            if op == "truncate" and text:
                text = text[: self.rng.randrange(len(text))]
            elif op == "delete-line" and lines:
                del lines[self.rng.randrange(len(lines))]
                text = "\n".join(lines) + "\n"
            elif op == "duplicate-line" and lines:
                i = self.rng.randrange(len(lines))
                lines.insert(i, lines[i])
                text = "\n".join(lines) + "\n"
            elif op == "garble-token" and lines:
                i = self.rng.randrange(len(lines))
                tokens = lines[i].split()
                if tokens:
                    j = self.rng.randrange(len(tokens))
                    tokens[j] = self.rng.choice(
                        ("@#$", "", "e", "|X", "????", tokens[j] * 7)
                    )
                    lines[i] = " ".join(tokens)
                    text = "\n".join(lines) + "\n"
            elif op == "garble-number" and lines:
                i = self.rng.randrange(len(lines))
                tokens = lines[i].split()
                numeric = [
                    j
                    for j, tok in enumerate(tokens)
                    if any(c.isdigit() for c in tok)
                ]
                if numeric:
                    j = self.rng.choice(numeric)
                    tokens[j] = self.rng.choice(
                        ("nan", "inf", "-inf", "1e", "0x12", "--3", "3..14")
                    )
                    lines[i] = " ".join(tokens)
                    text = "\n".join(lines) + "\n"
            elif op == "insert-garbage":
                i = self.rng.randrange(len(lines) + 1)
                lines.insert(
                    i,
                    self.rng.choice(
                        (
                            "z q r s",
                            "e too few",
                            "d a b c 4 4 extra extra extra",
                            "= loop loop",
                            "C x y",
                            "\x00\x01binary",
                        )
                    ),
                )
                text = "\n".join(lines) + "\n"
        return text
