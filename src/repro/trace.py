"""Lightweight tracing and metrics for the analysis pipeline.

The analyzer's explainability story needs more than the final numbers: it
needs to say *where the time went* and *how much work each phase did*.
This module provides that with two primitives and no dependencies:

* **counters** -- named monotonically increasing integers
  (``trace.incr("arcs", 137)``);
* **phase timers** -- named accumulated wall-clock intervals
  (``with trace.timer("extract"): ...``).

A :class:`Trace` integrates with stdlib :mod:`logging` (logger name
``"repro"``): every finished timer emits a ``DEBUG`` record, so existing
log tooling sees the pipeline without any new configuration.  When no
trace is requested the pipeline uses the shared :data:`NULL_TRACE`
singleton whose methods are no-ops -- instrumentation points cost one
attribute lookup and nothing else, and none sit inside per-arc inner
loops (hot loops stay exactly as fast as before; the perf gate in
:mod:`repro.bench.perf` enforces this).

Typical use::

    from repro.trace import Trace
    trace = Trace()
    result = TimingAnalyzer(net, trace=trace).analyze()
    print(trace.summary())
    trace.snapshot()   # {"counters": {...}, "timers_s": {...}}
"""

from __future__ import annotations

import logging
import time

__all__ = ["Trace", "NullTrace", "NULL_TRACE", "get_logger"]

_LOGGER_NAME = "repro"

#: Sentinel distinguishing "default logger" from an explicit ``None``.
_PACKAGE_LOGGER = object()


def get_logger() -> logging.Logger:
    """The package logger (``"repro"``); never configured by the library.

    The library only ever *emits* records through it -- attaching handlers,
    levels, and formatting is the application's choice, per the stdlib
    logging contract for libraries.
    """
    return logging.getLogger(_LOGGER_NAME)


class _Timer:
    """Context manager accumulating one named interval into a trace."""

    __slots__ = ("_trace", "_name", "_started")

    def __init__(self, trace: "Trace", name: str):
        self._trace = trace
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._started
        trace = self._trace
        trace.timers_s[self._name] = (
            trace.timers_s.get(self._name, 0.0) + elapsed
        )
        trace._log("timer %s: %.6f s", self._name, elapsed)


class Trace:
    """Counter/timer collector threaded through one or more analyses.

    Parameters
    ----------
    logger:
        Where timer completions are logged (``DEBUG``).  Defaults to the
        package logger; pass ``None`` to disable logging entirely while
        still collecting metrics.
    """

    enabled = True

    def __init__(self, *, logger: logging.Logger | None = _PACKAGE_LOGGER):
        self.counters: dict[str, int] = {}
        self.timers_s: dict[str, float] = {}
        self.logger = get_logger() if logger is _PACKAGE_LOGGER else logger

    # -- collection ----------------------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def timer(self, name: str) -> _Timer:
        """Context manager accumulating wall time under ``name``."""
        return _Timer(self, name)

    def _log(self, fmt: str, *args) -> None:
        if self.logger is not None:
            self.logger.debug(fmt, *args)

    # -- reporting -----------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict copy of everything collected (JSON-serializable)."""
        return {
            "counters": dict(self.counters),
            "timers_s": dict(self.timers_s),
        }

    def attribution(self) -> dict[str, float]:
        """Each timer's share of the total timed seconds (sums to 1.0).

        Empty if nothing was timed.  Useful for answering "which phase is
        the bottleneck" without caring about absolute machine speed.
        """
        total = sum(self.timers_s.values())
        if total <= 0.0:
            return {}
        return {name: t / total for name, t in self.timers_s.items()}

    def summary(self) -> str:
        """Human-readable dump of counters and timers, one per line."""
        lines = ["trace summary"]
        for name in sorted(self.timers_s):
            lines.append(f"  {name:<24} {self.timers_s[name] * 1e3:10.3f} ms")
        for name in sorted(self.counters):
            lines.append(f"  {name:<24} {self.counters[name]:>10}")
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop all collected counters and timers."""
        self.counters.clear()
        self.timers_s.clear()


class _NullTimer:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_TIMER = _NullTimer()


class NullTrace(Trace):
    """Disabled trace: every method is a no-op, nothing is allocated.

    The pipeline holds one shared instance (:data:`NULL_TRACE`) so that
    "tracing off" costs a single attribute lookup per instrumentation
    point -- there are a handful per ``analyze()`` call and none inside
    per-arc loops.
    """

    enabled = False

    def __init__(self):
        super().__init__(logger=get_logger())

    def incr(self, name: str, n: int = 1) -> None:
        """No-op."""

    def timer(self, name: str) -> _NullTimer:
        """Shared no-op context manager."""
        return _NULL_TIMER

    def _log(self, fmt: str, *args) -> None:
        return None


#: Shared disabled trace used when no ``trace=`` argument is given.
NULL_TRACE = NullTrace()
