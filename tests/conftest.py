"""Shared fixtures: small hand-built circuits used across the test suite."""

from __future__ import annotations

import pytest

from repro import Netlist
from repro.circuits import add_inverter, add_pass


@pytest.fixture
def inverter_net() -> Netlist:
    """A single depletion-load inverter: input ``a``, output ``out``."""
    net = Netlist("inv")
    net.set_input("a")
    add_inverter(net, "a", "out", tag="inv")
    net.set_output("out")
    return net


@pytest.fixture
def nand2_net() -> Netlist:
    """Hand-built 2-input NAND (series pull-down): inputs a, b; output out."""
    net = Netlist("nand2")
    net.set_input("a", "b")
    net.add_pullup("out", name="pu")
    net.add_enh("a", "out", "mid", name="pda")
    net.add_enh("b", "mid", "gnd", name="pdb")
    net.set_output("out")
    return net


@pytest.fixture
def latch_net() -> Netlist:
    """Dynamic half latch: d -> (phi1 switch) -> store -> inverter -> q."""
    net = Netlist("latch")
    net.set_input("d")
    net.set_clock("phi1", "phi1")
    net.set_clock("phi2", "phi2")
    add_pass(net, "phi1", "d", "store", name="sw")
    add_inverter(net, "store", "q", tag="inv")
    add_pass(net, "phi2", "q", "store2", name="sw2")
    add_inverter(net, "store2", "q2", tag="inv2")
    net.set_output("q2")
    return net


@pytest.fixture
def pass_mux_net() -> Netlist:
    """Inverter driving a pass switch into a gate load -- one mixed stage."""
    net = Netlist("passmux")
    net.set_input("a", "en")
    add_inverter(net, "a", "x", tag="i1")
    add_pass(net, "en", "x", "y", name="sw")
    add_inverter(net, "y", "out", tag="i2")
    net.set_output("out")
    return net
