"""Tests for the TimingAnalyzer facade and path extraction (repro.core)."""

import pytest

from repro import (
    ElectricalRuleError,
    Netlist,
    TimingAnalyzer,
    TimingError,
    TwoPhaseClock,
)
from repro.circuits import (
    add_inverter,
    barrel_shifter,
    inverter_chain,
    manchester_adder,
    mips_like_datapath,
    register_bit,
    ripple_adder,
    shift_register,
)
from repro.core import critical_paths, trace_path
from repro.delay import NO_SLOPE


class TestCombinational:
    def test_chain_delay_accumulates(self):
        short = TimingAnalyzer(inverter_chain(2), slope=NO_SLOPE).analyze()
        long = TimingAnalyzer(inverter_chain(6), slope=NO_SLOPE).analyze()
        assert long.max_delay > 2.5 * short.max_delay

    def test_mode_detection(self):
        assert TimingAnalyzer(inverter_chain(2)).analyze().mode == "combinational"
        assert TimingAnalyzer(shift_register(2)).analyze().mode == "two-phase"

    def test_input_arrival_shifts_output(self):
        net = inverter_chain(3)
        base = TimingAnalyzer(net).analyze()
        late = TimingAnalyzer(net).analyze(input_arrivals={"a": 5e-9})
        assert late.max_delay == pytest.approx(base.max_delay + 5e-9)

    def test_critical_path_structure(self):
        result = TimingAnalyzer(inverter_chain(4)).analyze()
        path = result.critical_path
        assert path is not None
        assert path.startpoint == "a"
        assert path.endpoint == "n3"
        assert path.length == 4
        times = [s.time for s in path.steps]
        assert times == sorted(times)

    def test_transitions_alternate_through_inverters(self):
        result = TimingAnalyzer(inverter_chain(4)).analyze()
        transitions = [s.transition for s in result.critical_path.steps]
        for a, b in zip(transitions, transitions[1:]):
            assert a != b

    def test_arrival_of(self):
        result = TimingAnalyzer(inverter_chain(2)).analyze()
        assert result.arrival_of("n0") is not None
        assert result.arrival_of("n1") > result.arrival_of("n0")

    def test_no_inputs_rejected(self):
        net = Netlist("t")
        add_inverter(net, "a", "y")
        net.node("a")
        with pytest.raises((TimingError, ElectricalRuleError)):
            TimingAnalyzer(net).analyze()

    def test_erc_failure_blocks_analysis(self):
        net = Netlist("t")
        net.set_input("a")
        net.add_enh("ghost", "a", "gnd")
        with pytest.raises(ElectricalRuleError):
            TimingAnalyzer(net)

    def test_erc_can_be_skipped(self):
        net = Netlist("t")
        net.set_input("a")
        add_inverter(net, "a", "y")
        net.add_node("orphan")  # warning only anyway
        analyzer = TimingAnalyzer(net, run_erc=False)
        assert analyzer.erc_warnings == []

    def test_report_text(self):
        result = TimingAnalyzer(inverter_chain(2)).analyze()
        text = result.report()
        assert "timing analysis" in text
        assert "max delay" in text
        assert "ns" in text

    def test_top_k_limits_paths(self):
        net = ripple_adder(4)
        result = TimingAnalyzer(net).analyze(top_k=3)
        assert len(result.paths) == 3

    def test_feedback_cut_reported(self):
        net = Netlist("latchpair")
        net.set_input("a")
        add_inverter(net, "a", "x")
        add_inverter(net, "x", "s")
        add_inverter(net, "s", "ns", tag="f1")
        add_inverter(net, "ns", "s", tag="f2")
        net.set_output("ns")
        result = TimingAnalyzer(net).analyze()
        assert result.cut_arc_count >= 1


class TestTwoPhase:
    def test_register_bit_min_cycle(self):
        result = TimingAnalyzer(register_bit()).analyze()
        assert result.mode == "two-phase"
        assert result.min_cycle is not None
        clock = TwoPhaseClock()
        v = result.clock_verification
        assert v.min_cycle == pytest.approx(
            v.phases["phi1"].width + v.phases["phi2"].width + 2 * clock.nonoverlap
        )

    def test_longer_pipeline_same_cycle(self):
        # Min cycle is set by the worst single stage, not pipeline length.
        short = TimingAnalyzer(shift_register(2)).analyze()
        long = TimingAnalyzer(shift_register(6)).analyze()
        assert long.min_cycle == pytest.approx(short.min_cycle, rel=0.2)

    def test_no_races_in_proper_designs(self):
        for net in (shift_register(3), manchester_adder(4)):
            result = TimingAnalyzer(net).analyze()
            assert result.clock_verification.races == []

    def test_race_detected_in_same_phase_latch_chain(self):
        net = Netlist("racy")
        net.set_input("d")
        net.set_clock("phi1", "phi1")
        net.set_clock("phi2", "phi2")
        from repro.circuits import add_half_latch

        add_half_latch(net, "d", "q1", "phi1", tag="l1")
        add_half_latch(net, "q1", "q2", "phi1", tag="l2")  # same phase!
        add_half_latch(net, "q2", "q3", "phi2", tag="l3")
        net.set_output("q3")
        result = TimingAnalyzer(net).analyze()
        races = result.clock_verification.races
        assert races, "same-phase latch chain must be flagged"
        assert races[0].phase == "phi1"

    def test_manchester_precharge_in_phi1(self):
        result = TimingAnalyzer(manchester_adder(4)).analyze()
        v = result.clock_verification
        assert v.phases["phi1"].width > 0
        assert v.phases["phi2"].width > 0

    def test_custom_clock_schema(self):
        net = Netlist("alt")
        net.set_input("d")
        net.set_clock("ca", "A")
        net.set_clock("cb", "B")
        from repro.circuits import add_half_latch

        add_half_latch(net, "d", "q", "ca", tag="l1")
        add_half_latch(net, "q", "r", "cb", tag="l2")
        net.set_output("r")
        clock = TwoPhaseClock(phase1="A", phase2="B")
        result = TimingAnalyzer(net, clock=clock).analyze()
        assert result.mode == "two-phase"

    def test_unknown_phase_labels_fall_back_to_combinational(self):
        net = Netlist("odd")
        net.set_input("d")
        net.set_clock("c", "weird")
        from repro.circuits import add_half_latch

        add_half_latch(net, "d", "q", "c", tag="l")
        net.set_output("q")
        result = TimingAnalyzer(net).analyze()
        assert result.mode == "combinational"

    def test_datapath_cycle_in_era_plausible_range(self):
        dp, _ = mips_like_datapath(8, 4)
        result = TimingAnalyzer(dp).analyze()
        # A 4um nMOS datapath runs at a handful of MHz.
        assert 30e-9 < result.min_cycle < 2000e-9


class TestPathExtraction:
    def test_trace_unknown_endpoint_raises(self):
        result = TimingAnalyzer(inverter_chain(2)).analyze()
        with pytest.raises(KeyError):
            trace_path(result.arrivals, "nope", "rise")

    def test_critical_paths_ranked_descending(self):
        result = TimingAnalyzer(ripple_adder(3)).analyze(top_k=5)
        arrivals = [p.arrival for p in result.paths]
        assert arrivals == sorted(arrivals, reverse=True)

    def test_one_path_per_endpoint(self):
        result = TimingAnalyzer(ripple_adder(3)).analyze(top_k=100)
        endpoints = [p.endpoint for p in result.paths]
        assert len(endpoints) == len(set(endpoints))

    def test_endpoints_restricted_to_outputs(self):
        net = ripple_adder(3)
        result = TimingAnalyzer(net).analyze(top_k=100)
        assert {p.endpoint for p in result.paths} <= set(net.outputs)

    def test_path_format_is_readable(self):
        result = TimingAnalyzer(inverter_chain(3)).analyze()
        text = result.critical_path.format()
        assert "ns" in text
        assert "(source)" in text
        assert "n2" in text

    def test_critical_paths_helper_on_all_nodes(self):
        result = TimingAnalyzer(inverter_chain(3)).analyze()
        paths = critical_paths(result.arrivals, None, k=2)
        assert len(paths) == 2

    def test_shifter_critical_path_passes_through_matrix(self):
        net = barrel_shifter(4)
        result = TimingAnalyzer(net).analyze()
        devices = [d for step in result.critical_path.steps for d in step.devices]
        assert any("bsh.m" in d for d in devices)
