"""Thread-safety of one shared TimingAnalyzer (the serve-layer contract).

``TimingAnalyzer`` documents (class docstring, "Thread safety") that
``analyze`` / ``notify_changed`` / ``explain`` serialize on an internal
reentrant engine lock, so a single analyzer may be shared across
threads -- the daemon's ``DesignSession`` relies on exactly this as its
second line of defence.  The tests drive one analyzer hard from many
threads and check the only things that matter:

* no exception ever escapes, and nothing deadlocks;
* results are never torn: every concurrent ``analyze`` returns a report
  byte-identical to some quiescent state of the netlist, never a blend
  of two edits;
* after the storm, a fresh analyzer over the same netlist agrees with
  the shared one exactly.
"""

from __future__ import annotations

import json
import threading

from repro import TimingAnalyzer
from repro.circuits import inverter_chain

THREADS = 6
ROUNDS = 8


def report_json(analyzer) -> str:
    return json.dumps(analyzer.analyze().to_json(), sort_keys=True)


class TestConcurrentAnalyze:
    def test_parallel_analyze_is_consistent(self):
        net = inverter_chain(8)
        analyzer = TimingAnalyzer(net)
        expected = report_json(analyzer)
        results: list[str] = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(THREADS, timeout=30)

        def worker():
            try:
                barrier.wait()
                for _ in range(ROUNDS):
                    results.append(report_json(analyzer))
            except BaseException as exc:  # noqa: BLE001 - recorded
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert not any(t.is_alive() for t in threads)
        assert len(results) == THREADS * ROUNDS
        assert set(results) == {expected}

    def test_explain_races_analyze_safely(self):
        net = inverter_chain(8)
        analyzer = TimingAnalyzer(net)
        result = analyzer.analyze()
        endpoint = result.paths[0].endpoint
        errors: list[BaseException] = []

        def explainer():
            try:
                for _ in range(ROUNDS):
                    analyzer.explain(endpoint)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def analyzer_loop():
            try:
                for _ in range(ROUNDS):
                    analyzer.analyze()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=explainer),
            threading.Thread(target=analyzer_loop),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert not any(t.is_alive() for t in threads)


class TestConcurrentEdits:
    def test_edits_never_tear_a_result(self):
        """Readers racing a writer only ever see whole states.

        The writer toggles one device between two widths, re-running
        ``notify_changed`` + ``analyze`` each time; readers hammer
        ``analyze`` concurrently.  Every observed report must equal the
        quiescent report of *one* of the two widths -- a third value
        would mean a read overlapped a half-applied edit.
        """
        net = inverter_chain(8)
        analyzer = TimingAnalyzer(net)
        device = sorted(net.devices)[0]
        base_w = net.device(device).w

        legal = set()
        for w in (base_w, base_w * 1.5):
            net.device(device).w = w
            analyzer.notify_changed([device])
            legal.add(report_json(analyzer))
        assert len(legal) == 2

        observed: set[str] = set()
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    observed.add(report_json(analyzer))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def writer():
            try:
                for i in range(ROUNDS):
                    net.device(device).w = base_w if i % 2 else base_w * 1.5
                    analyzer.notify_changed([device])
                    analyzer.analyze()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert not any(t.is_alive() for t in threads)
        assert observed <= legal

        # The storm left the engine coherent: a fresh analyzer over the
        # same netlist state agrees exactly.
        fresh = TimingAnalyzer(net)
        assert report_json(analyzer) == report_json(fresh)

    def test_scenario_analyzer_shares_the_engine_lock(self):
        from repro.core.mcmm import Scenario

        net = inverter_chain(8)
        analyzer = TimingAnalyzer(net)
        sibling = analyzer._scenario_analyzer(Scenario("typ"))
        assert sibling._engine_lock is analyzer._engine_lock

    def test_thread_safety_is_documented(self):
        assert "Thread safety" in TimingAnalyzer.__doc__
