"""Tests for the gate-level baseline analyzers (repro.baselines)."""

import pytest

from repro import TimingAnalyzer
from repro.baselines import FanoutDelayAnalyzer, UnitDelayAnalyzer
from repro.circuits import (
    inverter_chain,
    pass_chain,
    ripple_adder,
)


class TestUnitDelay:
    def test_chain_counts_stages(self):
        result = UnitDelayAnalyzer(inverter_chain(5), unit=1e-9).analyze()
        assert result.max_delay == pytest.approx(5e-9)

    def test_pass_chain_looks_constant(self):
        # The defining blindness: a pass chain is one stage traversal no
        # matter how long, so the unit model sees the same delay for any
        # length -- while the transistor-level truth is quadratic.
        short = UnitDelayAnalyzer(pass_chain(2), unit=1e-9).analyze()
        long = UnitDelayAnalyzer(pass_chain(12), unit=1e-9).analyze()
        assert long.max_delay == pytest.approx(short.max_delay)
        tv_short = TimingAnalyzer(pass_chain(2)).analyze().max_delay
        tv_long = TimingAnalyzer(pass_chain(12)).analyze().max_delay
        assert tv_long > 5 * tv_short

    def test_critical_path_available(self):
        result = UnitDelayAnalyzer(ripple_adder(3)).analyze()
        assert result.critical_path is not None
        assert result.critical_path.arrival == result.max_delay


class TestFanoutDelay:
    def test_fanout_increases_delay(self):
        light = inverter_chain(1)
        result_light = FanoutDelayAnalyzer(light).analyze()
        heavy = inverter_chain(1)
        # Load n0 with extra gates.
        for i in range(6):
            from repro.circuits import add_inverter

            add_inverter(heavy, "n0", f"extra{i}", tag=f"x{i}")
        result_heavy = FanoutDelayAnalyzer(heavy).analyze()
        light_arr = result_light.arrivals.worst("n0").time
        heavy_arr = result_heavy.arrivals.worst("n0").time
        assert heavy_arr > light_arr

    def test_still_blind_to_series_resistance(self):
        # Fanout model sees load but not chain resistance: sublinear growth.
        d3 = FanoutDelayAnalyzer(pass_chain(3)).analyze().max_delay
        d12 = FanoutDelayAnalyzer(pass_chain(12)).analyze().max_delay
        assert d12 < 2.5 * d3


class TestRanking:
    def test_baselines_and_tv_agree_on_trivial_chain(self):
        net = inverter_chain(4)
        tv = TimingAnalyzer(net).analyze()
        unit = UnitDelayAnalyzer(net).analyze()
        assert tv.critical_path.endpoint == unit.critical_path.endpoint
