"""Tests for the shared benchmark harness (repro.bench)."""

import pytest

from repro.bench import (
    AccuracyRow,
    Series,
    compare_delay,
    percent_error,
    timed_analysis,
)
from repro.circuits import inverter_chain
from repro.sim import TransientOptions

FAST = TransientOptions(dt=0.2e-9, settle=20e-9)


class TestPercentError:
    def test_signed(self):
        assert percent_error(1.1, 1.0) == pytest.approx(10.0)
        assert percent_error(0.9, 1.0) == pytest.approx(-10.0)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            percent_error(1.0, 0.0)


class TestAccuracyRow:
    def test_cells_format(self):
        row = AccuracyRow("x", "rise", 2e-9, 1e-9)
        cells = row.cells()
        assert cells[0] == "x"
        assert "+100.0%" in cells[-1]

    def test_error_pct(self):
        assert AccuracyRow("x", "fall", 1.5e-9, 1e-9).error_pct == pytest.approx(50.0)


class TestCompareDelay:
    def test_produces_consistent_row(self):
        row = compare_delay(
            inverter_chain(2), "a", "n1", direction="rise", sim_options=FAST
        )
        assert row.transition == "rise"  # two inversions
        assert row.tv_delay > 0 and row.sim_delay > 0

    def test_label_override(self):
        row = compare_delay(
            inverter_chain(1), "a", "n0",
            direction="rise", label="custom", sim_options=FAST,
        )
        assert row.label == "custom"


class TestTimedAnalysis:
    def test_returns_time_and_result(self):
        seconds, result = timed_analysis(inverter_chain(4))
        assert seconds > 0
        assert result.max_delay > 0


class TestSeries:
    def test_format(self):
        series = Series("s", "x", "y")
        series.add(1, 2.0)
        series.add(10, 20.0)
        text = series.format()
        assert "series: s" in text
        assert "10" in text and "20" in text
