"""Tests for the carry-select adder (repro.circuits.adders)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import TimingAnalyzer
from repro.circuits import bus, carry_select_adder, ripple_adder
from repro.netlist import validate
from repro.sim import SwitchSim


class TestFunctional:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    @settings(max_examples=20, deadline=None)
    def test_adds_correctly(self, a, b, cin):
        width = 8
        net = carry_select_adder(width, section=4)
        sim = SwitchSim(net)
        sim.set_word(bus("a", width), a)
        sim.set_word(bus("b", width), b)
        sim.set_input("cin", cin)
        sim.settle()
        total = a + b + cin
        assert sim.word(bus("sum", width)) == total & 0xFF
        assert sim.value("cout") == total >> 8

    @pytest.mark.parametrize("section", [1, 2, 3, 8])
    def test_any_section_size(self, section):
        width = 6
        net = carry_select_adder(width, section=section)
        sim = SwitchSim(net)
        sim.set_word(bus("a", width), 45)
        sim.set_word(bus("b", width), 27)
        sim.set_input("cin", 1)
        sim.settle()
        assert sim.word(bus("sum", width)) == (45 + 27 + 1) & 63
        assert sim.value("cout") == (45 + 27 + 1) >> 6

    def test_erc_clean(self):
        validate(carry_select_adder(8))

    def test_invalid_section_rejected(self):
        with pytest.raises(ValueError):
            carry_select_adder(8, section=0)


class TestTiming:
    def test_faster_than_ripple_at_width(self):
        width = 16
        csel = TimingAnalyzer(carry_select_adder(width)).analyze().max_delay
        ripple = TimingAnalyzer(ripple_adder(width)).analyze().max_delay
        assert csel < 0.7 * ripple

    def test_flow_fully_resolved(self):
        result = TimingAnalyzer(carry_select_adder(8)).analyze()
        assert result.flow.coverage == pytest.approx(1.0)

    def test_carry_hops_by_section(self):
        # Widening by one section adds roughly a constant (the mux + carry
        # restore), not a per-bit ripple.
        d8 = TimingAnalyzer(carry_select_adder(8, section=4)).analyze().max_delay
        d16 = TimingAnalyzer(carry_select_adder(16, section=4)).analyze().max_delay
        d24 = TimingAnalyzer(carry_select_adder(24, section=4)).analyze().max_delay
        step1 = d16 - d8
        step2 = d24 - d16
        assert step2 == pytest.approx(step1, rel=0.5)
