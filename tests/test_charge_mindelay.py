"""Tests for charge-sharing analysis and min-delay/overlap margins."""

import pytest

from repro import Netlist, TimingAnalyzer, TwoPhaseClock
from repro.circuits import (
    add_inverter,
    add_pass,
    manchester_adder,
    mips_like_datapath,
    register_file,
    shift_register,
)
from repro.core import (
    ChargeHazard,
    charge_sharing_report,
    cross_phase_margins,
    propagate_min,
)
from repro.core.graph import TimingGraph
from repro.delay import RISE, FALL, ArcTiming, StageArc, StageDelayCalculator
from repro.flow import infer_flow
from repro.stages import decompose

NS = 1e-9


def _hazard_net(bus_cap=500e-15) -> Netlist:
    net = Netlist("hazard")
    net.set_input("d")
    net.set_clock("phi1", "phi1")
    net.set_clock("phi2", "phi2")
    add_pass(net, "phi1", "d", "store", name="sw")
    add_inverter(net, "store", "q", tag="i")
    net.add_node("bigbus", bus_cap)
    add_pass(net, "phi2", "store", "bigbus", name="leak")
    net.set_output("q")
    return net


class TestChargeSharing:
    def test_deliberate_hazard_flagged(self):
        hazards = charge_sharing_report(_hazard_net())
        assert len(hazards) == 1
        hazard = hazards[0]
        assert hazard.node == "store"
        assert "leak" in hazard.via
        assert hazard.ratio < 0.1

    def test_small_partner_is_fine(self):
        hazards = charge_sharing_report(_hazard_net(bus_cap=1e-15))
        assert hazards == []

    def test_threshold_controls_sensitivity(self):
        net = _hazard_net(bus_cap=15e-15)  # mild sharing
        strict = charge_sharing_report(net, threshold=0.9)
        lax = charge_sharing_report(net, threshold=0.2)
        assert len(strict) >= len(lax)

    @pytest.mark.parametrize(
        "make",
        [
            lambda: manchester_adder(8),
            lambda: shift_register(4),
            lambda: register_file(4, 4)[0],
            lambda: mips_like_datapath(8, 4)[0],
        ],
        ids=["manchester", "shiftreg", "regfile", "datapath"],
    )
    def test_generated_designs_are_clean(self, make):
        net = make()
        hazards = charge_sharing_report(net)
        assert hazards == [], [str(h) for h in hazards]

    def test_report_string_is_informative(self):
        hazard = charge_sharing_report(_hazard_net())[0]
        text = str(hazard)
        assert "store" in text and "fF" in text and "retention" in text


def arc(trigger, output, *, inverting=True, rise=1 * NS, fall=1 * NS):
    return StageArc(
        stage_index=0,
        trigger=trigger,
        via="gate",
        output=output,
        inverting=inverting,
        rise=ArcTiming(rise, rise) if rise is not None else None,
        fall=ArcTiming(fall, fall) if fall is not None else None,
    )


class TestPropagateMin:
    def test_min_takes_fastest_path(self):
        arcs = [
            arc("a", "c", rise=1 * NS, fall=1 * NS),
            arc("b", "c", rise=5 * NS, fall=5 * NS),
        ]
        graph = TimingGraph.build(arcs)
        arrivals = propagate_min(
            graph, {("a", RISE): 0.0, ("b", RISE): 0.0}
        )
        assert arrivals.get("c", FALL).time == pytest.approx(1 * NS)

    def test_min_leq_max_everywhere(self):
        from repro.core import propagate
        from repro.delay import NO_SLOPE
        from repro.circuits import ripple_adder

        net = ripple_adder(3)
        infer_flow(net)
        calc = StageDelayCalculator(net, decompose(net))
        graph = TimingGraph.build(calc.all_arcs())
        sources = {}
        for name in net.inputs:
            sources[(name, RISE)] = 0.0
            sources[(name, FALL)] = 0.0
        worst = propagate(graph, sources, NO_SLOPE, source_slew=0.0)
        best = propagate_min(graph, sources)
        for arrival in best.items():
            w = worst.get(arrival.node, arrival.transition)
            assert w is not None
            assert arrival.time <= w.time + 1e-15


class TestOverlapMargins:
    def test_margins_present_and_positive(self):
        result = TimingAnalyzer(shift_register(3)).analyze()
        margins = result.clock_verification.overlap_margins
        assert len(margins) == 2
        for margin in margins:
            assert margin.margin is not None
            assert margin.margin > 0

    def test_margin_describe(self):
        result = TimingAnalyzer(shift_register(2)).analyze()
        text = result.clock_verification.overlap_margins[0].describe()
        assert "tolerated overlap" in text

    def test_more_logic_between_latches_more_margin(self):
        # A register bit has one inverter between phases; adding logic
        # between them must increase the tolerated overlap.
        from repro.circuits import add_half_latch

        def margin_of(extra_inverters):
            net = Netlist(f"m{extra_inverters}")
            net.set_input("d")
            net.set_clock("phi1", "phi1")
            net.set_clock("phi2", "phi2")
            add_half_latch(net, "d", "x0", "phi1", tag="l1")
            previous = "x0"
            for i in range(extra_inverters):
                nxt = f"x{i+1}"
                add_inverter(net, previous, nxt, tag=f"e{i}")
                previous = nxt
            add_half_latch(net, previous, "q", "phi2", tag="l2")
            net.set_output("q")
            result = TimingAnalyzer(net).analyze()
            for margin in result.clock_verification.overlap_margins:
                if margin.from_phase == "phi1":
                    return margin.margin
            raise AssertionError("missing phi1 margin")

        assert margin_of(4) > margin_of(0)

    def test_direct_call(self):
        net = shift_register(2)
        infer_flow(net)
        calc = StageDelayCalculator(net, decompose(net))
        margins = cross_phase_margins(net, calc, TwoPhaseClock())
        assert {m.from_phase for m in margins} == {"phi1", "phi2"}
