"""Functional verification of the benchmark circuit generators.

The switch-level simulator executes each generated netlist against its
specification -- an adder must add, a shifter must rotate, a register file
must remember.  Without these tests the timing experiments would be
measuring unverified structures.
"""

import pytest

from repro import TimingAnalyzer
from repro.circuits import (
    barrel_shifter,
    bus,
    decoder,
    manchester_adder,
    mips_like_datapath,
    pla,
    ProductTerm,
    register_file,
    ripple_adder,
    shift_register,
)
from repro.sim import SwitchSim, X


class TestRippleAdder:
    @pytest.mark.parametrize("a,b,cin", [(0, 0, 0), (3, 5, 0), (7, 9, 1), (15, 15, 1), (10, 5, 0)])
    def test_adds(self, a, b, cin):
        width = 4
        net = ripple_adder(width)
        sim = SwitchSim(net)
        sim.set_word(bus("a", width), a)
        sim.set_word(bus("b", width), b)
        sim.set_input("cin", cin)
        sim.settle()
        total = a + b + cin
        assert sim.word(bus("sum", width)) == total & (2**width - 1)
        assert sim.value("cout") == total >> width

    def test_exhaustive_2bit(self):
        net = ripple_adder(2)
        sim = SwitchSim(net)
        for a in range(4):
            for b in range(4):
                for cin in (0, 1):
                    sim.set_word(bus("a", 2), a)
                    sim.set_word(bus("b", 2), b)
                    sim.set_input("cin", cin)
                    sim.settle()
                    total = a + b + cin
                    assert sim.word(bus("sum", 2)) == total & 3
                    assert sim.value("cout") == total >> 2


class TestManchesterAdder:
    def _run_cycle(self, sim, width, a, b, cin):
        sim.set_word(bus("a", width), a)
        sim.set_word(bus("b", width), b)
        sim.set_input("cin", cin)
        # Precharge phase.
        sim.step({"phi1": 1, "phi2": 0})
        # Evaluate phase.
        sim.step({"phi1": 0, "phi2": 1})

    @pytest.mark.parametrize("a,b,cin", [(0, 0, 0), (5, 3, 0), (12, 7, 1), (15, 1, 0), (15, 15, 1)])
    def test_adds_dynamically(self, a, b, cin):
        width = 4
        net = manchester_adder(width)
        sim = SwitchSim(net)
        self._run_cycle(sim, width, a, b, cin)
        total = a + b + cin
        assert sim.word(bus("sum", width)) == total & (2**width - 1)
        assert sim.value("cout") == total >> width

    def test_carry_ripples_full_length(self):
        # 1111 + 0001: carry propagates through every chain stage.
        width = 6
        sim = SwitchSim(manchester_adder(width))
        self._run_cycle(sim, width, 2**width - 1, 1, 0)
        assert sim.word(bus("sum", width)) == 0
        assert sim.value("cout") == 1


class TestBarrelShifter:
    @pytest.mark.parametrize("value,k", [(0b0001, 1), (0b1001, 2), (0b1110, 0), (0b1011, 3)])
    def test_rotation(self, value, k):
        width = 4
        net = barrel_shifter(width)
        sim = SwitchSim(net)
        sim.set_word(bus("d", width), value)
        sim.set_word(bus("s", width), 1 << k)
        sim.settle()
        rotated = ((value >> k) | (value << (width - k))) & (2**width - 1)
        # Outputs are inverting superbuffers of the matrix nodes.
        got = sim.word(bus("q", width))
        assert got == (~rotated) & (2**width - 1)


class TestPla:
    def test_programmed_function(self):
        # out0 = in0 AND in1; out1 = NOT in2 (as a single-literal term).
        terms = [
            ProductTerm({0: 1, 1: 1}, (0,)),
            ProductTerm({2: 0}, (1,)),
        ]
        net = pla(3, 2, terms)
        sim = SwitchSim(net)
        for vector in range(8):
            ins = [(vector >> i) & 1 for i in range(3)]
            sim.set_word(bus("in", 3), vector)
            sim.settle()
            assert sim.value("out0") == (ins[0] & ins[1])
            assert sim.value("out1") == (1 - ins[2])

    def test_term_evaluate_helper(self):
        term = ProductTerm({0: 1, 2: 0}, (0,))
        assert term.evaluate([1, 0, 0]) == 1
        assert term.evaluate([1, 0, 1]) == 0

    def test_constant_false_output(self):
        net = pla(2, 2, [ProductTerm({0: 1}, (0,))])
        sim = SwitchSim(net)
        sim.set_word(bus("in", 2), 3)
        sim.settle()
        assert sim.value("out1") == 0


class TestShiftRegister:
    def cycle(self, sim):
        sim.step({"phi1": 1, "phi2": 0})
        sim.step({"phi1": 0, "phi2": 1})
        sim.step({"phi1": 0, "phi2": 0})

    def test_token_marches(self):
        net = shift_register(3)
        sim = SwitchSim(net)
        sim.set_input("d", 1)
        self.cycle(sim)
        assert sim.value("q0") == 1
        sim.set_input("d", 0)
        self.cycle(sim)
        assert sim.value("q0") == 0
        assert sim.value("q1") == 1
        self.cycle(sim)
        assert sim.value("q2") == 1
        assert sim.value("q1") == 0


class TestRegisterFile:
    def write(self, sim, ports, addr, value, width):
        sim.set_word(ports.address, addr)
        sim.set_word(ports.write_data, value)
        sim.set_input(ports.write_enable, 1)
        sim.step({"phi1": 1, "phi2": 0})
        sim.step({"phi1": 0, "phi2": 0})
        sim.set_input(ports.write_enable, 0)

    def read(self, sim, ports, addr, width):
        sim.set_word(ports.address, addr)
        sim.step({"phi1": 1, "phi2": 0})  # precharge
        sim.step({"phi1": 0, "phi2": 1})  # read
        return sim.word(ports.read_data)

    def test_write_then_read(self):
        net, ports = register_file(4, 4)
        sim = SwitchSim(net)
        self.write(sim, ports, 2, 0b1010, 4)
        assert self.read(sim, ports, 2, 4) == 0b1010

    def test_two_registers_independent(self):
        net, ports = register_file(4, 4)
        sim = SwitchSim(net)
        self.write(sim, ports, 0, 0b0011, 4)
        self.write(sim, ports, 3, 0b1100, 4)
        assert self.read(sim, ports, 0, 4) == 0b0011
        assert self.read(sim, ports, 3, 4) == 0b1100

    def test_overwrite(self):
        net, ports = register_file(4, 2)
        sim = SwitchSim(net)
        self.write(sim, ports, 1, 0b01, 2)
        self.write(sim, ports, 1, 0b10, 2)
        assert self.read(sim, ports, 1, 2) == 0b10


class TestDatapath:
    def run_op(self, sim, ports, op, b_value, shift=0, cin=0):
        """One full cycle: operands latch in phi1, ALU evaluates in phi2."""
        for name in ports.op.values():
            sim.set_input(name, 0)
        sim.set_input(ports.op[op], 1)
        sim.set_word(ports.b_ext, b_value)
        sim.set_word(ports.shift_select, 1 << shift)
        sim.set_input(ports.carry_in, cin)
        sim.set_input(ports.write_enable, 0)
        sim.step({"phi1": 1, "phi2": 0})
        sim.step({"phi1": 0, "phi2": 1})
        return sim.word(ports.result)

    def test_add_of_zero_register(self):
        # Registers power up unknown; write 0 first via we, then add b.
        dp, ports = mips_like_datapath(4, 2, n_shifts=1)
        sim = SwitchSim(dp)
        # Cycle to write 0 into r0: result bus is unknown, so instead use
        # the and-op trick: AND of anything with X is X... drive via we=0
        # and rely on b only: a = rf[0] is X. Use OR with X -> X, so this
        # test instead checks the B path through XOR with a zeroed cell.
        # Simplest: write known value through the write port directly.
        sim.set_word(ports.address, 0)
        sim.set_input(ports.write_enable, 1)
        # Write data comes from the result bus (unknown at power-up), so
        # force the result latch by clocking phi2 with known shifter out is
        # not possible externally; accept X here and verify the B-operand
        # logic path instead with the 'or' op after zeroing cells manually.
        for r in range(2):
            for i in range(4):
                cell = f"rf.cell{r}_{i}"
                sim._values[f"{cell}.s"] = 0
                sim._values[f"{cell}.ns"] = 1
        sim.set_input(ports.write_enable, 0)
        result = self.run_op(sim, ports, "or", 0b0110)
        assert result == 0b0110

    def test_add_with_register_zero(self):
        dp, ports = mips_like_datapath(4, 2, n_shifts=1)
        sim = SwitchSim(dp)
        for r in range(2):
            for i in range(4):
                sim._values[f"rf.cell{r}_{i}.s"] = 0
                sim._values[f"rf.cell{r}_{i}.ns"] = 1
        assert self.run_op(sim, ports, "add", 5, cin=0) == 5
        assert self.run_op(sim, ports, "add", 5, cin=1) == 6

    def test_timing_analysis_runs_clean(self):
        dp, _ = mips_like_datapath(4, 2)
        result = TimingAnalyzer(dp).analyze()
        assert result.clock_verification.races == []
        assert result.flow.coverage == pytest.approx(1.0)


class TestDecoderScaling:
    def test_decoder_4bit(self):
        net = decoder(4)
        sim = SwitchSim(net)
        sim.set_word(bus("a", 4), 11)
        sim.settle()
        for j in range(16):
            assert sim.value(f"line{j}") == (1 if j == 11 else 0)
