"""Tests for node classification and stage archetypes (repro.stages)."""

import pytest

from repro import Netlist
from repro.circuits import (
    barrel_shifter,
    inverter_chain,
    manchester_adder,
    pass_chain,
    superbuffer,
)
from repro.stages import (
    NodeClass,
    StageArchetype,
    archetype_census,
    archetype_of,
    classify_node,
    classify_nodes,
    decompose,
)


class TestNodeClasses:
    def test_rails(self):
        net = Netlist("t")
        assert classify_node(net, "vdd") is NodeClass.RAIL
        assert classify_node(net, "gnd") is NodeClass.RAIL

    def test_inputs_and_clocks(self):
        net = Netlist("t")
        net.set_input("a")
        net.set_clock("phi1", "phi1")
        assert classify_node(net, "a") is NodeClass.INPUT
        assert classify_node(net, "phi1") is NodeClass.CLOCK

    def test_gate_output(self, inverter_net):
        assert classify_node(inverter_net, "out") is NodeClass.GATE_OUTPUT

    def test_superbuffer_output_is_gate_output(self):
        net = superbuffer()
        assert classify_node(net, "out") is NodeClass.GATE_OUTPUT

    def test_precharged(self):
        net = Netlist("t")
        net.set_clock("phi1", "phi1")
        net.set_input("g")
        net.add_enh("phi1", "vdd", "bus", name="pre")
        net.add_enh("g", "bus", "gnd", name="pd")
        assert classify_node(net, "bus") is NodeClass.PRECHARGED

    def test_storage(self, latch_net):
        assert classify_node(latch_net, "store") is NodeClass.STORAGE

    def test_pass_internal(self):
        net = pass_chain(4)
        assert classify_node(net, "p1") is NodeClass.PASS

    def test_gate_only(self):
        net = Netlist("t")
        net.set_input("a")
        net.add_enh("float", "a", "gnd")
        assert classify_node(net, "float") is NodeClass.GATE_ONLY

    def test_isolated(self):
        net = Netlist("t")
        net.add_node("lonely")
        assert classify_node(net, "lonely") is NodeClass.ISOLATED

    def test_classify_nodes_covers_everything(self):
        net = inverter_chain(3)
        classes = classify_nodes(net)
        assert set(classes) == set(net.nodes)


class TestArchetypes:
    def test_restoring_gate(self, nand2_net):
        graph = decompose(nand2_net)
        assert archetype_of(nand2_net, graph[0]) is StageArchetype.RESTORING

    def test_pass_network(self):
        net = pass_chain(4)
        graph = decompose(net)
        stage = graph.stage_of("p0")
        assert archetype_of(net, stage) is StageArchetype.PASS

    def test_superbuffer_detected(self):
        net = superbuffer()
        graph = decompose(net)
        out_stage = graph.stage_of("out")
        assert archetype_of(net, out_stage) is StageArchetype.SUPERBUFFER

    def test_precharged_stage(self):
        net = manchester_adder(2)
        graph = decompose(net)
        stage = graph.stage_of("man.nc0")
        assert archetype_of(net, stage) is StageArchetype.PRECHARGED

    def test_mixed_stage(self, pass_mux_net):
        graph = decompose(pass_mux_net)
        stage = graph.stage_of("x")
        # The inverter output x and the pass switch share a stage.
        assert archetype_of(pass_mux_net, stage) is StageArchetype.MIXED

    def test_degenerate_stage(self):
        net = Netlist("t")
        net.set_input("a", "b", "en")
        net.add_enh("en", "a", "b")
        graph = decompose(net)
        assert archetype_of(net, graph[0]) is StageArchetype.DEGENERATE

    def test_census_sums_to_stage_count(self):
        net = barrel_shifter(4)
        graph = decompose(net)
        census = archetype_census(net, graph)
        assert sum(census.values()) == len(graph)

    def test_census_of_shifter_has_pass_and_superbuffer(self):
        net = barrel_shifter(4)
        graph = decompose(net)
        census = archetype_census(net, graph)
        assert census[StageArchetype.SUPERBUFFER] >= 1
