"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.circuits import inverter_chain, shift_register
from repro.cli import main
from repro.netlist import sim_dumps, sim_loads
from repro.tech import NMOS4


@pytest.fixture
def chain_file(tmp_path):
    path = tmp_path / "chain.sim"
    path.write_text(sim_dumps(inverter_chain(3)))
    return str(path)


@pytest.fixture
def clocked_file(tmp_path):
    path = tmp_path / "sr.sim"
    path.write_text(sim_dumps(shift_register(2)))
    return str(path)


class TestAnalyze:
    def test_combinational_report(self, chain_file, capsys):
        assert main(["analyze", chain_file]) == 0
        out = capsys.readouterr().out
        assert "max delay" in out
        assert "n2" in out

    def test_two_phase_report(self, clocked_file, capsys):
        assert main(["analyze", clocked_file]) == 0
        out = capsys.readouterr().out
        assert "min cycle time" in out
        assert "races: none" in out

    def test_input_arrival_flag(self, chain_file, capsys):
        main(["analyze", chain_file])
        base = capsys.readouterr().out
        main(["analyze", chain_file, "--input-arrival", "a=5"])
        shifted = capsys.readouterr().out

        def delay(text):
            line = [l for l in text.splitlines() if "max delay" in l][0]
            return float(line.split(":")[1].split()[0])

        assert delay(shifted) == pytest.approx(delay(base) + 5.0, abs=0.01)

    def test_model_flag(self, chain_file, capsys):
        assert main(["analyze", chain_file, "--model", "lumped"]) == 0

    @staticmethod
    def _timeless(report: str) -> str:
        # Drop the wall-clock line, the one legitimately varying field.
        return "\n".join(
            line
            for line in report.splitlines()
            if not line.startswith("analysis ")
        )

    def test_workers_flag_integer(self, chain_file, capsys):
        main(["analyze", chain_file])
        base = self._timeless(capsys.readouterr().out)
        assert main(["analyze", chain_file, "--workers", "2"]) == 0
        assert self._timeless(capsys.readouterr().out) == base

    def test_workers_flag_auto(self, chain_file, capsys):
        main(["analyze", chain_file])
        base = self._timeless(capsys.readouterr().out)
        assert main(["analyze", chain_file, "--workers", "auto"]) == 0
        assert self._timeless(capsys.readouterr().out) == base

    def test_workers_flag_rejects_garbage(self, chain_file, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", chain_file, "--workers", "many"])
        assert "expected a positive integer or 'auto'" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["0", "-2"])
    def test_workers_flag_rejects_non_positive(self, chain_file, bad, capsys):
        # 0 used to silently mean 1; it is a parse error now.
        with pytest.raises(SystemExit):
            main(["analyze", chain_file, "--workers", bad])
        assert "expected a positive integer or 'auto'" in capsys.readouterr().err

    def test_race_sets_exit_code(self, tmp_path, capsys):
        from repro import Netlist
        from repro.circuits import add_half_latch

        net = Netlist("racy")
        net.set_input("d")
        net.set_clock("phi1", "phi1")
        net.set_clock("phi2", "phi2")
        add_half_latch(net, "d", "q1", "phi1", tag="l1")
        add_half_latch(net, "q1", "q2", "phi1", tag="l2")
        add_half_latch(net, "q2", "q3", "phi2", tag="l3")
        net.set_output("q3")
        path = tmp_path / "racy.sim"
        path.write_text(sim_dumps(net))
        assert main(["analyze", str(path)]) == 1
        assert "RACES" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent.sim"]) == 2

    def test_bad_arrival_spec(self, chain_file):
        with pytest.raises(SystemExit):
            main(["analyze", chain_file, "--input-arrival", "nonsense"])

    def test_json_flag_emits_valid_schema(self, chain_file, capsys):
        from repro.core import validate_report

        assert main(["analyze", chain_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["mode"] == "combinational"
        assert payload["netlist"]["name"] == "invchain3"

    def test_json_flag_two_phase(self, clocked_file, capsys):
        from repro.core import validate_report

        assert main(["analyze", clocked_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["mode"] == "two-phase"
        assert payload["clock"]["min_cycle"] > 0

    def test_trace_flag_reports_phases(self, chain_file, capsys):
        assert main(["analyze", chain_file, "--trace"]) == 0
        captured = capsys.readouterr()
        assert "max delay" in captured.out  # report untouched
        assert "trace summary" in captured.err
        assert "extract" in captured.err


class TestExplain:
    def test_defaults_to_critical_endpoint(self, chain_file, capsys):
        assert main(["explain", chain_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("explain n2")
        assert "(exact)" in out
        assert "MISMATCH" not in out

    def test_named_node_and_transition(self, chain_file, capsys):
        assert main(
            ["explain", chain_file, "n1", "--transition", "rise"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("explain n1 (rise)")
        assert "(exact)" in out

    def test_sum_matches_analyze_max_delay(self, chain_file, capsys):
        main(["analyze", chain_file, "--json"])
        report = json.loads(capsys.readouterr().out)
        main(["explain", chain_file, "--json"])
        explanation = json.loads(capsys.readouterr().out)
        assert explanation["exact"] is True
        assert explanation["arrival"] == report["max_delay"]
        assert sum(
            r["delta"] for r in explanation["records"]
        ) == pytest.approx(report["max_delay"], rel=0, abs=0)

    def test_json_matches_schema(self, chain_file, capsys):
        from repro.core import validate_report
        from repro.core.report import REPORT_SCHEMA

        assert main(["explain", chain_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload, REPORT_SCHEMA["$defs"]["explanation"])

    def test_multiple_nodes_json_is_a_list(self, chain_file, capsys):
        assert main(["explain", chain_file, "n0", "n1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["endpoint"] for p in payload] == ["n0", "n1"]

    def test_two_phase_names_the_phase(self, clocked_file, capsys):
        assert main(["explain", clocked_file]) == 0
        out = capsys.readouterr().out
        assert " during phi" in out
        assert "(exact)" in out

    def test_unknown_node_exits_two(self, chain_file, capsys):
        assert main(["explain", chain_file, "no_such_node"]) == 2
        assert "no arrival" in capsys.readouterr().err


class TestErc:
    def test_clean(self, chain_file, capsys):
        assert main(["erc", chain_file]) == 0
        assert "clean" in capsys.readouterr().out

    def test_broken(self, tmp_path, capsys):
        path = tmp_path / "bad.sim"
        path.write_text("|I a\ne ghost y gnd\ne a q gnd\nd q q vdd\n")
        assert main(["erc", str(path)]) == 1
        assert "floating-gate" in capsys.readouterr().out


class TestFlow:
    def test_clean_flow(self, chain_file, capsys):
        assert main(["flow", chain_file]) == 0
        assert "auto-resolved" in capsys.readouterr().out

    def test_unresolved_exits_one(self, tmp_path, capsys):
        path = tmp_path / "island.sim"
        path.write_text("|I en\ne en u v\n")
        assert main(["flow", str(path)]) == 1
        assert "unresolved" in capsys.readouterr().out

    def test_hint_fixes_it(self, tmp_path, capsys):
        path = tmp_path / "island.sim"
        path.write_text("|I en\ne en u v\n")
        code = main(["flow", str(path), "--hint", "m*=s->d"])
        assert code == 0


class TestStats:
    def test_fingerprint(self, chain_file, capsys):
        assert main(["stats", chain_file]) == 0
        out = capsys.readouterr().out
        assert "6 devices" in out


class TestOptimize:
    def test_optimize_writes_output(self, tmp_path, capsys):
        net = inverter_chain(3, load=500e-15)
        src = tmp_path / "slow.sim"
        src.write_text(sim_dumps(net))
        out = tmp_path / "fast.sim"
        assert main(
            ["optimize", str(src), "--iterations", "3", "-o", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "iteration 1" in text
        resized = sim_loads(out.read_text())
        # Some device ended up wider than the original maximum width.
        original_max = max(d.w for d in net.devices.values())
        assert max(d.w for d in resized.devices.values()) >= original_max


class TestTechFile:
    def test_custom_tech_changes_delays(self, tmp_path, capsys):
        netfile = tmp_path / "chain.sim"
        netfile.write_text(sim_dumps(inverter_chain(3)))
        slow = dict(NMOS4.to_dict())
        slow["name"] = "slow"
        slow["r_sq_enh_pulldown"] = NMOS4.r_sq_enh_pulldown * 4
        slow["r_sq_dep_pullup"] = NMOS4.r_sq_dep_pullup * 4
        techfile = tmp_path / "slow.json"
        techfile.write_text(json.dumps(slow))

        main(["analyze", str(netfile)])
        base = capsys.readouterr().out
        main(["analyze", str(netfile), "--tech", str(techfile)])
        slowed = capsys.readouterr().out

        def delay(text):
            line = [l for l in text.splitlines() if "max delay" in l][0]
            return float(line.split(":")[1].split()[0])

        assert delay(slowed) > 1.5 * delay(base)

    def test_unknown_tech_key_rejected(self, tmp_path, chain_file, capsys):
        techfile = tmp_path / "typo.json"
        techfile.write_text(json.dumps({"vdd": 5.0, "vt_typo": 1.0}))
        # Unexpected exceptions map to a one-line exit-2 diagnostic;
        # --debug re-raises the original.
        assert main(["analyze", chain_file, "--tech", str(techfile)]) == 2
        assert "vt_typo" in capsys.readouterr().err
        with pytest.raises(ValueError):
            main(["--debug", "analyze", chain_file, "--tech", str(techfile)])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0


class TestCharge:
    def test_clean_design(self, chain_file, capsys):
        assert main(["charge", chain_file]) == 0
        assert "no charge-sharing hazards" in capsys.readouterr().out

    def test_hazard_detected(self, tmp_path, capsys):
        from repro import Netlist
        from repro.circuits import add_inverter, add_pass

        net = Netlist("hazard")
        net.set_input("d")
        net.set_clock("phi1", "phi1")
        net.set_clock("phi2", "phi2")
        add_pass(net, "phi1", "d", "store", name="sw")
        add_inverter(net, "store", "q", tag="i")
        net.add_node("bigbus", 500e-15)
        add_pass(net, "phi2", "store", "bigbus", name="leak")
        net.set_output("q")
        path = tmp_path / "hazard.sim"
        path.write_text(sim_dumps(net))
        assert main(["charge", str(path)]) == 1
        assert "charge sharing" in capsys.readouterr().out
        assert main(["charge", str(path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-charge-report"
        assert payload["hazards"][0]["node"] == "store"
        assert payload["hazards"][0]["retention"] < 0.5

    def test_json_clean_design(self, chain_file, capsys):
        assert main(["charge", chain_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["hazards"] == []


class TestErrorPolicyFlags:
    @pytest.fixture
    def broken_file(self, tmp_path):
        """A 4-stage chain whose second stage violates the ratio rule."""
        from tests.test_robust import chain_with_ratio_error

        path = tmp_path / "broken.sim"
        path.write_text(sim_dumps(chain_with_ratio_error(n=4, bad=1)))
        return str(path)

    def test_strict_default_exits_two(self, broken_file, capsys):
        assert main(["analyze", broken_file]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "ERC" in err or "erc" in err.lower()

    def test_quarantine_analyzes_the_rest(self, broken_file, capsys):
        assert main(["analyze", broken_file, "--on-error=quarantine"]) == 0
        out = capsys.readouterr().out
        assert "policy" in out and "quarantine" in out
        assert "coverage" in out
        assert "diag" in out and "ratio" in out

    def test_quarantine_json_carries_diagnostics(self, broken_file, capsys):
        from repro.core import validate_report

        code = main(
            ["analyze", broken_file, "--on-error=quarantine", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["schema_version"] == "1.3.0"
        assert payload["diagnostics"]["policy"] == "quarantine"
        assert payload["diagnostics"]["records"]
        assert payload["diagnostics"]["coverage"]["complete"] is False

    def test_explain_quarantined_node_says_why(self, broken_file, capsys):
        code = main(
            ["explain", broken_file, "n2", "--on-error=quarantine"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "quarantined" in err

    def test_best_effort_accepted(self, broken_file):
        assert main(["analyze", broken_file, "--on-error=best-effort"]) == 0

    def test_unknown_policy_rejected_by_argparse(self, broken_file):
        with pytest.raises(SystemExit):
            main(["analyze", broken_file, "--on-error=lenient"])


class TestFailureContract:
    def test_internal_error_maps_to_exit_two(self, chain_file, capsys,
                                             monkeypatch):
        import repro.cli as cli_module

        def explode(*args, **kwargs):
            raise RuntimeError("wired to fail")

        monkeypatch.setattr(cli_module, "TimingAnalyzer", explode)
        assert main(["analyze", chain_file]) == 2
        err = capsys.readouterr().err
        assert "internal error (RuntimeError)" in err
        assert "--debug" in err

    def test_debug_reraises_internal_error(self, chain_file, monkeypatch):
        import repro.cli as cli_module

        def explode(*args, **kwargs):
            raise RuntimeError("wired to fail")

        monkeypatch.setattr(cli_module, "TimingAnalyzer", explode)
        with pytest.raises(RuntimeError, match="wired to fail"):
            main(["--debug", "analyze", chain_file])

    def test_debug_reraises_repro_error(self, tmp_path):
        from repro import SimFormatError

        path = tmp_path / "bad.sim"
        path.write_text("z q r s\n")
        assert main(["analyze", str(path)]) == 2
        with pytest.raises(SimFormatError):
            main(["--debug", "analyze", str(path)])

    def test_missing_file_still_one_liner(self, capsys):
        assert main(["analyze", "/nonexistent.sim"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_broken_pipe_exits_quietly(self, chain_file, capsys, monkeypatch):
        import repro.cli as cli_module

        def gone(*args, **kwargs):
            raise BrokenPipeError(32, "Broken pipe")

        monkeypatch.setattr(cli_module, "TimingAnalyzer", gone)
        assert main(["analyze", chain_file]) == 0
        assert "internal error" not in capsys.readouterr().err
