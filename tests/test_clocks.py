"""Tests for the two-phase clock schema (repro.clocks)."""

import pytest

from repro import ClockingError, Netlist, TwoPhaseClock
from repro.circuits import shift_register


class TestSchema:
    def test_defaults(self):
        clock = TwoPhaseClock()
        assert clock.phases == ("phi1", "phi2")
        assert clock.nonoverlap > 0

    def test_other(self):
        clock = TwoPhaseClock()
        assert clock.other("phi1") == "phi2"
        assert clock.other("phi2") == "phi1"
        with pytest.raises(ClockingError):
            clock.other("phi3")

    def test_identical_phases_rejected(self):
        with pytest.raises(ClockingError):
            TwoPhaseClock(phase1="p", phase2="p")

    def test_negative_gap_rejected(self):
        with pytest.raises(ClockingError):
            TwoPhaseClock(nonoverlap=-1e-9)

    def test_cycle_time(self):
        clock = TwoPhaseClock(nonoverlap=2e-9)
        assert clock.cycle_time(10e-9, 20e-9) == pytest.approx(34e-9)

    def test_cycle_time_rejects_negative_widths(self):
        with pytest.raises(ClockingError):
            TwoPhaseClock().cycle_time(-1e-9, 1e-9)


class TestNetlistBinding:
    def test_clock_nodes_by_phase(self):
        net = shift_register(2)
        clock = TwoPhaseClock()
        assert clock.clock_nodes(net, "phi1") == {"phi1"}
        assert clock.clock_nodes(net, "phi2") == {"phi2"}

    def test_clock_nodes_unknown_phase(self):
        net = shift_register(2)
        with pytest.raises(ClockingError):
            TwoPhaseClock().clock_nodes(net, "phi9")

    def test_check_passes_on_proper_design(self):
        TwoPhaseClock().check(shift_register(2))

    def test_check_rejects_unknown_phase_label(self):
        net = Netlist("t")
        net.set_clock("c", "weird_phase")
        net.set_clock("phi1", "phi1")
        net.set_clock("phi2", "phi2")
        with pytest.raises(ClockingError):
            TwoPhaseClock().check(net)

    def test_check_rejects_missing_phase(self):
        net = Netlist("t")
        net.set_clock("phi1", "phi1")
        with pytest.raises(ClockingError):
            TwoPhaseClock().check(net)

    def test_multiple_nodes_per_phase(self):
        net = Netlist("t")
        net.set_clock("phi1a", "phi1")
        net.set_clock("phi1b", "phi1")
        net.set_clock("phi2", "phi2")
        clock = TwoPhaseClock()
        clock.check(net)
        assert clock.clock_nodes(net, "phi1") == {"phi1a", "phi1b"}
