"""Tests for two-phase verification internals (repro.core.constraints)."""

import pytest

from repro import Netlist, TimingAnalyzer, TwoPhaseClock
from repro.circuits import (
    add_half_latch,
    manchester_adder,
    register_file,
    shift_register,
)
from repro.core import latch_devices, storage_nodes_of_phase
from repro.core.constraints import qualified_low_nodes
from repro.errors import ClockingError


class TestLatchIdentification:
    def test_shift_register_latches(self):
        net = shift_register(2)
        phi1_latches = latch_devices(net, frozenset({"phi1"}))
        phi2_latches = latch_devices(net, frozenset({"phi2"}))
        assert len(phi1_latches) == 2
        assert len(phi2_latches) == 2

    def test_precharge_not_a_latch(self):
        net = manchester_adder(2)
        for dev in latch_devices(net, frozenset({"phi1"})):
            assert "pre" not in dev.name

    def test_storage_nodes(self):
        net = shift_register(2)
        clock = TwoPhaseClock()
        s1 = storage_nodes_of_phase(net, clock, "phi1")
        s2 = storage_nodes_of_phase(net, clock, "phi2")
        assert len(s1) == 2 and len(s2) == 2
        assert not (s1 & s2)


class TestQualifiedClocks:
    def test_qualified_wordline_low_in_opposite_phase(self):
        net, ports = register_file(4, 2)
        clock = TwoPhaseClock()
        low_phi1 = qualified_low_nodes(net, clock, "phi1")
        # Read wordlines are phi2-qualified: provably low during phi1.
        assert any("rwl" in n for n in low_phi1)
        low_phi2 = qualified_low_nodes(net, clock, "phi2")
        assert any("wwl" in n for n in low_phi2)

    def test_data_dependent_nodes_not_constant(self):
        net, ports = register_file(4, 2)
        clock = TwoPhaseClock()
        low = qualified_low_nodes(net, clock, "phi1")
        # Write wordlines depend on we/address (unknown): must NOT be cut
        # during their own phase.
        assert not any("wwl" in n for n in low)


class TestVerification:
    def test_phase_widths_positive(self):
        result = TimingAnalyzer(shift_register(3)).analyze()
        for phase in ("phi1", "phi2"):
            assert result.clock_verification.phases[phase].width > 0

    def test_min_cycle_formula(self):
        clock = TwoPhaseClock(nonoverlap=5e-9)
        result = TimingAnalyzer(shift_register(2), clock=clock).analyze()
        v = result.clock_verification
        expected = (
            v.phases["phi1"].width + v.phases["phi2"].width + 10e-9
        )
        assert v.min_cycle == pytest.approx(expected)

    def test_summary_text(self):
        result = TimingAnalyzer(shift_register(2)).analyze()
        text = result.clock_verification.summary()
        assert "min width phi1" in text
        assert "min cycle time" in text
        assert "races: none" in text

    def test_violations_at_width(self):
        result = TimingAnalyzer(shift_register(2)).analyze()
        phase = result.clock_verification.phases["phi1"]
        assert phase.violations_at_width(phase.width + 1e-9) == []
        late = phase.violations_at_width(phase.width * 0.01)
        assert late

    def test_arrival_for_unknown_input_rejected(self):
        from repro.core import verify_two_phase
        from repro.delay import StageDelayCalculator
        from repro.flow import infer_flow
        from repro.stages import decompose

        net = shift_register(2)
        infer_flow(net)
        calc = StageDelayCalculator(net, decompose(net))
        with pytest.raises(ClockingError):
            verify_two_phase(
                net, calc, TwoPhaseClock(), input_arrivals={"ghost": 0.0}
            )

    def test_race_summary_printed(self):
        net = Netlist("racy")
        net.set_input("d")
        net.set_clock("phi1", "phi1")
        net.set_clock("phi2", "phi2")
        add_half_latch(net, "d", "q1", "phi1", tag="l1")
        add_half_latch(net, "q1", "q2", "phi1", tag="l2")
        add_half_latch(net, "q2", "q3", "phi2", tag="l3")
        net.set_output("q3")
        result = TimingAnalyzer(net).analyze()
        text = result.clock_verification.summary()
        assert "RACES" in text
