"""Tests for PLA-based control: FSMs, the sequencer, and the toy CPU."""

import pytest

from repro import TimingAnalyzer
from repro.circuits import Transition, fsm, sequencer, toy_cpu
from repro.errors import NetlistError
from repro.sim import SwitchSim


def cycle(sim):
    sim.step({"phi1": 1, "phi2": 0})
    sim.step({"phi1": 0, "phi2": 1})
    sim.step({"phi1": 0, "phi2": 0})


def reset(sim, ports, cycles=2):
    sim.set_input(ports.reset, 1)
    for _ in range(cycles):
        cycle(sim)
    sim.set_input(ports.reset, 0)


class TestFsm:
    def _toggler(self):
        """Two states: toggle while in0=1, hold while in0=0."""
        transitions = [
            Transition(state=0, inputs={0: 1}, next_state=1, outputs=(0,)),
            Transition(state=1, inputs={0: 1}, next_state=0, outputs=(1,)),
            Transition(state=1, inputs={0: 0}, next_state=1, outputs=(1,)),
        ]
        return fsm(2, 1, 2, transitions, name="toggler")

    def test_toggles(self):
        net, ports = self._toggler()
        sim = SwitchSim(net)
        sim.set_input("in0", 1)
        reset(sim, ports)
        seen = []
        for _ in range(4):
            cycle(sim)
            seen.append(sim.word(ports.state))
        assert seen in ([0, 1, 0, 1], [1, 0, 1, 0])

    def test_hold_state(self):
        net, ports = self._toggler()
        sim = SwitchSim(net)
        sim.set_input("in0", 1)
        reset(sim, ports)
        cycle(sim)
        while sim.word(ports.state) != 1:
            cycle(sim)
        sim.set_input("in0", 0)
        for _ in range(3):
            cycle(sim)
            assert sim.word(ports.state) == 1

    def test_default_next_state_is_zero(self):
        # No transition defined from state 1 with in0=0: the PLA default
        # must take the machine back to 0.
        transitions = [
            Transition(state=0, inputs={0: 1}, next_state=1, outputs=(0,)),
            Transition(state=1, inputs={0: 1}, next_state=1, outputs=(1,)),
        ]
        net, ports = fsm(2, 1, 2, transitions, name="falls-back")
        sim = SwitchSim(net)
        sim.set_input("in0", 1)
        reset(sim, ports)
        while sim.word(ports.state) != 1:
            cycle(sim)
        sim.set_input("in0", 0)
        cycle(sim)
        cycle(sim)
        assert sim.word(ports.state) == 0

    def test_validation(self):
        with pytest.raises(NetlistError):
            fsm(1, 1, 1, [])
        with pytest.raises(NetlistError):
            fsm(2, 1, 1, [Transition(state=5, next_state=0, outputs=(0,))])
        with pytest.raises(NetlistError):
            fsm(2, 1, 1, [Transition(state=0, inputs={7: 1}, outputs=(0,))])
        with pytest.raises(NetlistError):
            fsm(2, 1, 1, [], master_phase="phi1", slave_phase="phi1")

    def test_timing_clean(self):
        net, _ = self._toggler()
        result = TimingAnalyzer(net).analyze()
        assert result.clock_verification.races == []
        assert result.min_cycle > 0


class TestSequencer:
    def test_walks_one_hot(self):
        net, ports = sequencer(4)
        sim = SwitchSim(net)
        sim.set_input("in0", 1)
        reset(sim, ports)
        states = []
        for _ in range(8):
            cycle(sim)
            state = sim.word(ports.state)
            states.append(state)
            ctl = [sim.value(c) for c in ports.outputs]
            assert sum(ctl) == 1 and ctl[state] == 1
        # Consecutive states advance mod 4.
        for a, b in zip(states, states[1:]):
            assert b == (a + 1) % 4

    def test_parks_when_stopped(self):
        net, ports = sequencer(4)
        sim = SwitchSim(net)
        sim.set_input("in0", 1)
        reset(sim, ports)
        cycle(sim)
        sim.set_input("in0", 0)
        cycle(sim)
        cycle(sim)
        assert sim.word(ports.state) == 0
        for _ in range(2):
            cycle(sim)
            assert sim.word(ports.state) == 0


class TestToyCpu:
    def test_structure_and_timing(self):
        cpu, ports = toy_cpu(8, 4)
        result = TimingAnalyzer(cpu).analyze()
        assert result.mode == "two-phase"
        assert result.clock_verification.races == []
        assert result.flow.coverage == pytest.approx(1.0)
        assert 30e-9 < result.min_cycle < 1000e-9

    def test_sequenced_alu_ops(self):
        width = 4
        cpu, ports = toy_cpu(width, 2)
        sim = SwitchSim(cpu)
        # Zero the register file cells so the A operand is known.
        for name in list(sim._values):
            if name.endswith(".s") and "cell" in name:
                sim._values[name] = 0
            if name.endswith(".ns") and "cell" in name:
                sim._values[name] = 1
        sim.set_input(ports["run"], 1)
        sim.set_input(ports["write_enable"], 0)
        sim.set_input(ports["carry_in"], 0)
        sim.set_word(ports["address"], 0)
        sim.set_word(ports["shift_select"], 1)  # no rotation
        sim.set_word(ports["b"], 0b0101)
        sim.set_input(ports["reset"], 1)
        cycle(sim)
        cycle(sim)
        sim.set_input(ports["reset"], 0)

        # Walk a full op sequence; with A = 0 and B = 5:
        # add -> 5, and -> 0, or -> 5, xor -> 5.  The state register's
        # slave opens during phi1, so the op evaluated in phi2 -- and the
        # result latched there -- belongs to the *post-update* state.
        expected_by_state = {0: 5, 1: 0, 2: 5, 3: 5}
        seen = {}
        for _ in range(6):
            cycle(sim)
            state = sim.word(ports["state"])
            result = sim.word(ports["result"])
            if state is not None and result is not None:
                seen[state] = result
        assert seen, "no complete state/result observations"
        for state, result in seen.items():
            assert result == expected_by_state[state], (state, result)
