"""Tests for the timing graph and arrival propagation (repro.core)."""

import pytest

from repro.core import TimingGraph, propagate
from repro.core.arrival import ArrivalMap
from repro.delay import FALL, NO_SLOPE, RISE, ArcTiming, SlopeModel, StageArc
from repro.errors import TimingError

NS = 1e-9


def arc(trigger, output, *, inverting=True, rise=1 * NS, fall=1 * NS, stage=0):
    return StageArc(
        stage_index=stage,
        trigger=trigger,
        via="gate",
        output=output,
        inverting=inverting,
        rise=ArcTiming(rise, rise) if rise is not None else None,
        fall=ArcTiming(fall, fall) if fall is not None else None,
    )


class TestTimingGraph:
    def test_linear_chain_orders_topologically(self):
        graph = TimingGraph.build([arc("a", "b"), arc("b", "c")])
        assert graph.order.index("a") < graph.order.index("b") < graph.order.index("c")
        assert graph.arc_count() == 2

    def test_feedback_cut_and_recorded(self):
        graph = TimingGraph.build([arc("a", "b"), arc("b", "a")])
        assert len(graph.cut_arcs) == 1
        assert graph.arc_count() == 1

    def test_self_arc_dropped(self):
        graph = TimingGraph.build([arc("a", "a"), arc("a", "b")])
        assert graph.arc_count() == 1

    def test_parallel_arcs_kept(self):
        graph = TimingGraph.build([
            arc("a", "b", rise=1 * NS),
            arc("a", "b", rise=2 * NS, inverting=False),
        ])
        assert graph.arc_count() == 2

    def test_larger_cycle_needs_single_cut(self):
        arcs = [arc("a", "b"), arc("b", "c"), arc("c", "a"), arc("x", "a")]
        graph = TimingGraph.build(arcs)
        assert len(graph.cut_arcs) == 1
        assert graph.arc_count() == 3


class TestPropagate:
    def test_inverting_arc_crosses_transitions(self):
        graph = TimingGraph.build([arc("a", "b", rise=2 * NS, fall=1 * NS)])
        arrivals = propagate(graph, {("a", RISE): 0.0}, NO_SLOPE)
        # a rise -> b fall via fall timing.
        assert arrivals.get("b", FALL).time == pytest.approx(1 * NS)
        assert arrivals.get("b", RISE) is None

    def test_noninverting_arc_keeps_transition(self):
        graph = TimingGraph.build(
            [arc("a", "b", inverting=False, rise=2 * NS, fall=1 * NS)]
        )
        arrivals = propagate(graph, {("a", RISE): 0.0}, NO_SLOPE)
        assert arrivals.get("b", RISE).time == pytest.approx(2 * NS)

    def test_worst_arrival_wins(self):
        arcs = [
            arc("a", "c", rise=1 * NS, fall=1 * NS),
            arc("b", "c", rise=5 * NS, fall=5 * NS),
        ]
        graph = TimingGraph.build(arcs)
        arrivals = propagate(
            graph, {("a", RISE): 0.0, ("b", RISE): 0.0}, NO_SLOPE
        )
        assert arrivals.get("c", FALL).time == pytest.approx(5 * NS)
        assert arrivals.get("c", FALL).pred == ("b", RISE)

    def test_chain_accumulates(self):
        graph = TimingGraph.build([arc("a", "b"), arc("b", "c"), arc("c", "d")])
        arrivals = propagate(graph, {("a", RISE): 0.0, ("a", FALL): 0.0}, NO_SLOPE)
        assert arrivals.worst("d").time == pytest.approx(3 * NS)

    def test_source_offset_respected(self):
        graph = TimingGraph.build([arc("a", "b")])
        arrivals = propagate(graph, {("a", RISE): 7 * NS}, NO_SLOPE)
        assert arrivals.get("b", FALL).time == pytest.approx(8 * NS)

    def test_slope_adds_to_delay(self):
        graph = TimingGraph.build([arc("a", "b", fall=1 * NS)])
        slow = propagate(
            graph,
            {("a", RISE): 0.0},
            SlopeModel(alpha=0.5),
            source_slew=2 * NS,
        )
        assert slow.get("b", FALL).time == pytest.approx(2 * NS)

    def test_slew_degrades_downstream(self):
        graph = TimingGraph.build([arc("a", "b"), arc("b", "c")])
        arrivals = propagate(
            graph, {("a", RISE): 0.0}, SlopeModel(), source_slew=1 * NS
        )
        assert arrivals.get("c", RISE).slew > 0

    def test_missing_timing_blocks_transition(self):
        graph = TimingGraph.build([arc("a", "b", rise=None, fall=1 * NS)])
        arrivals = propagate(graph, {("a", FALL): 0.0}, NO_SLOPE)
        # a fall -> b rise needs rise timing, which is absent.
        assert arrivals.get("b", RISE) is None

    def test_empty_sources_rejected(self):
        graph = TimingGraph.build([arc("a", "b")])
        with pytest.raises(TimingError):
            propagate(graph, {}, NO_SLOPE)

    def test_bad_transition_rejected(self):
        graph = TimingGraph.build([arc("a", "b")])
        with pytest.raises(TimingError):
            propagate(graph, {("a", "sideways"): 0.0}, NO_SLOPE)


class TestArrivalMap:
    def test_max_arrival_restriction(self):
        graph = TimingGraph.build([arc("a", "b"), arc("a", "c", fall=9 * NS, rise=9 * NS)])
        arrivals = propagate(graph, {("a", RISE): 0.0}, NO_SLOPE)
        assert arrivals.max_arrival({"b"}).node == "b"
        assert arrivals.max_arrival(None).node == "c"

    def test_worst_picks_later_transition(self):
        m = ArrivalMap()
        from repro.core.arrival import Arrival

        m.set(Arrival("n", RISE, 1 * NS, 0.0))
        m.set(Arrival("n", FALL, 2 * NS, 0.0))
        assert m.worst("n").transition == FALL

    def test_len_and_nodes(self):
        graph = TimingGraph.build([arc("a", "b")])
        arrivals = propagate(graph, {("a", RISE): 0.0, ("a", FALL): 0.0}, NO_SLOPE)
        assert arrivals.nodes() == {"a", "b"}
        assert len(arrivals) == 4
