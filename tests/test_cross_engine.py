"""Cross-engine invariants: the three tools must agree with each other.

The 1983 flow's credibility rested on its tools telling one consistent
story: the switch simulator and the event simulator compute the same
values; no event-simulated vector settles after the static analyzer's
worst-case bound; the functional simulators agree with SPICE-lite's DC
levels.  These tests pin those contracts on randomized circuits.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import TimingAnalyzer
from repro.circuits import bus, full_adder, random_logic, ripple_adder
from repro.errors import SimulationError
from repro.sim import RSim, SpiceLite, SwitchSim, TransientOptions, constant, X


class TestSwitchVsEvent:
    @given(st.integers(0, 2**31 - 1), st.integers(0, 255))
    @settings(max_examples=15, deadline=None)
    def test_same_final_values_on_random_logic(self, seed, vector):
        net = random_logic(150, seed=seed)
        inputs = {name: (vector >> i) & 1 for i, name in enumerate(sorted(net.inputs))}

        switch = SwitchSim(net)
        switch.step(inputs)

        rsim = RSim(net)
        rsim.run_vector(inputs)

        for node in net.nodes:
            assert switch.value(node) == rsim.value(node), node

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    @settings(max_examples=20, deadline=None)
    def test_adder_agreement(self, a, b, cin):
        net = ripple_adder(4)
        vector = {}
        for i in range(4):
            vector[f"a{i}"] = (a >> i) & 1
            vector[f"b{i}"] = (b >> i) & 1
        vector["cin"] = cin

        switch = SwitchSim(net)
        switch.step(vector)
        rsim = RSim(net)
        rsim.run_vector(vector)
        assert switch.word(bus("sum", 4)) == rsim.word(bus("sum", 4))
        assert switch.value("cout") == rsim.value("cout")


class TestEventVsStatic:
    def test_event_settle_never_exceeds_static_bound_strict(self):
        # On flow-clean structures (no pass switch can backdrive its
        # source), the invariant is exact: every event hop is charged no
        # more than its static arc.  The ripple adder is the canonical
        # such design; checked exhaustively per input.
        net = ripple_adder(4)
        result = TimingAnalyzer(net).analyze()
        rsim = RSim(net)
        inputs = sorted(net.inputs)
        rsim.run_vector({name: 0 for name in inputs})
        for flip in inputs:
            since = rsim.now
            rsim.run_vector({flip: 1})
            for node in net.nodes:
                settle = rsim.settle_time_of(node, since)
                static = result.arrival_of(node)
                if settle is None or static is None:
                    continue
                assert settle - since <= static + 1e-12, (flip, node)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_event_settle_tracks_static_bound_on_random_logic(self, seed):
        # Random logic contains muxes whose closed switches let sources
        # backdrive each other -- electrical behaviour the switch
        # simulator reproduces but design-intent (flow-directed) static
        # analysis rightly excludes.  The bound therefore holds with a
        # documented tolerance rather than exactly.
        net = random_logic(120, seed=seed)
        result = TimingAnalyzer(net).analyze()
        rsim = RSim(net, max_events_per_node=256)

        inputs = sorted(net.inputs)
        try:
            rsim.run_vector({name: 0 for name in inputs})
            since = rsim.now
            rsim.run_vector({name: 1 for name in inputs})
        except SimulationError:
            # The same backdriving can close an electrical feedback loop
            # the flow-directed timing graph does not contain, and the
            # event simulation oscillates instead of settling.  With no
            # settle time there is no bound to check -- discard the
            # example rather than fail on an invariant that does not
            # apply (seed 227 is one such circuit).
            assume(False)

        for node in net.nodes:
            settle = rsim.settle_time_of(node, since)
            if settle is None:
                continue
            static = result.arrival_of(node)
            if static is None:
                continue
            bound = max(static * 1.5, static + 2e-9)
            assert settle - since <= bound, node


class TestSwitchVsSpice:
    def test_dc_levels_agree_on_full_adder(self):
        net = full_adder()
        options = TransientOptions(dt=0.3e-9, settle=25e-9)
        for a in (0, 1):
            for b in (0, 1):
                switch = SwitchSim(net)
                switch.step({"a": a, "b": b, "cin": 1})
                sim = SpiceLite(net, options=options)
                wave = sim.transient(
                    {
                        "a": constant(5.0 * a),
                        "b": constant(5.0 * b),
                        "cin": constant(5.0),
                    },
                    5e-9,
                    record=["sum", "cout"],
                )
                for node in ("sum", "cout"):
                    logic = switch.value(node)
                    volts = wave.final_value(node)
                    assert logic is not X
                    if logic == 1:
                        assert volts > 3.0, (node, a, b)
                    else:
                        assert volts < 1.5, (node, a, b)
