"""Tests for slope correction, effective resistances, and stage arcs."""

import math

import pytest

from repro import DeviceKind, Netlist, UM
from repro.circuits import (
    inverter_chain,
    manchester_adder,
    mux2,
    nand,
    nor,
    pass_chain,
    superbuffer,
)
from repro.delay import (
    DELAY_MODELS,
    FALL,
    NO_SLOPE,
    RISE,
    SlopeModel,
    StageDelayCalculator,
    device_resistance,
)
from repro.errors import ReproError, StageError
from repro.flow import infer_flow
from repro.netlist import Transistor
from repro.stages import decompose


def calculator(net, **kwargs) -> StageDelayCalculator:
    infer_flow(net)
    return StageDelayCalculator(net, decompose(net), **kwargs)


def arc_for(arcs, trigger, output):
    matches = [a for a in arcs if a.trigger == trigger and a.output == output]
    assert matches, f"no arc {trigger} -> {output} in {arcs}"
    return matches[0]


class TestSlopeModel:
    def test_delay_adds_alpha_fraction(self):
        m = SlopeModel(alpha=0.4)
        assert m.delay(1e-9, 2e-9) == pytest.approx(1.8e-9)

    def test_no_slope_is_identity(self):
        assert NO_SLOPE.delay(1e-9, 5e-9) == pytest.approx(1e-9)

    def test_output_slew_single_pole(self):
        m = SlopeModel(beta=0.0)
        assert m.output_slew(1e-9, 0.0) == pytest.approx(math.log(9.0) * 1e-9)

    def test_slow_input_slows_output(self):
        m = SlopeModel()
        assert m.output_slew(1e-9, 4e-9) > m.output_slew(1e-9, 0.0)


class TestDeviceResistance:
    def _dev(self, kind=DeviceKind.ENH, **kw):
        defaults = dict(
            name="m", kind=kind, gate="g", source="s", drain="d",
            w=8 * UM, l=4 * UM,
        )
        defaults.update(kw)
        return Transistor(**defaults)

    def test_pass_rise_slower_than_fall(self):
        from repro import NMOS4
        dev = self._dev()
        r_rise = device_resistance(NMOS4, dev, "pass", RISE)
        r_fall = device_resistance(NMOS4, dev, "pass", FALL)
        assert r_rise > r_fall

    def test_pass_fall_is_pulldown_class(self):
        # Transmitting a low, a pass device has full gate drive: it is as
        # strong as a grounded-source pull-down.
        from repro import NMOS4
        dev = self._dev()
        assert device_resistance(NMOS4, dev, "pass", FALL) == (
            device_resistance(NMOS4, dev, "pulldown", FALL)
        )
        assert device_resistance(NMOS4, dev, "pass", RISE) > (
            device_resistance(NMOS4, dev, "pulldown", FALL)
        )

    def test_role_kind_mismatch_rejected(self):
        from repro import NMOS4
        with pytest.raises(ReproError):
            device_resistance(NMOS4, self._dev(), "pullup", RISE)
        with pytest.raises(ReproError):
            device_resistance(
                NMOS4, self._dev(kind=DeviceKind.DEP), "pulldown", FALL
            )

    def test_unknown_role_and_transition_rejected(self):
        from repro import NMOS4
        with pytest.raises(ReproError):
            device_resistance(NMOS4, self._dev(), "nonsense", RISE)
        with pytest.raises(ReproError):
            device_resistance(NMOS4, self._dev(), "pass", "sideways")


class TestInverterArcs:
    def test_inverting_arc_shape(self, inverter_net):
        calc = calculator(inverter_net)
        arcs = calc.arcs(calc.graph[0])
        arc = arc_for(arcs, "a", "out")
        assert arc.inverting
        assert arc.via == "gate"
        assert arc.fall is not None and arc.rise is not None

    def test_rise_slower_than_fall(self, inverter_net):
        # Ratioed nMOS: weak pull-up, strong pull-down.
        calc = calculator(inverter_net)
        arc = arc_for(calc.arcs(calc.graph[0]), "a", "out")
        assert arc.rise.delay > arc.fall.delay

    def test_load_increases_delay(self):
        light = inverter_chain(1)
        heavy = inverter_chain(1, load=100e-15)
        calc_l = calculator(light)
        calc_h = calculator(heavy)
        arc_l = arc_for(calc_l.arcs(calc_l.graph[0]), "a", "n0")
        arc_h = arc_for(calc_h.arcs(calc_h.graph[0]), "a", "n0")
        assert arc_h.fall.delay > arc_l.fall.delay
        assert arc_h.rise.delay > arc_l.rise.delay


class TestSeriesGates:
    def test_nand_fall_slower_than_nor(self):
        # Same-size devices: series pull-down beats parallel on resistance,
        # but NAND devices are widened by k; compare NAND3 vs NOR3 interior
        # structure instead via path length.
        net3 = nand(3)
        calc = calculator(net3)
        arc = arc_for(calc.arcs(calc.graph[0]), "a0", "out")
        assert len(arc.fall.path) == 3  # three series devices on the path

    def test_nor_fall_path_single_device(self):
        net = nor(3)
        calc = calculator(net)
        arc = arc_for(calc.arcs(calc.graph[0]), "a1", "out")
        assert len(arc.fall.path) == 1


class TestPassArcs:
    def test_channel_arc_from_input(self):
        net = pass_chain(4)
        calc = calculator(net)
        stage = calc.graph.stage_of("p0")
        arcs = calc.arcs(stage)
        arc = arc_for(arcs, "d", "p3")
        assert arc.via == "channel"
        assert not arc.inverting
        assert arc.rise is not None and arc.fall is not None

    def test_chain_delay_grows_superlinearly(self):
        def chain_delay(n):
            net = pass_chain(n)
            calc = calculator(net)
            stage = calc.graph.stage_of("p0")
            arc = arc_for(calc.arcs(stage), "d", f"p{n-1}")
            return arc.rise.delay

        d2, d8 = chain_delay(2), chain_delay(8)
        assert d8 > 4 * (8 / 2) / 2 * d2 / 4  # strictly more than linear
        assert d8 / d2 > 6.0

    def test_gate_arc_through_pass(self, pass_mux_net):
        calc = calculator(pass_mux_net)
        stage = calc.graph.stage_of("x")
        arcs = calc.arcs(stage)
        arc = arc_for(arcs, "a", "y")
        assert arc.inverting
        # The fall path runs through the switch and the inverter pulldown.
        assert "sw" in arc.fall.path


class TestClockedArcs:
    def test_latch_clock_arc(self, latch_net):
        calc = calculator(latch_net)
        stage = calc.graph.stage_of("store")
        arcs = calc.arcs(stage, active_clocks=frozenset({"phi1"}))
        arc = arc_for(arcs, "phi1", "store")
        assert not arc.inverting

    def test_inactive_clock_cuts_conduction(self, latch_net):
        calc = calculator(latch_net)
        stage = calc.graph.stage_of("store")
        arcs = calc.arcs(stage, active_clocks=frozenset({"phi2"}))
        assert not [a for a in arcs if a.output == "store"]

    def test_precharge_arc(self):
        net = manchester_adder(2)
        calc = calculator(net)
        stage = calc.graph.stage_of("man.nc0")
        arcs = calc.arcs(stage, active_clocks=frozenset({"phi1"}))
        arc = arc_for(arcs, "phi1", "man.nc0")
        assert arc.rise is not None
        assert arc.fall is None  # precharge only pulls up


class TestSuperbufferArcs:
    def test_follower_rise_arc(self):
        net = superbuffer()
        calc = calculator(net)
        stage = calc.graph.stage_of("out")
        arcs = calc.arcs(stage)
        follower_arcs = [
            a for a in arcs if a.output == "out" and not a.inverting
        ]
        assert follower_arcs
        assert follower_arcs[0].rise is not None

    def test_superbuffer_drives_faster_than_plain_inverter(self):
        from repro.circuits import inverter

        sb = superbuffer()
        sb.add_cap("out", 200e-15)
        inv = inverter()
        inv.add_cap("out", 200e-15)
        calc_sb = calculator(sb)
        calc_inv = calculator(inv)
        sb_stage = calc_sb.graph.stage_of("out")
        rise_sb = max(
            a.rise.delay
            for a in calc_sb.arcs(sb_stage)
            if a.output == "out" and a.rise
        )
        inv_arc = arc_for(calc_inv.arcs(calc_inv.graph[0]), "a", "out")
        assert rise_sb < inv_arc.rise.delay


class TestModels:
    def test_unknown_model_rejected(self, inverter_net):
        infer_flow(inverter_net)
        with pytest.raises(StageError):
            StageDelayCalculator(
                inverter_net, decompose(inverter_net), model="spice"
            )

    @pytest.mark.parametrize("model", DELAY_MODELS)
    def test_all_models_produce_positive_delays(self, model):
        net = pass_chain(4)
        calc = calculator(net, model=model)
        stage = calc.graph.stage_of("p0")
        arc = arc_for(calc.arcs(stage), "d", "p3")
        assert arc.rise.delay > 0

    def test_model_ordering_on_chain(self):
        # pr-min <= elmore <= pr-max <= lumped-ish on a chain.
        net = pass_chain(6)
        delays = {}
        for model in DELAY_MODELS:
            calc = calculator(net, model=model)
            stage = calc.graph.stage_of("p0")
            arc = arc_for(calc.arcs(stage), "d", "p5")
            delays[model] = arc.rise.delay
        assert delays["pr-min"] <= delays["elmore"] <= delays["pr-max"]

    def test_exclusive_groups_prune_paths(self):
        net = mux2()  # sel/nsel declared exclusive by the generator
        calc = calculator(net)
        stage = calc.graph.stage_of("out")
        arc = arc_for(calc.arcs(stage), "a", "out")
        # Path a->out must use exactly one of the two mux switches.
        assert len(arc.rise.path) == 1
