"""Tests for the level-1 MOS device model (repro.sim.devices)."""

import pytest

from repro import NMOS4, DeviceKind, UM
from repro.sim import mos_current, threshold

W, L = 8 * UM, 4 * UM


def ids(kind, vg, vs, vd):
    return mos_current(NMOS4, kind, vg, vs, vd, W, L)[0]


class TestRegions:
    def test_cutoff(self):
        assert ids(DeviceKind.ENH, 0.5, 0.0, 5.0) == 0.0

    def test_conducts_above_threshold(self):
        assert ids(DeviceKind.ENH, 5.0, 0.0, 5.0) > 0.0

    def test_triode_current_grows_with_vds(self):
        i1 = ids(DeviceKind.ENH, 5.0, 0.0, 0.5)
        i2 = ids(DeviceKind.ENH, 5.0, 0.0, 1.0)
        assert i2 > i1

    def test_saturation_nearly_flat(self):
        i1 = ids(DeviceKind.ENH, 3.0, 0.0, 4.0)
        i2 = ids(DeviceKind.ENH, 3.0, 0.0, 5.0)
        assert i2 > i1  # channel-length modulation
        assert (i2 - i1) / i1 < 0.05

    def test_continuous_at_region_boundary(self):
        vov = 5.0 - NMOS4.vt_enh
        below = ids(DeviceKind.ENH, 5.0, 0.0, vov - 1e-9)
        above = ids(DeviceKind.ENH, 5.0, 0.0, vov + 1e-9)
        assert below == pytest.approx(above, rel=1e-6)

    def test_depletion_conducts_at_zero_vgs(self):
        assert ids(DeviceKind.DEP, 0.0, 0.0, 2.0) > 0.0

    def test_thresholds(self):
        assert threshold(NMOS4, DeviceKind.ENH) == NMOS4.vt_enh
        assert threshold(NMOS4, DeviceKind.DEP) == NMOS4.vt_dep


class TestSymmetry:
    def test_reversed_terminals_negate_current(self):
        fwd = ids(DeviceKind.ENH, 5.0, 1.0, 3.0)
        rev = ids(DeviceKind.ENH, 5.0, 3.0, 1.0)
        assert rev == pytest.approx(-fwd)

    def test_zero_vds_zero_current(self):
        assert ids(DeviceKind.ENH, 5.0, 2.0, 2.0) == pytest.approx(0.0)


class TestDerivatives:
    @pytest.mark.parametrize(
        "kind,vg,vs,vd",
        [
            (DeviceKind.ENH, 5.0, 0.0, 0.5),  # triode
            (DeviceKind.ENH, 3.0, 0.0, 4.5),  # saturation
            (DeviceKind.ENH, 5.0, 3.0, 1.0),  # reversed
            (DeviceKind.DEP, 0.0, 1.0, 4.0),  # depletion
            (DeviceKind.ENH, 2.5, 1.2, 1.3),  # near-symmetric point
        ],
    )
    def test_analytic_matches_finite_difference(self, kind, vg, vs, vd):
        h = 1e-7
        i0, dg, ds_, dd = mos_current(NMOS4, kind, vg, vs, vd, W, L)
        fd_g = (ids(kind, vg + h, vs, vd) - ids(kind, vg - h, vs, vd)) / (2 * h)
        fd_s = (ids(kind, vg, vs + h, vd) - ids(kind, vg, vs - h, vd)) / (2 * h)
        fd_d = (ids(kind, vg, vs, vd + h) - ids(kind, vg, vs, vd - h)) / (2 * h)
        scale = max(1e-6, abs(fd_g), abs(fd_s), abs(fd_d))
        assert dg == pytest.approx(fd_g, abs=1e-7 * scale + 1e-12)
        assert ds_ == pytest.approx(fd_s, abs=1e-7 * scale + 1e-12)
        assert dd == pytest.approx(fd_d, abs=1e-7 * scale + 1e-12)

    def test_current_scales_with_width(self):
        narrow = mos_current(NMOS4, DeviceKind.ENH, 5.0, 0.0, 5.0, W, L)[0]
        wide = mos_current(NMOS4, DeviceKind.ENH, 5.0, 0.0, 5.0, 2 * W, L)[0]
        assert wide == pytest.approx(2 * narrow)
