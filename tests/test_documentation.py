"""Documentation gate: every public item carries a docstring.

The deliverable promises doc comments on the whole public API; this test
makes that promise self-enforcing -- a new public function without a
docstring fails CI.
"""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.tech",
    "repro.errors",
    "repro.clocks",
    "repro.netlist",
    "repro.netlist.components",
    "repro.netlist.netlist",
    "repro.netlist.simfmt",
    "repro.netlist.validate",
    "repro.stages",
    "repro.stages.stage",
    "repro.stages.decompose",
    "repro.stages.classify",
    "repro.stages.archetypes",
    "repro.flow",
    "repro.flow.direction",
    "repro.flow.hints",
    "repro.delay",
    "repro.delay.rctree",
    "repro.delay.elmore",
    "repro.delay.penfield",
    "repro.delay.slope",
    "repro.delay.effective_res",
    "repro.delay.stage_delay",
    "repro.core",
    "repro.core.graph",
    "repro.core.arrival",
    "repro.core.paths",
    "repro.core.constraints",
    "repro.core.mindelay",
    "repro.core.charge",
    "repro.core.analyzer",
    "repro.core.report",
    "repro.sim",
    "repro.sim.devices",
    "repro.sim.spicelite",
    "repro.sim.switchsim",
    "repro.sim.rsim",
    "repro.sim.waveforms",
    "repro.sim.stimuli",
    "repro.sim.measure",
    "repro.sim.vectors",
    "repro.circuits",
    "repro.circuits.primitives",
    "repro.circuits.logic",
    "repro.circuits.latches",
    "repro.circuits.adders",
    "repro.circuits.shifter",
    "repro.circuits.pla",
    "repro.circuits.regfile",
    "repro.circuits.datapath",
    "repro.circuits.control",
    "repro.circuits.random_logic",
    "repro.baselines",
    "repro.baselines.gate_level",
    "repro.opt",
    "repro.opt.advisor",
    "repro.bench",
    "repro.bench.harness",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    public = getattr(module, "__all__", None)
    if public is None:
        public = [n for n in vars(module) if not n.startswith("_")]
    missing = []
    for name in public:
        obj = getattr(module, name, None)
        if obj is None or not callable(obj) and not inspect.isclass(obj):
            continue
        if inspect.ismodule(obj):
            continue
        if getattr(obj, "__module__", "").startswith("repro") is False:
            continue  # re-exported third-party / builtins
        doc = inspect.getdoc(obj)
        if not doc:
            missing.append(f"{module_name}.{name}")
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not inspect.getdoc(attr):
                    missing.append(f"{module_name}.{name}.{attr_name}")
    assert not missing, f"undocumented public items: {missing}"
