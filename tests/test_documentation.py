"""Documentation gate: the docs are executable and cannot rot.

Three promises, all self-enforcing:

* every public item carries a docstring;
* every fenced code block in ``docs/`` and ``README.md`` runs green --
  ``python`` blocks are executed, ``repro ...`` command lines are checked
  against the real argument parser;
* every intra-repo markdown link points at a file that exists, and the
  checked-in ``docs/report-schema.md`` is byte-identical to what
  ``repro.core.report.schema_markdown()`` generates.
"""

import importlib
import inspect
import pathlib
import re
import shlex

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

MODULES = [
    "repro",
    "repro.trace",
    "repro.tech",
    "repro.errors",
    "repro.robust",
    "repro.clocks",
    "repro.netlist",
    "repro.netlist.components",
    "repro.netlist.netlist",
    "repro.netlist.simfmt",
    "repro.netlist.validate",
    "repro.stages",
    "repro.stages.stage",
    "repro.stages.decompose",
    "repro.stages.classify",
    "repro.stages.archetypes",
    "repro.flow",
    "repro.flow.direction",
    "repro.flow.hints",
    "repro.delay",
    "repro.delay.rctree",
    "repro.delay.elmore",
    "repro.delay.penfield",
    "repro.delay.slope",
    "repro.delay.effective_res",
    "repro.delay.stage_delay",
    "repro.delay.parametric",
    "repro.core",
    "repro.core.graph",
    "repro.core.arrival",
    "repro.core.paths",
    "repro.core.constraints",
    "repro.core.mindelay",
    "repro.core.charge",
    "repro.core.analyzer",
    "repro.core.provenance",
    "repro.core.report",
    "repro.sim",
    "repro.sim.devices",
    "repro.sim.spicelite",
    "repro.sim.switchsim",
    "repro.sim.rsim",
    "repro.sim.waveforms",
    "repro.sim.stimuli",
    "repro.sim.measure",
    "repro.sim.vectors",
    "repro.circuits",
    "repro.circuits.primitives",
    "repro.circuits.logic",
    "repro.circuits.latches",
    "repro.circuits.adders",
    "repro.circuits.shifter",
    "repro.circuits.pla",
    "repro.circuits.regfile",
    "repro.circuits.datapath",
    "repro.circuits.control",
    "repro.circuits.random_logic",
    "repro.baselines",
    "repro.baselines.gate_level",
    "repro.opt",
    "repro.opt.advisor",
    "repro.bench",
    "repro.bench.harness",
    "repro.bench.serve",
    "repro.serve",
    "repro.serve.rwlock",
    "repro.serve.cache",
    "repro.serve.session",
    "repro.serve.server",
    "repro.testing",
    "repro.testing.faults",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    public = getattr(module, "__all__", None)
    if public is None:
        public = [n for n in vars(module) if not n.startswith("_")]
    missing = []
    for name in public:
        obj = getattr(module, name, None)
        if obj is None or not callable(obj) and not inspect.isclass(obj):
            continue
        if inspect.ismodule(obj):
            continue
        if getattr(obj, "__module__", "").startswith("repro") is False:
            continue  # re-exported third-party / builtins
        doc = inspect.getdoc(obj)
        if not doc:
            missing.append(f"{module_name}.{name}")
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not inspect.getdoc(attr):
                    missing.append(f"{module_name}.{name}.{attr_name}")
    assert not missing, f"undocumented public items: {missing}"


# ----------------------------------------------------------------------
# Executable documentation: fenced code blocks in docs/ and README.
# ----------------------------------------------------------------------
DOC_FILES = sorted(
    path.relative_to(REPO_ROOT).as_posix()
    for path in [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

# Markdown files whose intra-repo links must resolve.
LINKED_FILES = sorted(
    path.relative_to(REPO_ROOT).as_posix()
    for path in [*REPO_ROOT.glob("*.md"), *(REPO_ROOT / "docs").glob("*.md")]
)

_FENCE_RE = re.compile(r"^```([\w-]*)[^\n]*\n(.*?)^```", re.M | re.S)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# Shell lines that are illustrative, not checkable against the parser.
_SKIP_PREFIXES = ("pip ", "pytest ", "cd ", "git ", "export ", "echo ")


def fenced_blocks(relpath: str) -> list[tuple[str, str, int]]:
    """Every fenced code block in a markdown file: (lang, code, line)."""
    text = (REPO_ROOT / relpath).read_text()
    blocks = []
    for match in _FENCE_RE.finditer(text):
        line = text[: match.start()].count("\n") + 1
        blocks.append((match.group(1), match.group(2), line))
    return blocks


def _strip_env_prefix(tokens: list[str]) -> list[str]:
    while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
        tokens = tokens[1:]
    return tokens


@pytest.mark.parametrize("relpath", DOC_FILES)
def test_python_blocks_execute(relpath, tmp_path, monkeypatch):
    """Every ``python`` fenced block runs green, top to bottom.

    Blocks within one file share a namespace (later blocks may build on
    earlier ones) and run in a scratch directory so examples that write
    files cannot dirty the checkout.
    """
    monkeypatch.chdir(tmp_path)
    namespace: dict = {}
    ran = 0
    for lang, code, line in fenced_blocks(relpath):
        if lang != "python":
            continue
        try:
            exec(compile(code, f"{relpath}:{line}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failing doc example
            pytest.fail(
                f"{relpath} line {line}: python example raised "
                f"{type(exc).__name__}: {exc}"
            )
        ran += 1
    if relpath.startswith("docs/") and relpath != "docs/report-schema.md":
        assert ran or relpath == "docs/cli.md", (
            f"{relpath}: expected at least one executable python block"
        )


@pytest.mark.parametrize("relpath", DOC_FILES)
def test_shell_blocks_parse(relpath):
    """Every ``repro ...`` line in a shell block satisfies the real parser.

    argparse never opens the netlist at parse time, so this validates
    documented flags and subcommands without needing the example files
    to exist.  Non-repro lines (pip/pytest/comments) are skipped.
    """
    from repro.cli import build_parser

    parser = build_parser()
    for lang, code, line in fenced_blocks(relpath):
        if lang not in ("bash", "sh", "shell", "console"):
            continue
        for offset, raw in enumerate(code.splitlines()):
            command = raw.strip().removeprefix("$ ").strip()
            if not command or command.startswith("#"):
                continue
            if command.startswith(_SKIP_PREFIXES):
                continue
            tokens = _strip_env_prefix(shlex.split(command, comments=True))
            if tokens[:3] == ["python", "-m", "repro"]:
                tokens = ["repro"] + tokens[3:]
            if not tokens or tokens[0] != "repro":
                continue
            try:
                parser.parse_args(tokens[1:])
            except SystemExit as exc:
                if exc.code not in (0, None):
                    pytest.fail(
                        f"{relpath} line {line + offset + 1}: "
                        f"documented command does not parse: {command!r}"
                    )


@pytest.mark.parametrize("relpath", LINKED_FILES)
def test_intra_repo_links_resolve(relpath):
    """Every relative markdown link points at a file that exists."""
    text = (REPO_ROOT / relpath).read_text()
    # Links inside fenced code blocks are code, not navigation.
    text = _FENCE_RE.sub("", text)
    dead = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        resolved = ((REPO_ROOT / relpath).parent / target_path).resolve()
        if not resolved.exists():
            dead.append(target)
    assert not dead, f"{relpath}: dead intra-repo links: {dead}"


def test_schema_reference_is_current():
    """docs/report-schema.md matches schema_markdown() byte for byte.

    Regenerate with:
    ``PYTHONPATH=src python -m repro.core.report > docs/report-schema.md``
    """
    from repro.core import schema_markdown

    checked_in = (REPO_ROOT / "docs" / "report-schema.md").read_text()
    assert checked_in == schema_markdown(), (
        "docs/report-schema.md is stale; regenerate it from the schema"
    )
