"""Edge cases and failure injection across the stack."""

import pytest

from repro import (
    ConvergenceError,
    Netlist,
    NetlistError,
    TimingAnalyzer,
)
from repro.circuits import add_inverter, inverter_chain, pass_chain
from repro.delay import StageDelayCalculator
from repro.errors import ReproError
from repro.flow import infer_flow
from repro.sim import SpiceLite, TransientOptions, constant
from repro.stages import decompose


class TestPathTruncation:
    def test_truncated_flag_set_when_cap_hit(self):
        # A dense parallel mesh has combinatorially many simple paths; a
        # tiny max_paths must trip the truncation flag, never fail silently.
        net = Netlist("mesh")
        net.set_input("g")
        cols = 4
        for layer in range(3):
            for i in range(cols):
                for j in range(cols):
                    net.add_enh("g", f"l{layer}_{i}", f"l{layer+1}_{j}")
        net.add_enh("g", "l0_0", "gnd")
        for i in range(cols):
            net.add_pullup(f"l3_{i}")
            net.set_output(f"l3_{i}")
        infer_flow(net)
        calc = StageDelayCalculator(net, decompose(net), max_paths=3)
        stage = calc.graph.stage_of("l1_0")
        arcs = calc.arcs(stage)
        assert any(
            (a.fall and a.fall.truncated) or (a.rise and a.rise.truncated)
            for a in arcs
        )


class TestDegenerateInputs:
    def test_empty_netlist_analysis_rejected(self):
        net = Netlist("empty")
        net.set_input("a")
        result = TimingAnalyzer(net).analyze()
        # No logic at all: zero delay; only the trivial source "path".
        assert result.max_delay == 0.0
        assert all(p.length == 0 for p in result.paths)

    def test_single_pass_device_between_inputs(self):
        net = Netlist("bridge")
        net.set_input("a", "b", "en")
        net.add_enh("en", "a", "b")
        net.set_output("b")
        result = TimingAnalyzer(net).analyze()
        assert result.mode == "combinational"

    def test_zero_width_bus_rejected(self):
        from repro.circuits import bus

        with pytest.raises(ValueError):
            bus("a", 0)

    @pytest.mark.parametrize("factory_args", [0, -1])
    def test_chain_length_validation(self, factory_args):
        with pytest.raises(ValueError):
            inverter_chain(factory_args)
        with pytest.raises(ValueError):
            pass_chain(factory_args)


class TestSpiceLiteFailureInjection:
    def test_convergence_error_reported(self):
        # A femto-timestep budget with absurdly stiff elements: force the
        # Newton/halving machinery to give up and identify itself.
        net = inverter_chain(1)
        net.add_cap("n0", 1.0)  # one farad: absurd on purpose
        options = TransientOptions(
            dt=1e-9, settle=0.0, newton_max_iter=1, max_step_halvings=0,
            newton_tol=1e-15,
        )
        sim = SpiceLite(net, options=options)
        with pytest.raises(ConvergenceError):
            sim.transient({"a": constant(0.0)}, 5e-9)


class TestEmbedComposition:
    def test_three_level_hierarchy(self):
        leaf = Netlist("leaf")
        leaf.set_input("a")
        add_inverter(leaf, "a", "y")
        leaf.set_output("y")

        mid = Netlist("mid")
        mid.set_input("x")
        mid.embed(leaf, "u0", {"a": "x"})
        mid.embed(leaf, "u1", {"a": "u0.y"})
        mid.set_output("u1.y")

        top = Netlist("top")
        top.set_input("p")
        top.embed(mid, "m", {"x": "p", "u1.y": "q"})
        top.set_output("q")

        result = TimingAnalyzer(top).analyze()
        assert result.critical_path.endpoint == "q"
        assert result.critical_path.length == 2

    def test_exclusive_groups_survive_embedding(self):
        sub = Netlist("sub")
        sub.set_input("s0", "s1", "d0", "d1")
        sub.add_exclusive_group("s0", "s1")
        sub.add_enh("s0", "d0", "bus")
        sub.add_enh("s1", "d1", "bus")
        top = Netlist("top")
        top.embed(sub, "u")
        assert top.exclusive_group_of("u.s0") is not None
        assert top.exclusive_group_of("u.s0") == top.exclusive_group_of("u.s1")


class TestAnalyzerRobustness:
    def test_reanalysis_is_stable(self):
        net = inverter_chain(4)
        tv = TimingAnalyzer(net)
        first = tv.analyze().max_delay
        second = tv.analyze().max_delay
        assert first == second

    def test_two_analyzers_same_netlist_agree(self):
        net = pass_chain(6)
        a = TimingAnalyzer(net).analyze().max_delay
        b = TimingAnalyzer(net).analyze().max_delay
        assert a == pytest.approx(b)
