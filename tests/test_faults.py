"""Fault-injection and fuzzing tests (repro.testing.faults).

The contract under test, from the fault-tolerance invariant:

* injected worker crashes, hard process kills, hangs, and corrupt
  return values never change the analysis result -- ``to_json()`` is
  byte-identical to a serial run, because the supervised pool only
  pre-fills a cache and the serial walk is authoritative;
* retry / timeout / fallback events are visible as ``repro.trace``
  counters;
* seeded netlist mutation (>= 200 mutants) never escapes the typed
  :class:`ReproError` hierarchy and never hangs.

The fuzz seed base is taken from the ``REPRO_FUZZ_SEED`` environment
variable (default 0) and echoed with ``-s`` so a CI failure is
reproducible locally.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro import Netlist, ReproError, TimingAnalyzer
from repro import robust
from repro.circuits import inverter_chain, mux2, shift_register
from repro.delay import stage_delay
from repro.testing import FaultPlan, NetlistFuzzer
from repro.testing.faults import CORRUPT_SENTINEL
from repro.trace import Trace

#: Base seed for the mutation sweep; override with REPRO_FUZZ_SEED.
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
#: Mutants per base circuit; 3 bases -> >= 200 total.
MUTANTS_PER_BASE = 70


@pytest.fixture(autouse=True)
def _no_leftover_handler():
    """Every test starts and ends with no global fault handler."""
    robust.clear_fault_handler()
    yield
    robust.clear_fault_handler()


@pytest.fixture
def net():
    return inverter_chain(8)


def serial_json(net) -> str:
    return json.dumps(TimingAnalyzer(net, workers=1).analyze().to_json())


def supervised_json(net, trace=None, **calc_overrides) -> str:
    """Analyze with a forced process pool and return the JSON report."""
    tv = TimingAnalyzer(net, workers=2, executor="process", trace=trace)
    for attr, value in calc_overrides.items():
        setattr(tv.calculator, attr, value)
    # Force the pool below the PARALLEL_MIN_DEVICES auto threshold.
    tv.calculator.all_arcs(active_clocks=None, parallel=True)
    return json.dumps(tv.analyze().to_json())


class TestFaultPlan:
    def test_crash_fires_and_budget_exhausts(self):
        plan = FaultPlan().crash("erc", times=1, message="boom")
        with plan.installed():
            with pytest.raises(RuntimeError, match="boom"):
                robust.fault_point("erc")
            # Budget spent: second pass is clean.
            robust.fault_point("erc")
        assert plan.fired == [("erc", "crash")]

    def test_corrupt_substitutes_payload(self):
        plan = FaultPlan().corrupt("worker-result", times=1)
        with plan.installed():
            assert robust.fault_point("worker-result", [1]) == CORRUPT_SENTINEL
            assert robust.fault_point("worker-result", [1]) == [1]

    def test_uninstall_restores_production_state(self):
        plan = FaultPlan().crash("erc", times=None)
        with plan.installed():
            pass
        robust.fault_point("erc")  # must not raise


class TestSupervisedExtractionInvariant:
    """Injected pool faults never change the analysis result."""

    def test_worker_crash_is_bit_identical(self, net):
        baseline = serial_json(net)
        trace = Trace(logger=None)
        plan = FaultPlan().crash(
            "worker-task", times=None, exc_type=ValueError
        )
        with plan.installed():
            assert supervised_json(net, trace=trace) == baseline
        assert trace.counters.get("extract_fallback_stages", 0) > 0
        assert trace.counters.get("extract_retries", 0) > 0

    def test_worker_hard_crash_is_bit_identical(self, net):
        baseline = serial_json(net)
        trace = Trace(logger=None)
        plan = FaultPlan().hard_crash("worker-task", times=None)
        with plan.installed():
            assert (
                supervised_json(net, trace=trace, retry_backoff=0.01)
                == baseline
            )
        # Every attempt dies with the pool; the serial walk recomputes.
        assert trace.counters.get("extract_fallback_stages", 0) > 0

    def test_worker_timeout_is_bit_identical(self, net):
        baseline = serial_json(net)
        trace = Trace(logger=None)
        plan = FaultPlan().delay("worker-task", 5.0, times=None)
        with plan.installed():
            assert (
                supervised_json(
                    net,
                    trace=trace,
                    task_timeout=0.2,
                    task_retries=0,
                )
                == baseline
            )
        assert trace.counters.get("extract_timeouts", 0) > 0
        assert trace.counters.get("extract_fallback_stages", 0) > 0

    def test_corrupt_return_is_bit_identical(self, net):
        baseline = serial_json(net)
        trace = Trace(logger=None)
        plan = FaultPlan().corrupt("worker-result", times=None)
        with plan.installed():
            assert (
                supervised_json(net, trace=trace, retry_backoff=0.01)
                == baseline
            )
        assert trace.counters.get("extract_corrupt_results", 0) > 0
        assert trace.counters.get("extract_fallback_stages", 0) > 0

    def test_transient_crash_recovers_by_retry(self, net):
        """A once-per-worker fault: some chunks fail, later work succeeds.

        ``times=1`` is a per-process budget, so each fork-pool worker
        crashes exactly once; chunks scheduled after a worker's first
        task extract fine.  Retries shrink the pending set and whatever
        survives all attempts is recomputed serially -- the result must
        be identical either way.
        """
        baseline = serial_json(net)
        trace = Trace(logger=None)
        plan = FaultPlan().crash("worker-task", times=1)
        with plan.installed():
            assert (
                supervised_json(net, trace=trace, retry_backoff=0.01)
                == baseline
            )

    def test_no_faults_no_counters(self, net):
        trace = Trace(logger=None)
        assert supervised_json(net, trace=trace) == serial_json(net)
        for name in (
            "extract_retries",
            "extract_timeouts",
            "extract_corrupt_results",
            "extract_fallback_stages",
            "extract_pool_failures",
        ):
            assert trace.counters.get(name, 0) == 0


def _workers_reaped(timeout_s: float = 5.0) -> bool:
    """True once no forked child processes remain (they were terminated
    and reaped, not abandoned)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


class TestPoolLifecycle:
    """The persistent pool: idempotent shutdown, no orphans, clean ^C."""

    def test_shutdown_is_idempotent(self, net):
        stage_delay.shutdown_pool()
        stage_delay.shutdown_pool()  # no pool: must be a clean no-op
        assert supervised_json(net) == serial_json(net)
        assert stage_delay.pool_diagnostics()["live"]
        stage_delay.shutdown_pool()
        assert not stage_delay.pool_diagnostics()["live"]
        stage_delay.shutdown_pool()
        assert not stage_delay.pool_diagnostics()["live"]
        assert _workers_reaped()

    def test_no_orphans_after_hard_crash(self, net):
        stage_delay.shutdown_pool()
        assert _workers_reaped()
        plan = FaultPlan().hard_crash("worker-task", times=None)
        with plan.installed():
            supervised_json(net, retry_backoff=0.01)
        # The broken pool was poisoned and discarded, and every worker
        # process it spawned is gone.
        assert not stage_delay.pool_diagnostics()["live"]
        assert _workers_reaped()

    def test_no_orphans_after_hang(self, net):
        stage_delay.shutdown_pool()
        assert _workers_reaped()
        plan = FaultPlan().delay("worker-task", 5.0, times=None)
        with plan.installed():
            supervised_json(net, task_timeout=0.2, task_retries=0)
        # Hung workers were terminated (not waited on): they disappear
        # long before their injected 5 s sleep could finish.
        assert not stage_delay.pool_diagnostics()["live"]
        assert _workers_reaped(timeout_s=3.0)

    def test_keyboard_interrupt_tears_down_pool(self, net):
        stage_delay.shutdown_pool()
        plan = FaultPlan().crash(
            "worker-task", times=1, exc_type=KeyboardInterrupt
        )
        with plan.installed():
            with pytest.raises(KeyboardInterrupt):
                supervised_json(net)
        assert not stage_delay.pool_diagnostics()["live"]
        assert _workers_reaped()


class TestErcFaultSite:
    def test_erc_crash_strict_is_typed(self, net):
        from repro import ElectricalRuleError

        plan = FaultPlan().crash("erc", exc_type=KeyError, message="inj")
        with plan.installed():
            with pytest.raises(ElectricalRuleError, match="crashed"):
                TimingAnalyzer(net)

    def test_erc_crash_degraded_is_skipped_diagnostic(self, net):
        plan = FaultPlan().crash("erc", exc_type=KeyError, message="inj")
        with plan.installed():
            result = TimingAnalyzer(net, on_error=robust.QUARANTINE).analyze()
        assert any(
            d.code == "erc-crash" and d.action == "skipped"
            for d in result.diagnostics
        )

    def test_serial_stage_crash_quarantines(self, net):
        plan = FaultPlan().crash("stage-arcs", times=1)
        with plan.installed():
            result = TimingAnalyzer(net, on_error=robust.QUARANTINE).analyze()
        assert any(
            d.code == "extraction-failure" and d.action == "quarantined"
            for d in result.diagnostics
        )
        assert not result.coverage.complete


class TestNetlistFuzzer:
    def test_deterministic(self):
        base = mux2()
        a = NetlistFuzzer(42).mutate(base, mutations=3)
        b = NetlistFuzzer(42).mutate(base, mutations=3)
        from repro.netlist import sim_dumps

        assert sim_dumps(a) == sim_dumps(b)

    def test_input_never_modified(self):
        base = mux2()
        before = len(base.devices), sorted(base.nodes)
        NetlistFuzzer(7).mutate(base, mutations=4)
        assert (len(base.devices), sorted(base.nodes)) == before

    @pytest.mark.parametrize(
        "base_factory",
        [
            lambda: inverter_chain(4),
            mux2,
            lambda: shift_register(2),
        ],
        ids=["chain", "mux", "shiftreg"],
    )
    def test_mutation_sweep_never_escapes_reproerror(self, base_factory):
        """>= 200 mutants total: typed error or clean result, never a raw
        KeyError/AttributeError, never a hang (pytest-timeout in CI)."""
        base = base_factory()
        print(f"\nfuzz seed base: {FUZZ_SEED} (set REPRO_FUZZ_SEED to vary)")
        for offset in range(MUTANTS_PER_BASE):
            seed = FUZZ_SEED + offset
            mutant = NetlistFuzzer(seed).mutate(base, mutations=2)
            for policy in (robust.STRICT, robust.QUARANTINE):
                try:
                    result = TimingAnalyzer(mutant, on_error=policy).analyze()
                except ReproError:
                    continue
                except Exception as exc:  # pragma: no cover - the bug
                    pytest.fail(
                        f"seed {seed} policy {policy}: untyped "
                        f"{type(exc).__name__}: {exc}"
                    )
                # A clean degraded result must still serialize validly.
                from repro.core import validate_report

                validate_report(result.to_json())
