"""Tests for signal-flow inference (repro.flow)."""

import pytest

from repro import FlowDirection, Netlist
from repro.circuits import (
    barrel_shifter,
    mips_like_datapath,
    mux2,
    pass_chain,
    shift_register,
)
from repro.errors import FlowError
from repro.flow import FlowReport, Hint, HintSet, infer_flow


def flow_of(net: Netlist, device: str) -> FlowDirection:
    return net.device(device).flow


class TestRailRule:
    def test_pulldown_flows_out_of_gnd(self, inverter_net):
        infer_flow(inverter_net)
        pd = inverter_net.device("inv.pd")
        assert pd.flows_out_of("gnd")

    def test_all_devices_resolved(self, inverter_net):
        infer_flow(inverter_net)
        assert all(d.flow.resolved for d in inverter_net.devices.values())


class TestBoundaryAndDriven:
    def test_pass_chain_flows_from_input(self):
        net = pass_chain(4)
        report = infer_flow(net)
        assert report.unresolved == []
        for i in range(4):
            dev = net.device(f"sw{i}")
            upstream = "d" if i == 0 else f"p{i-1}"
            assert dev.flows_out_of(upstream), f"sw{i} direction wrong"

    def test_mux_passes_flow_toward_output(self):
        net = mux2()
        infer_flow(net)
        pa = net.device("mux.pa")
        assert pa.flows_into("out")

    def test_gate_output_drives_pass(self, pass_mux_net):
        infer_flow(pass_mux_net)
        sw = pass_mux_net.device("sw")
        assert sw.flows_out_of("x")

    def test_two_driven_ends_give_bidir(self):
        net = Netlist("t")
        net.set_input("en", "a", "b")
        net.add_pullup("x")
        net.add_enh("a", "x", "gnd")
        net.add_pullup("y")
        net.add_enh("b", "y", "gnd")
        net.add_enh("en", "x", "y", name="bridge")
        infer_flow(net)
        assert flow_of(net, "bridge") is FlowDirection.BIDIR


class TestThroughRule:
    def test_chain_with_mid_tap(self):
        # d -> sw0 -> m -> sw1 -> y(load); the mid node also feeds a gate.
        net = Netlist("t")
        net.set_input("d", "en")
        net.add_enh("en", "d", "m", name="sw0")
        net.add_enh("en", "m", "y", name="sw1")
        net.add_enh("y", "q", "gnd")
        net.add_pullup("q")
        net.add_enh("m", "q2", "gnd")
        net.add_pullup("q2")
        report = infer_flow(net)
        assert flow_of(net, "sw0").resolved
        assert net.device("sw1").flows_out_of("m")
        assert report.unresolved == []


class TestCoverage:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: pass_chain(8),
            lambda: mux2(),
            lambda: barrel_shifter(4),
            lambda: shift_register(3),
            lambda: mips_like_datapath(4, 2)[0],
        ],
        ids=["chain", "mux", "barrel", "shiftreg", "datapath"],
    )
    def test_full_auto_coverage_on_generated_designs(self, make):
        net = make()
        report = infer_flow(net)
        assert report.coverage == pytest.approx(1.0), report.summary()

    def test_report_accounting_consistent(self):
        net = barrel_shifter(4)
        report = infer_flow(net)
        assert report.pass_candidates == report.auto_resolved + len(
            report.hinted
        ) + len(report.unresolved)

    def test_report_summary_mentions_counts(self):
        report = infer_flow(pass_chain(4))
        text = report.summary()
        assert "pass devices" in text
        assert "auto-resolved" in text

    def test_unresolvable_island_becomes_bidir(self):
        net = Netlist("t")
        net.set_input("en")
        # Two internal nodes joined by a pass device, neither driven: the
        # rules cannot orient it.
        net.add_enh("en", "u", "v", name="mystery")
        report = infer_flow(net)
        assert flow_of(net, "mystery") is FlowDirection.BIDIR
        assert "mystery" in report.unresolved

    def test_reset_reruns_inference(self):
        net = pass_chain(3)
        infer_flow(net)
        net.device("sw1").flow = FlowDirection.BIDIR  # corrupt one
        report = infer_flow(net, reset=True)
        assert net.device("sw1").flows_out_of("p0")
        assert report.hinted == []

    def test_existing_assignments_count_as_hints(self):
        net = pass_chain(3)
        net.set_flow_hint("sw1", FlowDirection.D_TO_S)
        report = infer_flow(net)
        assert "sw1" in report.hinted


class TestHints:
    def test_hint_applies_by_glob(self):
        net = barrel_shifter(4)
        hints = HintSet().add("bsh.m0_*", FlowDirection.BIDIR)
        touched = hints.apply(net)
        assert touched == 4
        assert flow_of(net, "bsh.m0_1") is FlowDirection.BIDIR

    def test_hint_survives_inference(self):
        net = pass_chain(3)
        HintSet().add("sw1", "d->s").apply(net)
        report = infer_flow(net)
        assert "sw1" in report.hinted
        assert flow_of(net, "sw1") is FlowDirection.D_TO_S

    def test_stale_hint_raises(self):
        net = pass_chain(3)
        with pytest.raises(FlowError):
            HintSet().add("no_such_device*", "bidir").apply(net)

    def test_unknown_hint_direction_rejected(self):
        with pytest.raises((FlowError, ValueError)):
            Hint("x", FlowDirection.UNKNOWN)

    def test_empty_pattern_rejected(self):
        with pytest.raises(FlowError):
            Hint("", FlowDirection.BIDIR)

    def test_later_hints_win(self):
        net = pass_chain(3)
        hints = HintSet().add("sw*", "s->d").add("sw1", "d->s")
        hints.apply(net)
        assert flow_of(net, "sw1") is FlowDirection.D_TO_S
        assert flow_of(net, "sw0") is FlowDirection.S_TO_D
