"""Tests for incremental re-analysis (arc caching + invalidation)."""

import random

import pytest

from repro import TimingAnalyzer
from repro.circuits import mips_like_datapath, ripple_adder


class TestCacheCorrectness:
    def test_second_analyze_uses_cache_and_matches(self):
        net = ripple_adder(6)
        tv = TimingAnalyzer(net)
        first = tv.analyze().max_delay
        assert tv.calculator._arc_cache  # populated
        second = tv.analyze().max_delay
        assert second == first

    def test_incremental_equals_fresh_after_edit(self):
        net, _ = mips_like_datapath(8, 4)
        tv = TimingAnalyzer(net)
        base = tv.analyze()
        path_devices = [
            d
            for s in base.paths[0].steps
            for d in s.devices
            if d in net.devices
        ]
        target = path_devices[len(path_devices) // 2]
        net.device(target).w *= 0.25
        tv.notify_changed([target])
        incremental = tv.analyze().min_cycle
        fresh = TimingAnalyzer(net).analyze().min_cycle
        assert incremental == pytest.approx(fresh, rel=1e-12)
        assert incremental > base.min_cycle  # a weaker device slows it

    def test_many_random_edits_stay_exact(self):
        rng = random.Random(5)
        net = ripple_adder(5)
        tv = TimingAnalyzer(net)
        tv.analyze()
        from repro import DeviceKind

        names = sorted(
            n for n, d in net.devices.items() if d.kind is DeviceKind.ENH
        )
        for _round in range(6):
            target = rng.choice(names)
            # Widen enhancement devices only: widening a pull-down improves
            # the ratio, while touching loads can create genuine ratio
            # violations that ERC (correctly) rejects.
            net.device(target).w *= rng.choice([1.25, 1.5, 2.0])
            tv.notify_changed([target])
            incremental = tv.analyze().max_delay
            fresh = TimingAnalyzer(net).analyze().max_delay
            assert incremental == pytest.approx(fresh, rel=1e-12)

    def test_unrelated_stage_cache_survives(self):
        net = ripple_adder(6)
        tv = TimingAnalyzer(net)
        tv.analyze()
        populated = len(tv.calculator._arc_cache)
        # Edit one device: only its stage's entries drop.
        target = next(iter(net.devices))
        tv.notify_changed([target])
        remaining = len(tv.calculator._arc_cache)
        assert 0 < remaining < populated + 1
        assert remaining >= populated - 4


class TestStalenessContract:
    def test_without_notify_results_are_stale_by_design(self):
        # The documented contract: edits without notify_changed reuse the
        # cache.  This test pins the behaviour so it never becomes an
        # accidental half-invalidation.
        net = ripple_adder(4)
        tv = TimingAnalyzer(net)
        base = tv.analyze().max_delay
        some_device = next(iter(net.devices.values()))
        some_device.w *= 0.25
        stale = tv.analyze().max_delay
        assert stale == base
        tv.notify_changed([some_device.name])
        assert tv.analyze().max_delay != base
