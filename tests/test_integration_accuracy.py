"""Integration: static TV estimates vs SPICE-lite transient truth.

These are the paper's headline claims in miniature (R-T1/R-T2): across the
stage archetypes, the static analyzer's delay should land within tens of
percent of the nonlinear simulation and never *under*-estimate by much
(pessimism is acceptable; optimism is a timing-analyzer bug).
"""

import pytest

from repro import TimingAnalyzer
from repro.bench import compare_delay
from repro.circuits import (
    inverter_chain,
    nand,
    nor,
    pass_chain,
    superbuffer,
    xor2,
)
from repro.sim import TransientOptions

FAST = TransientOptions(dt=0.1e-9, settle=30e-9)

#: Acceptable signed-error band, percent.  Static worst-casing may be
#: pessimistic (positive) by up to +100%; optimism beyond -35% would mean
#: the analyzer can green-light a failing chip.
LOW, HIGH = -35.0, 100.0


def assert_in_band(row):
    assert LOW < row.error_pct < HIGH, (
        f"{row.label} ({row.transition}): tv={row.tv_delay * 1e9:.3f}ns "
        f"sim={row.sim_delay * 1e9:.3f}ns err={row.error_pct:+.1f}%"
    )


class TestStageAccuracy:
    def test_inverter_fall(self):
        # A realistic wire+fanout load: unloaded minimum gates have
        # sub-nanosecond delays dominated by the stimulus ramp.
        row = compare_delay(
            inverter_chain(1, load=50e-15), "a", "n0",
            direction="rise", sim_options=FAST,
        )
        assert row.transition == "fall"
        assert_in_band(row)

    def test_inverter_rise(self):
        row = compare_delay(
            inverter_chain(1, load=50e-15), "a", "n0",
            direction="fall", sim_options=FAST,
        )
        assert row.transition == "rise"
        assert_in_band(row)

    def test_chain_of_four(self):
        row = compare_delay(
            inverter_chain(4), "a", "n3", direction="rise", sim_options=FAST
        )
        assert_in_band(row)

    def test_nand_fall(self):
        row = compare_delay(
            nand(2), "a0", "out",
            direction="rise", input_state={"a1": 1}, sim_options=FAST,
        )
        assert_in_band(row)

    def test_nor_fall(self):
        row = compare_delay(
            nor(2), "a0", "out",
            direction="rise", input_state={"a1": 0}, sim_options=FAST,
        )
        assert_in_band(row)

    def test_xor(self):
        row = compare_delay(
            xor2(), "a", "out",
            direction="rise", input_state={"b": 0}, sim_options=FAST,
        )
        assert_in_band(row)

    def test_pass_chain_rise(self):
        row = compare_delay(
            pass_chain(4), "d", "p3",
            direction="rise", input_state={"sel": 1}, sim_options=FAST,
        )
        assert_in_band(row)

    def test_superbuffer(self):
        net = superbuffer()
        net.add_cap("out", 150e-15)
        row = compare_delay(
            net, "a", "out", direction="rise", sim_options=FAST
        )
        assert_in_band(row)


class TestOrderingPreserved:
    def test_longer_chain_slower_in_both_engines(self):
        rows = [
            compare_delay(
                inverter_chain(n), "a", f"n{n-1}",
                direction="rise", sim_options=FAST,
            )
            for n in (2, 4, 6)
        ]
        tv = [r.tv_delay for r in rows]
        sim = [r.sim_delay for r in rows]
        assert tv == sorted(tv)
        assert sim == sorted(sim)

    def test_pass_chain_quadratic_in_both_engines(self):
        rows = {
            n: compare_delay(
                pass_chain(n), "d", f"p{n-1}",
                direction="rise", input_state={"sel": 1}, sim_options=FAST,
            )
            for n in (2, 6)
        }
        # The static figure includes a constant slope term from the input
        # ramp, which compresses the ratio slightly; both engines must
        # still show clearly superlinear growth.
        assert rows[6].tv_delay / rows[2].tv_delay > 2.5
        assert rows[6].sim_delay / rows[2].sim_delay > 3.0


class TestNeverFatallyOptimistic:
    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_chain_estimates_not_optimistic(self, n):
        row = compare_delay(
            inverter_chain(n), "a", f"n{n-1}",
            direction="rise", sim_options=FAST,
        )
        assert row.tv_delay > 0.65 * row.sim_delay
