"""Tests for multi-corner multi-mode (MCMM) analysis.

The contract under test is parity-by-construction: every scenario of an
``analyze_mcmm`` sweep must be byte-identical (``to_json``) to a
standalone single-corner analysis, while the structural phases (ERC,
flow inference, stage decomposition) run exactly once for the whole
sweep and at most one persistent worker pool survives it.
"""

import json
import multiprocessing

import pytest

from repro import TimingAnalyzer
from repro.bench.perf import parity_circuits
from repro.circuits import inverter_chain, register_bit, ripple_adder
from repro.cli import main
from repro.core.mcmm import (
    CORNER_NAMES,
    McmmResult,
    Scenario,
    analyze_mcmm,
    corner_scenarios,
)
from repro.core.report import validate_report
from repro.delay import pool_diagnostics, shutdown_pool, stage_delay
from repro.errors import TimingError
from repro.netlist import sim_dumps
from repro.tech import NMOS4, Technology
from repro.trace import Trace


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _standalone_json(make, corner: str) -> str:
    """A fresh single-corner analysis, serialized deterministically."""
    net = make()
    tv = TimingAnalyzer(net, tech=net.tech.corner(corner))
    return json.dumps(tv.analyze().to_json(), sort_keys=True)


def _force_parallel(monkeypatch):
    """Make even a 6-device inverter take the pooled extraction path."""
    monkeypatch.setattr(stage_delay, "PARALLEL_MIN_DEVICES", 0)
    monkeypatch.setattr(stage_delay, "PARALLEL_COLD_MIN_DEVICES", 0)
    monkeypatch.setattr(stage_delay, "available_cpus", lambda: 2)


class TestScenarioCoercion:
    def test_corner_scenarios_default(self):
        scens = corner_scenarios()
        assert [s.name for s in scens] == list(CORNER_NAMES)
        assert scens[1].tech == NMOS4
        assert scens[0].tech.name.endswith("-slow")

    def test_string_shorthand(self):
        tv = TimingAnalyzer(inverter_chain(3))
        mcmm = tv.analyze_mcmm(["slow", "fast"])
        assert [s.name for s in mcmm.scenarios] == ["slow", "fast"]
        assert mcmm.scenarios[0].tech == tv.tech.corner("slow")

    def test_unknown_shorthand_rejected(self):
        tv = TimingAnalyzer(inverter_chain(3))
        with pytest.raises(TimingError, match="unknown corner shorthand"):
            tv.analyze_mcmm(["nominal"])

    def test_non_scenario_rejected(self):
        tv = TimingAnalyzer(inverter_chain(3))
        with pytest.raises(TimingError, match="must be a Scenario"):
            tv.analyze_mcmm([42])

    def test_empty_scenarios_rejected(self):
        tv = TimingAnalyzer(inverter_chain(3))
        with pytest.raises(TimingError, match="at least one scenario"):
            tv.analyze_mcmm([])

    def test_duplicate_names_rejected(self):
        tv = TimingAnalyzer(inverter_chain(3))
        with pytest.raises(TimingError, match="duplicate scenario names"):
            tv.analyze_mcmm(["slow", "slow"])


class TestParitySerial:
    """Every zoo circuit, every corner: MCMM == standalone, bytewise."""

    @pytest.mark.parametrize(
        "name,make", parity_circuits(), ids=[n for n, _ in parity_circuits()]
    )
    def test_scenarios_match_standalone(self, name, make):
        net = make()
        mcmm = TimingAnalyzer(net).analyze_mcmm(corner_scenarios(net.tech))
        for corner in CORNER_NAMES:
            ours = json.dumps(
                mcmm.result(corner).to_json(), sort_keys=True
            )
            assert ours == _standalone_json(make, corner), (
                f"{name}: scenario {corner!r} diverged from its "
                "standalone single-corner analysis"
            )


class TestParityParallel:
    """Same sweep with pooled extraction forced on: the retargeted
    workers must reproduce the serial single-corner bytes exactly."""

    @pytest.mark.skipif(not _fork_available(), reason="fork not available")
    @pytest.mark.parametrize(
        "name,make", parity_circuits(), ids=[n for n, _ in parity_circuits()]
    )
    def test_pooled_scenarios_match_serial_standalone(
        self, name, make, monkeypatch
    ):
        _force_parallel(monkeypatch)
        try:
            net = make()
            tv = TimingAnalyzer(net, workers=2)
            mcmm = tv.analyze_mcmm(corner_scenarios(net.tech))
            for corner in CORNER_NAMES:
                ours = json.dumps(
                    mcmm.result(corner).to_json(), sort_keys=True
                )
                assert ours == _standalone_json(make, corner), (
                    f"{name}: pooled scenario {corner!r} diverged from "
                    "the serial standalone analysis"
                )
        finally:
            shutdown_pool()


class TestStructuralSharing:
    def test_structural_phases_run_once(self):
        trace = Trace()
        net = ripple_adder(4)
        tv = TimingAnalyzer(net, trace=trace)
        tv.analyze_mcmm(corner_scenarios(net.tech))
        assert trace.counters["structural_runs"] == 1
        assert trace.counters["mcmm_scenarios"] == 3

    def test_independent_runs_pay_per_corner(self):
        trace = Trace()
        for corner in CORNER_NAMES:
            net = ripple_adder(4)
            TimingAnalyzer(
                net, tech=net.tech.corner(corner), trace=trace
            ).analyze()
        assert trace.counters["structural_runs"] == 3
        assert "mcmm_scenarios" not in trace.counters


class TestPoolLifecycle:
    @pytest.mark.skipif(not _fork_available(), reason="fork not available")
    def test_at_most_one_pool_survives_a_sweep(self, monkeypatch):
        _force_parallel(monkeypatch)
        try:
            net = ripple_adder(6)
            tv = TimingAnalyzer(net, workers=2)
            tv.analyze_mcmm(corner_scenarios(net.tech))
            diag = pool_diagnostics()
            live = diag["pools_started"] - diag["pools_evicted"]
            assert live <= 1, (
                f"{live} pools alive after a 3-corner sweep; retargeted "
                "scenarios must share one pool"
            )
        finally:
            shutdown_pool()
        diag = pool_diagnostics()
        assert not diag["live"]
        assert diag["pools_started"] - diag["pools_evicted"] == 0

    @pytest.mark.skipif(not _fork_available(), reason="fork not available")
    def test_rebinding_evicts_the_previous_pool(self, monkeypatch):
        _force_parallel(monkeypatch)
        try:
            for seed in (1, 2):
                tv = TimingAnalyzer(ripple_adder(5 + seed), workers=2)
                tv.calculator.all_arcs(parallel=True, workers=2)
            diag = pool_diagnostics()
            assert diag["pools_started"] >= 2
            assert diag["pools_started"] - diag["pools_evicted"] <= 1
        finally:
            shutdown_pool()


class TestMcmmResult:
    @pytest.fixture(scope="class")
    def mcmm(self) -> McmmResult:
        net = ripple_adder(4)
        return TimingAnalyzer(net).analyze_mcmm(corner_scenarios(net.tech))

    def test_dominant_scenario_is_slow(self, mcmm):
        assert mcmm.dominant_scenario() == "slow"

    def test_unknown_scenario_rejected(self, mcmm):
        with pytest.raises(TimingError, match="unknown scenario"):
            mcmm.result("nominal")

    def test_worst_arrivals_name_a_scenario(self, mcmm):
        worst = mcmm.worst_arrivals()
        assert worst
        for node, (time, scenario) in worst.items():
            assert scenario in CORNER_NAMES
            assert time == max(
                mcmm.result(c).arrivals.worst(node).time
                for c in CORNER_NAMES
                if node in mcmm.result(c).arrivals.nodes()
            )

    def test_dominant_corner(self, mcmm):
        endpoint = mcmm.result("slow").paths[0].endpoint
        assert mcmm.dominant_corner(endpoint) == "slow"
        with pytest.raises(TimingError, match="no arrival"):
            mcmm.dominant_corner("no_such_node")

    def test_explain_names_the_scenario(self, mcmm):
        endpoint = mcmm.result("slow").paths[0].endpoint
        explanation = mcmm.explain(endpoint)
        assert explanation.scenario == "slow"
        assert "in scenario slow" in explanation.format()
        assert explanation.to_json()["scenario"] == "slow"

    def test_report_flags_dominant(self, mcmm):
        text = mcmm.report()
        assert "<- dominant" in text
        assert "worst in" in text


class TestMcmmSchema:
    def test_combinational_payload_validates(self):
        net = ripple_adder(4)
        mcmm = TimingAnalyzer(net).analyze_mcmm(corner_scenarios(net.tech))
        payload = mcmm.to_json()
        validate_report(payload)
        section = payload["mcmm"]
        assert section["scenario_count"] == 3
        assert section["dominant"] == "slow"
        assert [row["name"] for row in section["scenarios"]] == list(
            CORNER_NAMES
        )
        assert all(row["scenario"] in CORNER_NAMES for row in section["nodes"])
        arrivals = [row["arrival"] for row in section["paths"]]
        assert arrivals == sorted(arrivals, reverse=True)

    def test_two_phase_payload_validates(self):
        net = register_bit()
        mcmm = TimingAnalyzer(net).analyze_mcmm(corner_scenarios(net.tech))
        payload = mcmm.to_json(include_wall_time=True)
        validate_report(payload)
        assert payload["mcmm"]["analysis_seconds"] >= 0.0
        for row in payload["mcmm"]["scenarios"]:
            assert row["min_cycle"] is not None

    def test_wall_time_off_by_default(self):
        net = inverter_chain(3)
        payload = TimingAnalyzer(net).analyze_mcmm(
            corner_scenarios(net.tech)
        ).to_json()
        assert "analysis_seconds" not in payload["mcmm"]
        for row in payload["mcmm"]["scenarios"]:
            assert "analysis_seconds" not in row


class TestCliCorners:
    @pytest.fixture
    def chain_file(self, tmp_path):
        path = tmp_path / "chain.sim"
        path.write_text(sim_dumps(inverter_chain(3)))
        return str(path)

    def test_analyze_corner_report(self, chain_file, capsys):
        assert main(
            ["analyze", chain_file, "--corner", "slow", "--corner", "fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "MCMM timing analysis" in out
        assert "dominant: slow" in out

    def test_analyze_corner_json_validates(self, chain_file, capsys):
        assert main(
            ["analyze", chain_file, "--json",
             "--corner", "slow", "--corner", "typ", "--corner", "fast"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["mcmm"]["scenario_count"] == 3

    def test_analyze_corner_named_spec(self, chain_file, capsys):
        assert main(
            ["analyze", chain_file, "--corner", "worst=slow"]
        ) == 0
        out = capsys.readouterr().out
        assert "worst" in out

    def test_analyze_corner_from_json_file(self, chain_file, tmp_path,
                                           capsys):
        tech_path = tmp_path / "proc.json"
        tech_path.write_text(json.dumps(NMOS4.to_dict()))
        assert main(
            ["analyze", chain_file, "--corner", f"baked={tech_path}"]
        ) == 0
        assert "baked" in capsys.readouterr().out

    def test_analyze_bad_corner_spec(self, chain_file, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", chain_file, "--corner", "bogus"])

    def test_explain_names_dominant_corner(self, chain_file, capsys):
        assert main(
            ["explain", chain_file, "--corner", "slow", "--corner", "fast"]
        ) == 0
        assert "in scenario slow" in capsys.readouterr().out

    def test_explain_corner_json(self, chain_file, capsys):
        assert main(
            ["explain", chain_file, "--json",
             "--corner", "slow", "--corner", "fast"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "slow"


class TestModeScenarios:
    def test_clock_override_scenarios(self):
        from repro.clocks import TwoPhaseClock

        net = register_bit()
        wide_gap = TwoPhaseClock(nonoverlap=10e-9)
        tv = TimingAnalyzer(net)
        mcmm = tv.analyze_mcmm(
            [
                Scenario(name="typ", tech=net.tech),
                Scenario(name="typ-widegap", tech=net.tech,
                         clock=wide_gap),
            ]
        )
        typ = mcmm.result("typ")
        slowed = mcmm.result("typ-widegap")
        # Same silicon, wider non-overlap gap: phase widths are
        # unchanged, the cycle stretches by exactly the two extra gaps.
        extra = 2.0 * (wide_gap.nonoverlap - tv.clock.nonoverlap)
        assert slowed.min_cycle == pytest.approx(typ.min_cycle + extra)
        assert slowed.clock_verification.clock == wide_gap
        assert mcmm.dominant_scenario() == "typ-widegap"
