"""Tests for the Netlist container (repro.netlist.netlist)."""

import pytest

from repro import DeviceKind, FlowDirection, Netlist, NetlistError
from repro.circuits import add_inverter


class TestConstruction:
    def test_rails_exist_from_start(self):
        net = Netlist("t")
        assert "vdd" in net and "gnd" in net
        assert net.is_rail("vdd") and net.is_rail("gnd")

    def test_custom_rail_names(self):
        net = Netlist("t", vdd="VDD!", gnd="GND!")
        assert net.is_rail("VDD!") and net.is_rail("GND!")
        assert not net.is_rail("vdd")

    def test_identical_rails_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("t", vdd="x", gnd="x")

    def test_add_node_accumulates_cap(self):
        net = Netlist("t")
        net.add_node("n", 1e-15)
        net.add_node("n", 2e-15)
        assert net.node("n").cap == pytest.approx(3e-15)

    def test_missing_node_lookup_raises(self):
        with pytest.raises(NetlistError):
            Netlist("t").node("nope")

    def test_fresh_node_names_unique(self):
        net = Netlist("t")
        names = {net.fresh_node("x").name for _ in range(50)}
        assert len(names) == 50


class TestDevices:
    def test_add_enh_autocreates_nodes(self):
        net = Netlist("t")
        t = net.add_enh("g", "a", "b")
        assert t.kind is DeviceKind.ENH
        assert all(n in net for n in ("g", "a", "b"))

    def test_default_geometry_is_minimum(self):
        net = Netlist("t")
        t = net.add_enh("g", "a", "b")
        assert t.w == pytest.approx(net.tech.min_width())
        assert t.l == pytest.approx(net.tech.min_length())

    def test_duplicate_device_name_rejected(self):
        net = Netlist("t")
        net.add_enh("g", "a", "b", name="m")
        with pytest.raises(NetlistError):
            net.add_enh("g", "a", "c", name="m")

    def test_auto_names_are_sequential_and_unique(self):
        net = Netlist("t")
        t1 = net.add_enh("g", "a", "b")
        t2 = net.add_enh("g", "b", "c")
        assert t1.name != t2.name

    def test_pullup_shape(self):
        net = Netlist("t")
        t = net.add_pullup("out")
        assert t.kind is DeviceKind.DEP
        assert t.is_load
        assert t.drain == "vdd"
        assert net.has_pullup("out")

    def test_channel_and_gate_indices(self):
        net = Netlist("t")
        net.add_enh("g", "a", "b", name="m1")
        assert [d.name for d in net.channel_devices("a")] == ["m1"]
        assert [d.name for d in net.channel_devices("b")] == ["m1"]
        assert [d.name for d in net.gate_loads("g")] == ["m1"]
        assert net.channel_devices("g") == []

    def test_len_counts_devices(self):
        net = Netlist("t")
        net.add_enh("g", "a", "b")
        net.add_pullup("a")
        assert len(net) == 2

    def test_pass_devices_excludes_rail_connected(self):
        net = Netlist("t")
        net.add_enh("g", "a", "gnd", name="pd")
        net.add_enh("g", "a", "b", name="sw")
        net.add_pullup("a", name="pu")
        assert [d.name for d in net.pass_devices()] == ["sw"]


class TestBoundary:
    def test_io_declarations(self):
        net = Netlist("t")
        net.set_input("a")
        net.set_output("y")
        net.set_clock("phi1", "phi1")
        assert net.inputs == {"a"}
        assert net.outputs == {"y"}
        assert net.clocks == {"phi1": "phi1"}
        assert net.is_boundary("a") and net.is_boundary("phi1")
        assert not net.is_boundary("y")

    def test_rail_cannot_be_io(self):
        net = Netlist("t")
        with pytest.raises(NetlistError):
            net.set_input("vdd")
        with pytest.raises(NetlistError):
            net.set_output("gnd")
        with pytest.raises(NetlistError):
            net.set_clock("vdd", "phi1")

    def test_clock_phase_conflict_rejected(self):
        net = Netlist("t")
        net.set_clock("c", "phi1")
        with pytest.raises(NetlistError):
            net.set_clock("c", "phi2")
        net.set_clock("c", "phi1")  # same phase is idempotent


class TestExclusiveGroups:
    def test_group_membership(self):
        net = Netlist("t")
        idx = net.add_exclusive_group("s0", "s1", "s2")
        assert net.exclusive_group_of("s0") == idx
        assert net.exclusive_group_of("s2") == idx
        assert net.exclusive_group_of("other") is None

    def test_double_membership_rejected(self):
        net = Netlist("t")
        net.add_exclusive_group("s0", "s1")
        with pytest.raises(NetlistError):
            net.add_exclusive_group("s1", "s2")

    def test_singleton_group_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("t").add_exclusive_group("only")


class TestCapacitance:
    def test_node_capacitance_includes_floor(self):
        net = Netlist("t")
        net.add_node("n")
        net.add_enh("g", "n", "gnd")  # so it has a channel connection
        assert net.node_capacitance("n") >= net.tech.c_node_floor

    def test_gate_load_adds_capacitance(self):
        net = Netlist("t")
        net.add_enh("x", "a", "b")
        base = net.node_capacitance("a")
        net.add_enh("a", "p", "q")  # "a" now gates a device
        assert net.node_capacitance("a") > base

    def test_explicit_wire_cap_counts(self):
        net = Netlist("t")
        net.add_node("n", 0.0)
        before = net.node_capacitance("n")
        net.add_cap("n", 5e-15)
        assert net.node_capacitance("n") == pytest.approx(before + 5e-15)

    def test_negative_cap_rejected(self):
        net = Netlist("t")
        net.add_node("n")
        with pytest.raises(NetlistError):
            net.add_cap("n", -1e-15)


class TestEmbed:
    def _sub(self) -> Netlist:
        sub = Netlist("sub")
        sub.set_input("a")
        add_inverter(sub, "a", "y", tag="i")
        sub.set_output("y")
        return sub

    def test_embed_prefixes_names(self):
        top = Netlist("top")
        translation = self._sub()
        top.set_input("x")
        tr = top.embed(self._sub(), "u1", {"a": "x"})
        assert tr["a"] == "x"
        assert tr["y"] == "u1.y"
        assert "u1.y" in top
        assert "u1.i.pd" in top.devices

    def test_embed_maps_rails(self):
        top = Netlist("top")
        tr = top.embed(self._sub(), "u1")
        assert tr["vdd"] == "vdd" and tr["gnd"] == "gnd"
        # The embedded pull-up must land on the top rail.
        assert any(
            d.drain == "vdd" for d in top.devices.values() if d.is_load
        )

    def test_embed_does_not_import_io_by_default(self):
        top = Netlist("top")
        top.embed(self._sub(), "u1")
        assert top.inputs == frozenset()
        assert top.outputs == frozenset()

    def test_embed_import_io(self):
        top = Netlist("top")
        top.embed(self._sub(), "u1", import_io=True)
        assert top.inputs == {"u1.a"}
        assert top.outputs == {"u1.y"}

    def test_embed_imports_clocks(self):
        sub = Netlist("sub")
        sub.set_clock("phi1", "phi1")
        sub.add_enh("phi1", "a", "b")
        top = Netlist("top")
        top.embed(sub, "u1", {"phi1": "phi1"})
        assert top.clocks == {"phi1": "phi1"}

    def test_embed_requires_prefix(self):
        with pytest.raises(NetlistError):
            Netlist("top").embed(self._sub(), "")

    def test_embed_rejects_unknown_port(self):
        with pytest.raises(NetlistError):
            Netlist("top").embed(self._sub(), "u1", {"nope": "x"})

    def test_two_instances_coexist(self):
        top = Netlist("top")
        top.set_input("x")
        top.embed(self._sub(), "u1", {"a": "x"})
        top.embed(self._sub(), "u2", {"a": "u1.y"})
        assert "u2.y" in top
        assert len(top.devices) == 4  # two inverters

    def test_stats(self):
        net = Netlist("t")
        net.set_input("a")
        add_inverter(net, "a", "y")
        stats = net.stats()
        assert stats["devices"] == 2
        assert stats["enh"] == 1
        assert stats["dep"] == 1
        assert stats["inputs"] == 1
